"""Figure 12 — high-quality retrieval: Pareto frontiers, both datasets.

Forest sweep (green in the paper) vs first-layer-pruned students (blue)
on the NDCG@10 / µs-per-doc plane, restricted to models reaching 99% of
the best tree model's quality.

Paper's shape: on MSN30K the neural frontier lies below (faster than)
the tree frontier — up to 4.4x at matched quality; on Istella-S the
frontiers are closer and trees keep the top-quality corner.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.design import HighQualityScenario, build_frontier


def _frontier_rows(pipeline, forest_specs, network_specs):
    points = pipeline.frontier_points(forest_specs, network_specs)
    plot = build_frontier(points)
    rows = [
        (
            p.name,
            p.family,
            round(p.ndcg10, 4),
            round(p.time_us, 2),
            "yes" if p in plot.forest_frontier + plot.neural_frontier else "",
        )
        for p in sorted(points, key=lambda p: -p.ndcg10)
    ]
    return rows, plot, points


def test_fig12_msn30k(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    forests = [zoo.large_forest, zoo.mid_forest, zoo.small_forest] + [
        s for s in zoo.extra_forests if s.n_leaves == 64
    ]
    rows, plot, points = _frontier_rows(msn_pipeline, forests, zoo.high_quality)
    reference = max(p.ndcg10 for p in points if p.family == "forest")
    scenario = HighQualityScenario(reference_ndcg10=reference)
    winner = scenario.winner(points)
    emit(
        "fig12_msn30k",
        ["Model", "Family", "NDCG@10", "us/doc", "On frontier"],
        rows,
        title="Figure 12 (MSN30K-like): high-quality frontier points",
        notes=(
            f"Quality floor = {scenario.quality_floor:.4f} (99% of best "
            f"forest).  Fastest qualifying model: {winner.name if winner else 'none'} "
            f"({winner.family if winner else '-'}).  Neural-dominates "
            f"fraction = {plot.neural_dominates_fraction():.2f}; best "
            f"neural speed-up at matched quality = "
            f"{plot.best_neural_speedup_at_quality():.1f}x (paper: 4.4x)."
        ),
    )
    # Shape: pruned nets dominate part of the forest frontier and provide
    # a multi-x speed-up at matched quality.  (The paper reaches 4.4x with
    # students trained on 2.3M documents; at this harness's scaled
    # training size the match point sits lower on the frontier, so the
    # asserted bounds are the scale-appropriate form of the claim — see
    # EXPERIMENTS.md.)
    assert plot.neural_dominates_fraction() >= 0.3
    assert plot.best_neural_speedup_at_quality() >= 1.5

    benchmark(lambda: build_frontier(points))


def test_fig12_istella(istella_pipeline, benchmark):
    zoo = istella_pipeline.zoo
    forests = [zoo.large_forest, zoo.mid_forest, zoo.small_forest]
    rows, plot, points = _frontier_rows(istella_pipeline, forests, zoo.high_quality)
    emit(
        "fig12_istella",
        ["Model", "Family", "NDCG@10", "us/doc", "On frontier"],
        rows,
        title="Figure 12 (Istella-S-like): high-quality frontier points",
        notes=(
            "Paper's shape: neural models cover most of the trade-off but "
            "trees keep a slight edge in the top-quality region; the "
            "frontiers may cross."
        ),
    )
    assert plot.forest_frontier and plot.neural_frontier

    benchmark(lambda: build_frontier(points))
