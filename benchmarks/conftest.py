"""Session fixtures for the benchmark harness.

One pipeline per dataset is trained once and shared by every bench
module; the network time predictor (GFLOPS surface + sparse
calibration) is likewise built once.
"""

from __future__ import annotations

import pytest

from repro.core import EfficientRankingPipeline, ExperimentScale
from repro.timing import NetworkTimePredictor

#: Scaled experiment sizes for the harness (see DESIGN.md): large enough
#: for the paper's orderings to emerge, small enough that the whole
#: harness trains in minutes on numpy.
BENCH_SCALE_MSN = ExperimentScale(
    n_queries=260,
    docs_per_query=24,
    tree_scale=0.12,
    distill_epochs=50,
    distill_milestones=(30, 43),
    distill_learning_rate=0.005,
    steps_per_epoch=30,
    prune_epochs=12,
    finetune_epochs=6,
    prune_milestones=(10, 15),
    pruning_sensitivity=2.0,
    seed=7,
)

BENCH_SCALE_ISTELLA = ExperimentScale(
    n_queries=220,
    docs_per_query=22,
    tree_scale=0.035,
    distill_epochs=50,
    distill_milestones=(30, 43),
    distill_learning_rate=0.005,
    steps_per_epoch=30,
    prune_epochs=12,
    finetune_epochs=6,
    prune_milestones=(10, 15),
    pruning_sensitivity=2.0,
    seed=9,
)


@pytest.fixture(scope="session")
def msn_pipeline():
    """The MSN30K-like pipeline (teacher and forests trained lazily)."""
    return EfficientRankingPipeline.for_msn30k(BENCH_SCALE_MSN)


@pytest.fixture(scope="session")
def istella_pipeline():
    """The Istella-S-like pipeline."""
    return EfficientRankingPipeline.for_istella(BENCH_SCALE_ISTELLA)


@pytest.fixture(scope="session")
def predictor():
    """Shared dense+sparse network time predictor."""
    return EfficientRankingPipeline.network_predictor()
