"""Parallel scoring engine — workers x shard size scaling table.

Sweeps the sharded scorer over worker counts and shard-size caps on one
dense student workload, reporting docs/sec, speedup over unsharded
scoring and the cache-warm rate.  Expected shape: sharding never changes
a score bit, the warm cache beats every cold configuration, and — on
multi-core hosts — more workers help until shards get too small.  On a
single-core host thread speedups cannot emerge; the table still records
the (flat) scaling and the cache row carries the >1x signal.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._common import emit
from repro.runtime import ParallelConfig, ShardedScorer, make_scorer

WORKERS = (1, 2, 4)
SHARD_ROWS = (None, 128, 512)
REPEATS = 3


def _best_rate(scorer, features) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        scorer.score(features)
        best = min(best, time.perf_counter() - start)
    return len(features) / best


def test_parallel_scaling(msn_pipeline, benchmark):
    student = msn_pipeline.student(msn_pipeline.zoo.flagship)
    rng = np.random.default_rng(3)
    features = rng.standard_normal((4096, msn_pipeline.train.n_features))

    plain = make_scorer(student, backend="dense-network")
    reference = plain.score(features)
    base_rate = _best_rate(plain, features)

    rows = [("unsharded", "-", round(base_rate), "1.00x", "-")]
    for workers in WORKERS:
        for shard_rows in SHARD_ROWS:
            config = ParallelConfig(
                workers=workers,
                strategy="even" if shard_rows is None else "size-capped",
                max_shard_rows=shard_rows,
            )
            with ShardedScorer(plain, config) as sharded:
                rate = _best_rate(sharded, features)
                np.testing.assert_array_equal(
                    sharded.score(features), reference
                )
            rows.append(
                (
                    f"{workers} worker(s)",
                    shard_rows or "even",
                    round(rate),
                    f"{rate / base_rate:.2f}x",
                    "-",
                )
            )

    with ShardedScorer(
        plain, ParallelConfig(workers=1, cache_entries=2 * len(features))
    ) as cached:
        cached.score(features)  # cold fill
        warm_rate = _best_rate(cached, features)
        np.testing.assert_array_equal(cached.score(features), reference)
        hit_ratio = cached.cache.hit_ratio
    rows.append(
        (
            "1 worker + warm cache",
            "even",
            round(warm_rate),
            f"{warm_rate / base_rate:.2f}x",
            f"{hit_ratio:.0%}",
        )
    )

    emit(
        "parallel_scaling",
        ["Configuration", "Shard rows", "Docs/sec", "Speedup", "Hit ratio"],
        rows,
        title="Sharded scoring throughput (dense student)",
        notes=(
            f"Host cores: {os.cpu_count()}.  Scores of every configuration "
            "are bit-identical to unsharded scoring.  Thread speedup needs "
            ">= 2 cores (numpy kernels release the GIL); the warm-cache row "
            "is the core-independent >1x signal."
        ),
    )

    assert warm_rate > base_rate, (
        f"warm cache ({warm_rate:.0f} docs/s) must beat unsharded "
        f"scoring ({base_rate:.0f} docs/s)"
    )

    with ShardedScorer(plain, ParallelConfig(workers=2)) as sharded:
        benchmark(lambda: sharded.score(features))
