"""Ablation — post-training quantization (the paper's future work).

Quantizes the pruned flagship student to 8/6/4 bits and measures the
ranking-quality impact, alongside the modeled SIMD speed-up ceiling.
Expected shape: int8 is quality-free (the future-work direction is
viable), aggressive bit-widths degrade.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.metrics import mean_ndcg
from repro.nn import quantize_student
from repro.nn.quantization import quantized_speedup_estimate

BITS = (8, 6, 4)


def test_ablation_quantization(msn_pipeline, predictor, benchmark):
    from repro.runtime import PricingContext, price

    student = msn_pipeline.pruned_student(msn_pipeline.zoo.flagship)
    test = msn_pipeline.test
    baseline = mean_ndcg(test, student.predict(test.features), 10)

    # Both prices come from the one runtime pricing surface: the fp32
    # hybrid via the sparse backend, int8 via the quantized backend
    # (which auto-selects hybrid pricing for this pruned student).
    context = PricingContext(predictor=predictor)
    fp32_us = price(student, context=context, backend="sparse-network")
    int8_us = price(
        student, context=context, backend="quantized-network", quantized_bits=8
    )

    rows = [("fp32 (pruned baseline)", round(baseline, 4), "-", round(fp32_us, 2))]
    quality = {}
    for bits in BITS:
        q = quantize_student(student, bits=bits)
        ndcg = mean_ndcg(test, q.predict(test.features), 10)
        quality[bits] = ndcg
        time_us = round(int8_us, 2) if bits == 8 else "-"
        rows.append((f"int{bits}", round(ndcg, 4), round(ndcg - baseline, 4), time_us))

    emit(
        "ablation_quantization",
        ["Precision", "NDCG@10", "Delta", "Modeled us/doc"],
        rows,
        title="Ablation: post-training quantization of the pruned flagship",
        notes=(
            f"SIMD lane ceiling {quantized_speedup_estimate():.0f}x; the "
            f"int8 timing model predicts {fp32_us / int8_us:.1f}x over the "
            "fp32 hybrid.  Shape to hold: int8 preserves ranking quality "
            "(zeros quantize to zero, so the sparse structure survives) — "
            "the paper's future-work direction composes with pruning."
        ),
    )

    assert quality[8] >= baseline - 0.005
    assert quality[8] >= quality[4] - 1e-9
    assert int8_us < fp32_us

    benchmark(lambda: quantize_student(student, bits=8))
