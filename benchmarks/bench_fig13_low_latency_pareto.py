"""Figure 13 — low-latency retrieval (<= 0.5 µs/doc), both datasets.

Small forests vs small first-layer-pruned students in the sub-half-
microsecond region.  Paper's shape: on MSN30K the neural frontier
dominates (e.g. 200x50x50x25 is 3x faster than a 300-tree 32-leaf forest
at better NDCG@10); on Istella-S the frontiers intersect but the most
effective model within the budget is still a network.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.design import LowLatencyScenario, build_frontier

BUDGET_US = 0.5


def _rows(points):
    return [
        (p.name, p.family, round(p.ndcg10, 4), round(p.time_us, 2))
        for p in sorted(points, key=lambda p: p.time_us)
    ]


def test_fig13_msn30k(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    small_forests = [
        s for s in zoo.extra_forests if s.n_leaves in (16, 32)
    ] + [zoo.small_forest]
    points = msn_pipeline.frontier_points(small_forests, zoo.low_latency)
    plot = build_frontier(points)
    scenario = LowLatencyScenario(max_time_us=BUDGET_US)
    qualifying = scenario.select(points)
    winner = scenario.winner(points)
    emit(
        "fig13_msn30k",
        ["Model", "Family", "NDCG@10", "us/doc"],
        _rows(points),
        title="Figure 13 (MSN30K-like): low-latency region",
        notes=(
            f"Budget {BUDGET_US} us/doc; qualifying: "
            f"{[p.name for p in qualifying]}.  Most effective within "
            f"budget: {winner.name if winner else 'none'} "
            f"({winner.family if winner else '-'})."
        ),
    )
    assert qualifying, "some model must fit the 0.5 us budget"
    # Shape: the winner within the budget is a pruned network.
    assert winner.family == "neural"

    benchmark(lambda: scenario.select(points))


def test_fig13_istella(istella_pipeline, benchmark):
    zoo = istella_pipeline.zoo
    small_forests = list(zoo.extra_forests)
    points = istella_pipeline.frontier_points(small_forests, zoo.low_latency)
    scenario = LowLatencyScenario(max_time_us=1.0)  # wider net on 220 features
    winner = scenario.winner(points)
    emit(
        "fig13_istella",
        ["Model", "Family", "NDCG@10", "us/doc"],
        _rows(points),
        title="Figure 13 (Istella-S-like): low-latency region",
        notes=(
            "Paper's shape: frontiers intersect, but the most effective "
            "model respecting the time requirement is a neural network "
            "(200x75x75x25 in the paper)."
        ),
    )
    assert winner is not None

    benchmark(lambda: scenario.select(points))
