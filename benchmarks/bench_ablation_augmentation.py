"""Ablation — split-point midpoint augmentation (Section 3).

Distills the same small student with augmented-batch fractions 0, 0.25
and 0.5 and compares approximation quality.  Cohen et al. (and the
paper) attribute much of the method's success to this augmentation; the
expected shape is that some augmentation beats none.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.distill import DistillationConfig, Distiller
from repro.metrics import mean_ndcg

FRACTIONS = (0.0, 0.25, 0.5)
HIDDEN = (100, 50)


def test_ablation_augmentation(msn_pipeline, benchmark):
    teacher = msn_pipeline.teacher()
    train, test = msn_pipeline.train, msn_pipeline.test
    teacher_scores = teacher.predict(test.features)
    teacher_ndcg = mean_ndcg(test, teacher_scores, 10)

    rows = []
    quality = {}
    for fraction in FRACTIONS:
        config = DistillationConfig(
            epochs=msn_pipeline.scale.distill_epochs,
            lr_milestones=msn_pipeline.scale.distill_milestones,
            augmented_fraction=fraction,
        )
        student = Distiller(config, seed=21).distill(teacher, train, hidden=HIDDEN)
        scores = student.predict(test.features)
        ndcg = mean_ndcg(test, scores, 10)
        corr = float(np.corrcoef(scores, teacher_scores)[0, 1])
        quality[fraction] = (ndcg, corr)
        rows.append((f"{fraction:.0%} augmented", round(ndcg, 4), round(corr, 3)))
    rows.append(("teacher (upper bound)", round(teacher_ndcg, 4), 1.0))

    emit(
        "ablation_augmentation",
        ["Batch composition", "NDCG@10", "Score corr. w/ teacher"],
        rows,
        title="Ablation: effect of split-point midpoint augmentation",
        notes=(
            "Shape to hold: augmented batches approximate the teacher at "
            "least as well as training on real documents only."
        ),
    )

    best_aug = max(quality[f][1] for f in FRACTIONS if f > 0)
    assert best_aug >= quality[0.0][1] - 0.05

    config = DistillationConfig(epochs=1, steps_per_epoch=5)
    benchmark(
        lambda: Distiller(config, seed=0).distill(teacher, train, hidden=(32,))
    )
