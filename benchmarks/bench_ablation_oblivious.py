"""Ablation — leaf-wise vs oblivious ensembles under QuickScorer.

QuickScorer's original evaluation (the paper's reference [13]) covers
both non-oblivious and oblivious regression trees.  This ablation trains
both families at a matched leaf budget and compares ranking quality and
QuickScorer-modeled cost.  Expected shape: the two families are
competitive at the same leaf budget (level-uniform splits act as a
structural regularizer and can even win on smooth-plus-stump signals,
as measured here), and QuickScorer scores both exactly.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.forest import GradientBoostingConfig, LambdaMartRanker
from repro.metrics import mean_ndcg
from repro.quickscorer import QuickScorer
from repro.runtime import price

N_TREES = 40
DEPTH = 5  # 32 leaves


def test_ablation_oblivious(msn_pipeline, benchmark):
    train, vali, test = msn_pipeline.train, msn_pipeline.vali, msn_pipeline.test

    leafwise = LambdaMartRanker(
        GradientBoostingConfig(
            n_trees=N_TREES, max_leaves=2**DEPTH, learning_rate=0.12,
            min_data_in_leaf=5,
        ),
        seed=11,
    ).fit(train, vali, name="leafwise")
    oblivious = LambdaMartRanker(
        GradientBoostingConfig(
            n_trees=N_TREES, tree_type="oblivious", oblivious_depth=DEPTH,
            learning_rate=0.12, min_data_in_leaf=5,
        ),
        seed=11,
    ).fit(train, vali, name="oblivious")

    rows = []
    quality = {}
    for forest in (leafwise, oblivious):
        ndcg = mean_ndcg(test, forest.predict(test.features), 10)
        quality[forest.name] = ndcg
        qs = QuickScorer(forest)
        qs.score(test.features[:256])
        rows.append(
            (
                forest.name,
                forest.describe(),
                round(ndcg, 4),
                round(price(forest), 2),
                round(qs.last_stats.false_node_fraction, 3),
            )
        )

    emit(
        "ablation_oblivious",
        ["Family", "Shape", "NDCG@10", "QS us/doc", "False-node fraction"],
        rows,
        title=f"Ablation: leaf-wise vs oblivious trees ({N_TREES} trees)",
        notes=(
            "Shape to hold: the two families are competitive at the same "
            "leaf budget (the level-uniform constraint regularizes), and "
            "both are QuickScorer-exact."
        ),
    )

    # Competitive within a band; no family ordering is asserted — which
    # family wins depends on the latent signal's structure.
    assert abs(quality["leafwise"] - quality["oblivious"]) < 0.05
    assert min(quality.values()) > 0.5  # both far above random

    # QuickScorer is exact on the oblivious forest too.
    x = test.features[:128]
    np.testing.assert_allclose(
        QuickScorer(oblivious).score(x), oblivious.predict(x), atol=1e-9
    )

    scorer = QuickScorer(oblivious)
    benchmark(lambda: scorer.score(x))
