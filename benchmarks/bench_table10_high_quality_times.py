"""Table 10 — predicted scoring times in the high-quality scenario.

For each architecture: the dense forward time, the first layer's share,
and the forecast after pruning the first layer (dense total minus the
first layer, the sparse residual being negligible at >= 95% sparsity).
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit
from repro.runtime import NetworkShape, PricingContext, network_report

ROWS = [
    ("MSN30K", 136, (300, 200, 100), 2.4, 30, 1.7),
    ("MSN30K", 136, (200, 100, 100, 50), 1.3, 39, 0.8),
    ("MSN30K", 136, (200, 50, 50, 25), 0.9, 58, 0.4),
    ("Istella-S", 220, (800, 400, 400, 200), 11.9, 23, 9.1),
    ("Istella-S", 220, (800, 200, 200, 100), 6.5, 41, 3.8),
    ("Istella-S", 220, (300, 200, 100), 2.8, 41, 1.6),
]


def test_table10(predictor, benchmark):
    context = PricingContext(predictor=predictor)
    table = []
    for dataset, f, arch, paper_time, paper_impact, paper_pruned in ROWS:
        report = network_report(NetworkShape(f, arch), context)
        table.append(
            (
                dataset,
                "x".join(map(str, arch)),
                round(report.dense_total_us_per_doc, 1),
                round(report.first_layer_impact_pct),
                round(report.pruned_forecast_us_per_doc, 1),
                f"{paper_time}/{paper_impact}/{paper_pruned}",
            )
        )
        assert report.dense_total_us_per_doc == pytest.approx(
            paper_time, rel=0.40, abs=0.2
        )
        assert report.pruned_forecast_us_per_doc < report.dense_total_us_per_doc

    emit(
        "table10",
        [
            "Dataset", "Model", "Dense (us/doc)", "1st layer %",
            "Pruned forecast (us/doc)", "Paper (time/impact/pruned)",
        ],
        table,
        title="Table 10: predicted pruned scoring times, high-quality scenario",
        notes=(
            "Shape to hold: first-layer impact 20-60% and pruning forecast "
            "cuts each model's time by that share."
        ),
    )

    benchmark(lambda: network_report(NetworkShape(136, (300, 200, 100)), context))
