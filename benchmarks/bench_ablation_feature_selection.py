"""Ablation — what the pruned first layer selects (Section 5.2).

The paper explains the first layer's prunability by feature selection:
"since the network is working on handcrafted features, the
sparsification selects just the essential combinations of input
features".  This ablation makes the claim measurable: the surviving
first-layer weights' per-feature usage is compared against the teacher
forest's split-based feature importance.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.analysis import (
    feature_selection_agreement,
    first_layer_feature_usage,
    top_feature_overlap,
)


def test_ablation_feature_selection(msn_pipeline, benchmark):
    teacher = msn_pipeline.teacher()
    pruned = msn_pipeline.pruned_student(msn_pipeline.zoo.flagship)

    rho = feature_selection_agreement(pruned, teacher)
    usage = first_layer_feature_usage(pruned)
    importance = teacher.feature_importance()

    rows = []
    for k in (10, 20, 40):
        rows.append(
            (
                f"top-{k} forest features kept",
                round(top_feature_overlap(pruned, teacher, k=k), 2),
            )
        )
    rows.append(("Spearman(usage, importance)", round(rho, 3)))
    rows.append(
        ("features with any surviving weight", int(np.sum(usage > 0)))
    )
    rows.append(
        ("features the forest ever splits on", int(np.sum(importance > 0)))
    )

    emit(
        "ablation_feature_selection",
        ["Quantity", "Value"],
        rows,
        title="Ablation: first-layer pruning as feature selection",
        notes=(
            "Shape to hold: the pruned layer's feature usage correlates "
            "positively with the teacher's split importance, and most of "
            "the forest's top features survive pruning."
        ),
    )

    assert rho > 0.15
    assert top_feature_overlap(pruned, teacher, k=10) >= 0.6

    benchmark(lambda: feature_selection_agreement(pruned, teacher))
