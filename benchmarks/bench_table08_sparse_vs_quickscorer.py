"""Table 8 — the flagship pruned net vs QuickScorer forests.

The 400x200x200x100 student, dense and with a ~98.7%-sparse first layer,
against the 878/500/300-tree 64-leaf forests.  Paper: the hybrid
(sparse-first-layer) model is both the fastest and as accurate as the
878-tree forest — 3.2x faster at equal NDCG@10 (dense 3.8 µs, sparse
2.6 µs, forests 8.2/4.9/3.0 µs).
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.matmul import CsrMatrix


def test_table08(msn_pipeline, predictor, benchmark):
    zoo = msn_pipeline.zoo
    rows = []
    forest_evals = []
    for spec, paper_ndcg, paper_time in (
        (zoo.large_forest, 0.5246, 8.2),
        (next(s for s in zoo.extra_forests if s.n_trees == 500), 0.5240, 4.9),
        (next(s for s in zoo.extra_forests if s.n_trees == 300), 0.5230, 3.0),
    ):
        ev = msn_pipeline.evaluate_forest(spec)
        forest_evals.append(ev)
        rows.append(
            (
                f"QuickScorer {spec.n_trees} trees",
                round(ev.ndcg10, 4),
                round(ev.time_us, 1),
                paper_ndcg,
                paper_time,
            )
        )

    dense = msn_pipeline.evaluate_network(zoo.flagship, pruned=False)
    sparse = msn_pipeline.evaluate_network(zoo.flagship, pruned=True)
    pruned_student = msn_pipeline.pruned_student(zoo.flagship)
    sparsity = pruned_student.first_layer_sparsity()
    rows.append(("Neural dense", round(dense.ndcg10, 4), round(dense.time_us, 1), 0.5222, 3.8))
    rows.append(
        (
            f"Neural sparse ({sparsity:.1%} 1st layer)",
            round(sparse.ndcg10, 4),
            round(sparse.time_us, 1),
            0.5246,
            2.6,
        )
    )

    emit(
        "table08",
        ["Model", "NDCG@10", "Time (us/doc)", "Paper NDCG@10", "Paper time"],
        rows,
        title="Table 8: dense & sparse 400x200x200x100 vs QuickScorer",
        notes=(
            "Shape to hold: the hybrid model is the fastest of the five "
            "and its quality does not drop below the dense student "
            "(pruning the first layer regularizes)."
        ),
    )

    # Shape assertions.
    assert sparse.time_us < dense.time_us
    assert sparse.time_us < min(ev.time_us for ev in forest_evals)
    assert sparse.ndcg10 >= dense.ndcg10 - 0.02
    assert sparsity >= 0.95

    # Wall-clock the hybrid first-layer multiplication.
    first = CsrMatrix.from_dense(pruned_student.network.first_layer.weight.data)
    import numpy as np

    b = np.random.default_rng(0).normal(size=(136, 64))
    from repro.matmul import SparseGemmExecutor

    executor = SparseGemmExecutor()
    benchmark(lambda: executor.multiply(first, b))
