"""Figure 11 — matrix-multiplication speed-up vs sparsity.

Speed-up of the sparse kernel over the dense one for first-layer shapes,
under the paper's worst-case assumption (all rows/columns active).
Paper: quadratic-looking growth over 0.90..0.99 reaching ~10x at 95%
and ~25x at the 98.7% sparsity of the final model.
"""

from __future__ import annotations

from benchmarks._common import emit

SHAPES = [(400, 136), (300, 136), (200, 136), (100, 136)]
SPARSITIES = (0.90, 0.925, 0.95, 0.975, 0.987, 0.99)


def test_fig11(predictor, benchmark):
    rows = []
    for m, k in SHAPES:
        speedups = [predictor.sparsity_speedup(m, k, s) for s in SPARSITIES]
        rows.append((f"{m}x{k}", *[round(s, 1) for s in speedups]))
        assert speedups == sorted(speedups)  # monotone in sparsity
    emit(
        "fig11",
        ["First layer"] + [f"s={s}" for s in SPARSITIES],
        rows,
        title="Figure 11: sparse speed-up vs sparsity (worst-case structure)",
        notes=(
            "Shape to hold: super-linear growth; ~10x around 95% and "
            ">=20x at 98.7% (the paper's final first-layer sparsity)."
        ),
    )

    s95 = predictor.sparsity_speedup(400, 136, 0.95)
    s987 = predictor.sparsity_speedup(400, 136, 0.987)
    assert 5.0 <= s95 <= 25.0
    assert s987 >= 20.0

    benchmark(lambda: predictor.sparsity_speedup(400, 136, 0.95))
