"""Table 11 — predicted scoring times in the low-latency scenario.

Same methodology as Table 10, on the small architectures that target the
<= 0.5 µs/doc region after first-layer pruning.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit
from repro.runtime import NetworkShape, PricingContext, network_report

ROWS = [
    ("MSN30K", 136, (100, 50, 50, 25), 0.6, 56, 0.3),
    ("MSN30K", 136, (100, 25, 25, 10), 0.5, 71, 0.2),
    ("MSN30K", 136, (50, 25, 25, 10), 0.3, 65, 0.1),
    ("Istella-S", 220, (200, 75, 75, 25), 1.6, 61, 0.6),
    ("Istella-S", 220, (100, 75, 75, 10), 0.9, 55, 0.4),
    ("Istella-S", 220, (100, 50, 50, 10), 0.8, 67, 0.3),
]


def test_table11(predictor, benchmark):
    context = PricingContext(predictor=predictor)
    table = []
    for dataset, f, arch, paper_time, paper_impact, paper_pruned in ROWS:
        report = network_report(NetworkShape(f, arch), context)
        table.append(
            (
                dataset,
                "x".join(map(str, arch)),
                round(report.dense_total_us_per_doc, 2),
                round(report.first_layer_impact_pct),
                round(report.pruned_forecast_us_per_doc, 2),
                f"{paper_time}/{paper_impact}/{paper_pruned}",
            )
        )
        assert report.dense_total_us_per_doc == pytest.approx(
            paper_time, rel=0.5, abs=0.25
        )
        # In these small nets the first layer carries most of the time.
        assert report.first_layer_impact_pct > 40.0

    # Shape: every MSN30K candidate fits the 0.5 us budget after pruning.
    for dataset, f, arch, *_ in ROWS:
        if dataset == "MSN30K":
            report = network_report(NetworkShape(f, arch), context)
            assert report.pruned_forecast_us_per_doc <= 0.55

    emit(
        "table11",
        [
            "Dataset", "Model", "Dense (us/doc)", "1st layer %",
            "Pruned forecast (us/doc)", "Paper (time/impact/pruned)",
        ],
        table,
        title="Table 11: predicted pruned scoring times, low-latency scenario",
        notes=(
            "Shape to hold: first layer dominant (>40%) in every small "
            "net; the MSN30K candidates fit the 0.5 us/doc ceiling after "
            "pruning."
        ),
    )

    benchmark(lambda: network_report(NetworkShape(136, (100, 50, 50, 25)), context))
