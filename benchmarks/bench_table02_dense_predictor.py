"""Table 2 — dense time predictor: real vs predicted scoring times.

"Real" times come from the blocked Goto executor (the simulated
i9-9900K); "predicted" from Eq. 3 over the measured GFLOPS surface.
Paper: 1000x500x500x100 -> 14.4/14.5, 200x100x100x50 -> 1.3/1.3,
300x150x150x30 -> 2.0/2.2, 500x100 -> 2.1/2.2 µs/doc (batch 1000).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import emit
from repro.matmul import DenseGemmExecutor

ARCHITECTURES = [
    ((1000, 500, 500, 100), 14.4, 14.5),
    ((200, 100, 100, 50), 1.3, 1.3),
    ((300, 150, 150, 30), 2.0, 2.2),
    ((500, 100), 2.1, 2.2),
]

FIRST_LAYER_EXTRA_NS = 0.6  # bias+ReLU6 write cost, matching the predictor


def _executor_time_us(arch, n=1000, f=136):
    executor = DenseGemmExecutor()
    dims = (f,) + tuple(arch)
    total = sum(
        executor.report(dims[i + 1], n, dims[i]).time_ns
        for i in range(len(dims) - 1)
    )
    total += FIRST_LAYER_EXTRA_NS * dims[1] * n
    return total / n / 1000.0


def test_table02(predictor, benchmark):
    rows = []
    for arch, paper_real, paper_pred in ARCHITECTURES:
        real = _executor_time_us(arch)
        pred = predictor.dense.forward_time_us_per_doc(136, arch)
        rows.append(
            (
                "x".join(map(str, arch)),
                round(real, 1),
                round(pred, 1),
                paper_real,
                paper_pred,
            )
        )
    emit(
        "table02",
        ["Model", "Real (us/doc)", "Predicted", "Paper real", "Paper pred."],
        rows,
        title="Table 2: dense prediction model (batch size 1000)",
        notes=(
            "Shape to hold: predicted tracks real within a few percent; "
            "absolute values within ~25% of the published i9-9900K runs."
        ),
    )
    for arch, paper_real, _ in ARCHITECTURES:
        pred = predictor.dense.forward_time_us_per_doc(136, arch)
        assert pred == pytest.approx(_executor_time_us(arch), rel=0.05)
        assert abs(pred - paper_real) / paper_real < 0.30

    # Wall-clock the actual blocked multiplication of the largest layer.
    rng = np.random.default_rng(0)
    a = rng.normal(size=(500, 1000))
    b = rng.normal(size=(1000, 256))
    executor = DenseGemmExecutor()
    benchmark(lambda: executor.multiply(a, b))
