"""Compiled inference plans — naive vs compiled forward comparison.

Compiles dense and first-layer-pruned variants of the paper's
400x200x200x100 architecture into :class:`InferencePlan` objects and
times them against naive ``FeedForwardNetwork.predict`` at several batch
sizes, in both execution dtypes.  Expected shape: the float64 plan
roughly matches naive scoring on dense networks (same BLAS, minus
allocations) and pulls ahead once the first layer runs sparse; the
float32 plan — the paper's kernel precision — is the headline speedup,
well above 1.5x on the 90%-pruned network at batch 256.  Every float64
row is asserted bit-identical to its reference before it is emitted.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._common import emit
from repro.nn.network import FeedForwardNetwork
from repro.pruning import LevelPruner
from repro.runtime import compile_network, reference_scores

INPUT_DIM = 136
HIDDEN = (400, 200, 200, 100)
BATCHES = (64, 256, 1024)
REPEATS = 7


def _network(sparsity: float, seed: int) -> FeedForwardNetwork:
    network = FeedForwardNetwork(INPUT_DIM, HIDDEN, seed=seed)
    if sparsity > 0:
        LevelPruner(sparsity).apply(network.first_layer)
    return network


def _best_us_per_doc(fn, batch: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6 / batch


def test_compiled_forward(benchmark):
    rng = np.random.default_rng(5)
    variants = [
        ("dense", 0.0),
        ("pruned 90%", 0.90),
        ("pruned 98%", 0.98),
    ]
    rows = []
    bench_target = None
    for label, sparsity in variants:
        network = _network(sparsity, seed=3)
        f64 = compile_network(network)
        f32 = compile_network(network, dtype="float32")
        kernels = "+".join(
            "sparse" if lp.kernel == "csr-spmm" else "dense"
            for lp in f64.layers
        )
        for batch in BATCHES:
            features = rng.standard_normal((batch, INPUT_DIM))
            np.testing.assert_array_equal(
                f64.score(features),
                reference_scores(network, f64, features),
                err_msg=f"{label}: float64 plan diverged at batch {batch}",
            )
            err = float(
                np.abs(f32.score(features) - f64.score(features)).max()
            )
            naive_us = _best_us_per_doc(
                lambda: network.predict(features), batch
            )
            f64_us = _best_us_per_doc(lambda: f64.score(features), batch)
            f32_us = _best_us_per_doc(lambda: f32.score(features), batch)
            rows.append(
                (
                    label,
                    kernels,
                    batch,
                    f"{naive_us:.2f}",
                    f"{f64_us:.2f}",
                    f"{f32_us:.2f}",
                    f"{naive_us / f64_us:.2f}x",
                    f"{naive_us / f32_us:.2f}x",
                    f"{err:.1e}",
                )
            )
            if label == "pruned 90%" and batch == 256:
                bench_target = (f32, features)
                headline = naive_us / f32_us

    emit(
        "compiled_forward",
        [
            "Network",
            "Kernels",
            "Batch",
            "Naive us/doc",
            "f64 plan",
            "f32 plan",
            "f64 speedup",
            "f32 speedup",
            "f32 max err",
        ],
        rows,
        title="Compiled inference plans vs naive forward (400x200x200x100)",
        notes=(
            "Naive = FeedForwardNetwork.predict (float64 BLAS with per-"
            "chunk allocations).  Plans pre-convert weights once, fuse "
            "bias+ReLU6 in place and reuse ping-pong buffers; float64 "
            "rows are bit-identical to the hybrid reference, float32 "
            "trades the last bits for the paper's kernel precision.  "
            "Kernel choice is the calibrated predictors' per-layer "
            "dense-vs-sparse arbitration."
        ),
    )

    assert headline >= 1.5, (
        f"float32 plan must clear 1.5x over naive predict on the "
        f"90%-pruned network at batch 256, got {headline:.2f}x"
    )
    plan, features = bench_target
    benchmark(lambda: plan.score(features))
