"""Compiled inference plans — dtype x structure kernel sweep.

Compiles dense, unstructured-pruned and column-block-pruned variants of
the paper's architectures into :class:`InferencePlan` objects at every
kernel configuration — float64, float32, block-sparse float32 and
quantized int8 — and times them against naive
``FeedForwardNetwork.predict`` at several batch sizes.  Expected shape:
the float64 plan roughly matches naive scoring on dense networks (same
BLAS, minus allocations) and pulls ahead once the first layer runs
sparse; the float32 plan is the paper's kernel-precision headline
(>= 1.5x over naive on the 90%-pruned network at batch 256); and on the
column-block-pruned network the block-SpMM / int8 integer-GEMM plans
must clear >= 1.3x over the plain float32 plan with NDCG@10 intact
within the declared score tolerance.  Every float64 row is asserted
bit-identical to its reference before it is emitted.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._common import emit
from repro.metrics import ndcg
from repro.nn.network import FeedForwardNetwork
from repro.pruning import ColumnBlockPruner, LevelPruner
from repro.runtime import compile_network, reference_scores

INPUT_DIM = 136
HIDDEN = (400, 200, 200, 100)
BATCHES = (64, 256, 1024)
REPEATS = 7
#: The dtype x structure gate: best of (block f32, int8) over plain f32
#: on the column-block-pruned network at batch 256.
MIN_QUANT_SPEEDUP = 1.3
NDCG_K = 10


def _network(label: str, sparsity: float, seed: int) -> FeedForwardNetwork:
    network = FeedForwardNetwork(INPUT_DIM, HIDDEN, seed=seed)
    if sparsity > 0:
        if label.startswith("col-block"):
            ColumnBlockPruner(sparsity, block_cols=8).apply(
                network.first_layer
            )
        else:
            LevelPruner(sparsity).apply(network.first_layer)
        network.apply_masks()
    return network


def _best_us_per_doc(fn, batch: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6 / batch


def _kernel_mix(plan) -> str:
    return "+".join(f"{n}x{name}" for name, n in plan.kernel_counts().items())


def _ndcg_degradation(reference: np.ndarray, got: np.ndarray) -> float:
    """Mean NDCG@10 drop of ``got``'s ranking vs the exact reference.

    Synthetic graded labels come from the reference ranking itself
    (top 10% of each 64-doc query graded 2, next 20% graded 1), so the
    reference scores by construction rank perfectly and any degradation
    is attributable to the probed plan's kernels.
    """
    query = 64
    drops = []
    for start in range(0, len(reference) - query + 1, query):
        ref = reference[start : start + query]
        plan_scores = got[start : start + query]
        order = np.argsort(-ref, kind="stable")
        labels = np.zeros(query)
        labels[order[: query // 10]] = 2.0
        labels[order[query // 10 : query // 10 + query // 5]] = 1.0
        drops.append(
            ndcg(ref, labels, k=NDCG_K) - ndcg(plan_scores, labels, k=NDCG_K)
        )
    return float(np.mean(drops))


def test_compiled_forward(benchmark):
    rng = np.random.default_rng(5)
    variants = [
        ("dense", 0.0),
        ("pruned 90%", 0.90),
        ("pruned 98%", 0.98),
        ("col-block 90%", 0.90),
    ]
    rows = []
    bench_target = None
    headline = quant_gate = None
    for label, sparsity in variants:
        network = _network(label, sparsity, seed=3)
        plans = {
            "f64": compile_network(network),
            "f32": compile_network(network, dtype="float32"),
            "block-f32": compile_network(
                network, dtype="float32", block_sparse=True
            ),
            "int8": compile_network(
                network, dtype="float32", quantize="int8", block_sparse=True
            ),
        }
        tolerance = plans["int8"].score_tolerance
        for batch in BATCHES:
            features = rng.standard_normal((batch, INPUT_DIM))
            reference = reference_scores(network, plans["f64"], features)
            np.testing.assert_array_equal(
                plans["f64"].score(features),
                reference,
                err_msg=f"{label}: float64 plan diverged at batch {batch}",
            )
            naive_us = _best_us_per_doc(
                lambda: network.predict(features), batch
            )
            timed = {
                name: _best_us_per_doc(
                    lambda plan=plan: plan.score(features), batch
                )
                for name, plan in plans.items()
            }
            int8_scores = plans["int8"].score(features)
            err = float(np.abs(int8_scores - reference).max())
            assert err <= tolerance, (
                f"{label}: int8 plan deviates {err:.3g} at batch {batch}, "
                f"above its declared tolerance {tolerance:.3g}"
            )
            rows.append(
                (
                    label,
                    _kernel_mix(plans["int8"]),
                    batch,
                    f"{naive_us:.2f}",
                    f"{timed['f64']:.2f}",
                    f"{timed['f32']:.2f}",
                    f"{timed['block-f32']:.2f}",
                    f"{timed['int8']:.2f}",
                    f"{naive_us / timed['f32']:.2f}x",
                    f"{timed['f32'] / min(timed['block-f32'], timed['int8']):.2f}x",
                    f"{err:.1e}",
                )
            )
            if label == "pruned 90%" and batch == 256:
                headline = naive_us / timed["f32"]
            if label == "col-block 90%" and batch == 256:
                bench_target = (plans["int8"], features)
                quant_gate = timed["f32"] / min(
                    timed["block-f32"], timed["int8"]
                )
                ndcg_drop = _ndcg_degradation(reference, int8_scores)
                assert ndcg_drop <= tolerance, (
                    f"int8 NDCG@{NDCG_K} degradation {ndcg_drop:.4f} "
                    f"exceeds the declared tolerance {tolerance:.3g}"
                )

    emit(
        "compiled_forward",
        [
            "Network",
            "int8 plan kernels",
            "Batch",
            "Naive us/doc",
            "f64 plan",
            "f32 plan",
            "block f32",
            "int8",
            "f32 over naive",
            "best quant over f32",
            "int8 max err",
        ],
        rows,
        title=(
            "Compiled inference plans: dtype x structure sweep "
            "(400x200x200x100)"
        ),
        notes=(
            "Naive = FeedForwardNetwork.predict (float64 BLAS with per-"
            "chunk allocations).  Plans pre-convert weights once, fuse "
            "dequant+bias+ReLU6 in place and reuse ping-pong buffers; "
            "float64 rows are bit-identical to the hybrid reference, "
            "float32/int8 trade the last bits for speed inside a "
            "declared score tolerance.  block f32 regroups column-block-"
            "pruned layers into dense 64x8 tiles for the panel-GEMM "
            "SpMM; int8 runs exact integer accumulation in float32 "
            "lanes with fused requantization between consecutive int8 "
            "layers.  Kernel choice is the calibrated predictors' "
            "per-layer arbitration."
        ),
    )

    assert headline >= 1.5, (
        f"float32 plan must clear 1.5x over naive predict on the "
        f"90%-pruned network at batch 256, got {headline:.2f}x"
    )
    assert quant_gate >= MIN_QUANT_SPEEDUP, (
        f"best of (block f32, int8) must clear {MIN_QUANT_SPEEDUP}x over "
        f"the plain float32 plan on the column-block-pruned network at "
        f"batch 256, got {quant_gate:.2f}x"
    )
    plan, features = bench_target
    benchmark(lambda: plan.score(features))
