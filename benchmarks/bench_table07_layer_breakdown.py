"""Table 7 — relative execution time per layer.

Per-layer share of the forward pass for three architectures (the paper
reports the first layer always dominant or near-dominant: 35/60/45% for
the three rows, including the bias+ReLU6 output-write effect).
"""

from __future__ import annotations

from benchmarks._common import emit

ARCHITECTURES = [
    ((400, 200, 200, 100), (35, 33, 20, 10, 2)),
    ((100, 50, 50, 10), (60, 21, 14, 3, 2)),
    ((200, 100, 100, 50), (45, 28, 17, 8, 2)),
]


def test_table07(predictor, benchmark):
    rows = []
    for arch, paper in ARCHITECTURES:
        breakdown = predictor.dense.layer_breakdown(136, arch)
        cells = ["x".join(map(str, arch))]
        cells.extend(round(p, 1) for p in breakdown)
        cells.append("/".join(str(p) for p in paper[: len(breakdown)]))
        rows.append(tuple(cells))
        # Shape: the first layer is dominant or near-dominant.
        assert breakdown[0] >= max(breakdown) - 6.0
        # Shape: the scoring-relevant early layers carry most of the cost.
        assert breakdown[0] + breakdown[1] > 50.0

    emit(
        "table07",
        ["Model", "1st %", "2nd %", "3rd %", "4th %", "Paper (hidden layers)"],
        rows,
        title="Table 7: relative execution time per layer",
        notes=(
            "Paper rows (with the scoring head as a 5th layer at ~2%): "
            "35/33/20/10, 60/21/14/3, 45/28/17/8.  Shape to hold: early "
            "layers dominate; the first layer is the pruning target."
        ),
    )

    benchmark(lambda: predictor.dense.layer_breakdown(136, (400, 200, 200, 100)))
