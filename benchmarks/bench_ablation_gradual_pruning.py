"""Ablation — pruning criterion: fixed threshold vs gradual schedules.

Section 2.3 contrasts one-shot/level pruning with Han et al.'s gradual
sparsity ramps and the Distiller fixed-threshold rule the paper adopts.
This ablation prunes the flagship student's first layer three ways —
fixed threshold (the paper's), AGP polynomial ramp, linear ramp — to a
comparable final sparsity and compares quality.

Expected shape: all three land in the same quality band (the first
layer is robust under fine-tuning); the threshold rule needs no target
hyper-parameter, which is why the paper prefers it.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.metrics import mean_ndcg
from repro.pruning import FirstLayerPruner, FirstLayerPruningConfig


def test_ablation_gradual_pruning(msn_pipeline, benchmark):
    student = msn_pipeline.student(msn_pipeline.zoo.flagship)
    teacher = msn_pipeline.teacher()
    test = msn_pipeline.test
    dense_ndcg = mean_ndcg(test, student.predict(test.features), 10)
    scale = msn_pipeline.scale

    def make_config(method: str) -> FirstLayerPruningConfig:
        return FirstLayerPruningConfig(
            method=method,
            target_sparsity=0.98,
            sensitivity=scale.pruning_sensitivity,
            epochs_prune=scale.prune_epochs,
            epochs_finetune=scale.finetune_epochs,
            lr_milestones=scale.prune_milestones,
            steps_per_epoch=scale.steps_per_epoch,
        )

    rows = [("dense baseline", "-", round(dense_ndcg, 4))]
    results = {}
    for method in ("threshold", "agp", "linear"):
        pruner = FirstLayerPruner(make_config(method), seed=scale.seed)
        pruned = pruner.prune(student, teacher, msn_pipeline.train)
        ndcg = mean_ndcg(test, pruned.predict(test.features), 10)
        results[method] = ndcg
        rows.append(
            (
                method,
                f"{pruned.first_layer_sparsity():.1%}",
                round(ndcg, 4),
            )
        )

    emit(
        "ablation_gradual_pruning",
        ["Criterion", "Final 1st-layer sparsity", "NDCG@10"],
        rows,
        title="Ablation: pruning criterion on the flagship first layer",
        notes=(
            "Shape to hold: the three criteria land within a narrow "
            "quality band at comparable sparsity — the first layer is "
            "robust however it is sparsified, as Fig. 10 (dynamic) "
            "implies."
        ),
    )

    band = max(results.values()) - min(results.values())
    assert band < 0.05
    for ndcg in results.values():
        assert ndcg >= dense_ndcg - 0.05

    config = make_config("agp")
    benchmark(
        lambda: FirstLayerPruningConfig(
            method="agp", target_sparsity=config.target_sparsity
        )
    )
