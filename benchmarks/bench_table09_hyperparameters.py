"""Table 9 — training and pruning hyper-parameters.

A configuration echo: the library carries the paper's exact Table 9
settings (E_t, E_p, E_ft, gamma, gamma_step, dropout) as the full-scale
defaults, alongside the scaled settings this harness trains with.
"""

from __future__ import annotations

from benchmarks._common import emit
from benchmarks.conftest import BENCH_SCALE_ISTELLA, BENCH_SCALE_MSN
from repro.core import ISTELLA_HYPERPARAMS, MSN30K_HYPERPARAMS


def test_table09(benchmark):
    rows = [MSN30K_HYPERPARAMS.as_row(), ISTELLA_HYPERPARAMS.as_row()]
    emit(
        "table09",
        ["Dataset", "E_t", "E_p", "E_ft", "gamma", "gamma_step", "Dropout"],
        rows,
        title="Table 9: training and pruning hyper-parameters (paper values)",
        notes=(
            "Harness-scale overrides (see DESIGN.md): MSN30K-like trains "
            f"E_t={BENCH_SCALE_MSN.distill_epochs}, "
            f"E_p={BENCH_SCALE_MSN.prune_epochs}, "
            f"E_ft={BENCH_SCALE_MSN.finetune_epochs}; Istella-S-like "
            f"E_t={BENCH_SCALE_ISTELLA.distill_epochs}, "
            f"E_p={BENCH_SCALE_ISTELLA.prune_epochs}, "
            f"E_ft={BENCH_SCALE_ISTELLA.finetune_epochs}."
        ),
    )
    # Exact paper values (Table 9).
    assert MSN30K_HYPERPARAMS.as_row() == ("MSN30K", 100, 80, 20, 0.1, "50, 80", "-")
    assert ISTELLA_HYPERPARAMS.as_row() == (
        "Istella-S", 250, 60, 190, 0.5, "90, 130, 180", "0.1",
    )
    benchmark(lambda: MSN30K_HYPERPARAMS.as_row())
