"""Figure 6 — the GFLOPS heat map at n = 1000 and its three k-zones.

Sweeps the (m, k) grid, emits the heat map rows, and summarizes the
horizontal stripes the paper derives its lookup from:
k >= 512 -> ~130 GFLOPS, 128 <= k < 512 -> ~110, k < 128 -> ~90.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit
from repro.timing import GflopsSurface


def test_fig06(benchmark):
    surface = GflopsSurface.measure(batch_size=1000)
    zones = surface.zone_summary()

    # Emit a compact heat map (m rows x k columns).
    k_cols = [int(k) for k in surface.k_grid]
    rows = []
    for i, m in enumerate(surface.m_grid):
        rows.append(
            (int(m), *[round(float(surface.gflops[i, j]), 0) for j in range(len(k_cols))])
        )
    emit(
        "fig06",
        ["m \\ k"] + [str(k) for k in k_cols],
        rows,
        title="Figure 6: GFLOPS heat map, batch n = 1000",
        notes=(
            f"Zone summary: k<128 -> {zones.low_k_gflops:.1f} GFLOPS "
            f"(paper ~90), 128<=k<512 -> {zones.mid_k_gflops:.1f} "
            f"(paper ~110), k>=512 -> {zones.high_k_gflops:.1f} (paper ~130)."
        ),
    )

    assert zones.low_k_gflops == pytest.approx(90.0, rel=0.12)
    assert zones.mid_k_gflops == pytest.approx(110.0, rel=0.12)
    assert zones.high_k_gflops == pytest.approx(130.0, rel=0.12)

    benchmark(lambda: surface.lookup(400, 136))
