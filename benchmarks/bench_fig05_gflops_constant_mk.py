"""Figure 5 — GFLOPS at constant m*k.

Sweeping the aspect ratio of A with m*k fixed: the paper shows that
small m with large k stays fast (left side) while small k with large m
degrades badly (right side).
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.matmul import DenseGemmExecutor

PRODUCT = 512 * 512
RATIOS = [(64, 4096), (128, 2048), (256, 1024), (512, 512),
          (1024, 256), (2048, 128), (4096, 64)]


def test_fig05(benchmark):
    executor = DenseGemmExecutor()
    rows = []
    values = []
    for m, k in RATIOS:
        assert m * k == PRODUCT
        gflops = executor.measure_gflops(m, 1000, k)
        values.append(gflops)
        rows.append((f"{m}x{k}", round(gflops, 1)))
    emit(
        "fig05",
        ["A shape (m x k)", "GFLOPS (n=1000)"],
        rows,
        title="Figure 5: GFLOPS with the product m*k constant",
        notes=(
            "Shape to hold: the left side (small m, large k) sustains high "
            "throughput; the right side (large m, small k) degrades."
        ),
    )
    # Tall-k side much faster than the small-k side; right tail decreasing.
    assert max(values[:3]) > 1.2 * values[-1]
    assert values[-3] >= values[-2] >= values[-1]

    benchmark(lambda: executor.measure_gflops(4096, 1000, 64))
