"""Figure 10 — static and dynamic pruning sensitivity per layer.

Runs both analyses on the flagship 400x200x200x100 student: prune one
layer at a time at increasing sparsity and evaluate NDCG@10 on the
validation queries, without (static) and with (dynamic) fine-tuning.

Paper's shape: statically, early layers are the most sensitive; with
retraining the trend inverts and high first-layer sparsity matches or
*beats* the dense model (pruning as a regularizer).
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.distill.distiller import make_distillation_provider
from repro.distill.teacher import TreeEnsembleTeacher
from repro.metrics import mean_ndcg
from repro.nn.training import Trainer, TrainingConfig
from repro.pruning import dynamic_sensitivity, static_sensitivity

SPARSITIES = (0.0, 0.5, 0.8, 0.95, 0.99)


def test_fig10(msn_pipeline, benchmark):
    student = msn_pipeline.student(msn_pipeline.zoo.flagship)
    vali = msn_pipeline.vali
    teacher = TreeEnsembleTeacher(msn_pipeline.teacher())

    def eval_fn(probe):
        return mean_ndcg(vali, probe.predict(vali.features), 10)

    def finetune_fn(probe):
        provider = make_distillation_provider(
            teacher, msn_pipeline.train, probe.normalizer
        )
        trainer = Trainer(
            probe.network,
            TrainingConfig(epochs=3, batch_size=256, learning_rate=0.001),
            seed=1,
        )
        trainer.fit(batch_provider=provider, steps_per_epoch=10)

    static = static_sensitivity(
        student, eval_fn, sparsities=SPARSITIES, layers=[0, 1, 2, 3]
    )
    dynamic = dynamic_sensitivity(
        student, eval_fn, finetune_fn, sparsities=SPARSITIES, layers=[0, 1, 2, 3]
    )

    rows = []
    for kind, result in (("static", static), ("dynamic", dynamic)):
        for layer, curve in sorted(result.curves.items()):
            rows.append(
                (kind, f"fc{layer + 1}", *[round(v, 4) for v in curve])
            )
    emit(
        "fig10",
        ["Analysis", "Layer"] + [f"s={s}" for s in SPARSITIES],
        rows,
        title="Figure 10: static and dynamic sensitivity (400x200x200x100)",
        notes=(
            f"Dense baseline NDCG@10 = {static.baseline:.4f}.  Shape to "
            "hold: static curves fall with sparsity; with fine-tuning the "
            "first layer tolerates extreme sparsity (regularizer effect)."
        ),
    )

    # Static pruning at 99% must not help; fine-tuning must recover the
    # first layer to (at least close to) the dense baseline.
    assert static.curves[0][-1] <= static.baseline + 0.01
    assert dynamic.curves[0][-1] >= static.curves[0][-1] - 0.01
    assert dynamic.curves[0][-1] >= dynamic.baseline - 0.05

    probe = student.clone()
    benchmark(lambda: eval_fn(probe))
