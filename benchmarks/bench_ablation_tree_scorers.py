"""Ablation — the tree-scorer landscape of Section 2.2.

Compares the calibrated cost models of the three traversal strategies
the paper discusses: scalar QuickScorer, vectorized QuickScorer (vQS,
the calibrated default), and RapidScorer's leaf-insensitive epitome
encoding, across leaf counts.  Expected shape: vQS beats scalar ~2-3x
everywhere; RapidScorer overtakes (v)QS beyond 64 leaves, where
QuickScorer's multi-word bitvector penalty bites.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.quickscorer import QuickScorer, QuickScorerCostModel, RapidScorerCostModel
from repro.runtime import price

LEAVES = (16, 32, 64, 128, 256, 512)
N_TREES = 500


def test_ablation_tree_scorers(msn_pipeline, benchmark):
    vqs = QuickScorerCostModel()
    scalar = vqs.scalar_variant()
    rapid = RapidScorerCostModel(base=vqs)

    rows = []
    for leaves in LEAVES:
        t_scalar = scalar.scoring_time_us(N_TREES, leaves)
        t_vqs = vqs.scoring_time_us(N_TREES, leaves)
        t_rapid = rapid.scoring_time_us(N_TREES, leaves)
        rows.append(
            (
                leaves,
                round(t_scalar, 2),
                round(t_vqs, 2),
                round(t_rapid, 2),
                round(t_vqs / t_rapid, 2),
            )
        )

    emit(
        "ablation_tree_scorers",
        ["Leaves", "Scalar QS (us)", "vQS (us)", "RapidScorer (us)", "vQS/Rapid"],
        rows,
        title=f"Ablation: tree-scorer cost models ({N_TREES} trees)",
        notes=(
            "Shape to hold: vQS ~2-3x over scalar at every size; "
            "RapidScorer overtakes vQS above 64 leaves (the multi-word "
            "bitvector penalty RapidScorer's epitome removes)."
        ),
    )

    for leaves in LEAVES:
        assert scalar.scoring_time_us(N_TREES, leaves) > 1.5 * vqs.scoring_time_us(
            N_TREES, leaves
        )
    assert rapid.scoring_time_us(N_TREES, 256) < vqs.scoring_time_us(N_TREES, 256)

    # Wall-clock the real traversal on a measured false-node fraction,
    # then feed it back into the cost model (measured-stats mode).
    forest = msn_pipeline.forest(msn_pipeline.zoo.small_forest)
    scorer = QuickScorer(forest)
    batch = msn_pipeline.test.features[:256]
    scorer.score(batch)
    measured = scorer.last_stats.false_node_fraction
    assert 0.0 < measured < 1.0
    # Measured-stats pricing through the one runtime surface: the
    # false_fraction option reaches the QuickScorer backend's builder.
    assert price(forest, false_fraction=measured) == vqs.scoring_time_for(
        forest, false_fraction=measured
    )
    benchmark(lambda: price(forest, false_fraction=measured))
