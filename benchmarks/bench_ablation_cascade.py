"""Ablation — early-exit cascades (the paper's future work).

Combines a pruned low-latency student (stage 1) with the Mid forest
(stage 2) into an early-exit cascade and compares cost/quality against
each component alone.  Expected shape: the cascade's amortized cost sits
well below the forest's while retaining most of its quality.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.design import CascadeStage, EarlyExitCascade
from repro.metrics import mean_ndcg


def test_ablation_cascade(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    test = msn_pipeline.test

    forest_eval = msn_pipeline.evaluate_forest(zoo.mid_forest)
    net_spec = zoo.low_latency[0]
    net_eval = msn_pipeline.evaluate_network(net_spec, pruned=True)
    student = msn_pipeline.pruned_student(net_spec)
    forest = msn_pipeline.forest(zoo.mid_forest)

    # Stages built straight from the models: execution paths come
    # from the runtime's scorers, the amortized prices stay pinned to
    # the paper-named evaluation figures.
    cascade = EarlyExitCascade(
        [
            CascadeStage.from_model(
                student,
                backend="sparse-network",
                name="pruned " + net_spec.describe(),
                cost_us_per_doc=net_eval.time_us,
                keep_fraction=0.3,
            ),
            CascadeStage.from_model(
                forest, name="mid forest", cost_us_per_doc=forest_eval.time_us
            ),
        ]
    )
    cascade_scores = cascade.score_dataset(test)
    cascade_ndcg = mean_ndcg(test, cascade_scores, 10)
    cascade_cost = cascade.expected_cost_us_per_doc()

    rows = [
        ("mid forest alone", round(forest_eval.ndcg10, 4), round(forest_eval.time_us, 2)),
        ("pruned net alone", round(net_eval.ndcg10, 4), round(net_eval.time_us, 2)),
        ("early-exit cascade", round(cascade_ndcg, 4), round(cascade_cost, 2)),
    ]
    emit(
        "ablation_cascade",
        ["System", "NDCG@10", "us/doc"],
        rows,
        title="Ablation: early-exit cascade (net stage 1, forest stage 2)",
        notes=(
            f"Cascade: {cascade.describe()}.  Shape to hold: cascade cost "
            "well below the forest's; quality between the two components."
        ),
    )

    assert cascade_cost < forest_eval.time_us
    assert cascade_ndcg >= net_eval.ndcg10 - 0.05

    query = test.features[test.query_slice(0)]
    benchmark(lambda: cascade.score_query(query))
