"""Table 3 — MKL vs LIBXSMM sparse-dense multiplication.

First-layer shapes of MSN30K students (m x 136) at the paper's sparsity
levels, batch N = 64.  Paper: LIBXSMM always wins, often by more than
2x (e.g. 400x136 @ 0.996: 3.1 µs MKL vs 1.2 µs LIBXSMM).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.matmul import CsrMatrix, MklSdmmCostModel, SparseGemmExecutor

SHAPES = [
    (400, 0.996, 3.1, 1.2),
    (300, 0.985, 2.5, 1.4),
    (200, 0.971, 2.8, 1.6),
    (100, 0.989, 1.0, 0.4),
    (50, 0.968, 0.7, 0.2),
]

BATCH = 64
K = 136


def _pruned_matrix(m: int, sparsity: float, seed: int) -> CsrMatrix:
    rng = np.random.default_rng(seed)
    nnz = int(round((1 - sparsity) * m * K))
    dense = np.zeros(m * K)
    dense[rng.choice(m * K, nnz, replace=False)] = rng.normal(size=nnz)
    return CsrMatrix.from_dense(dense.reshape(m, K))


def test_table03(benchmark):
    executor = SparseGemmExecutor()
    mkl = MklSdmmCostModel()
    rows = []
    for m, sparsity, paper_mkl, paper_xsmm in SHAPES:
        a = _pruned_matrix(m, sparsity, seed=m)
        t_mkl = mkl.time_for(a, BATCH)
        t_xsmm = executor.measure_time_us(a, BATCH)
        rows.append(
            (
                f"{m}x{K}",
                sparsity,
                round(t_mkl, 1),
                round(t_xsmm, 1),
                paper_mkl,
                paper_xsmm,
            )
        )
        assert t_xsmm < t_mkl  # LIBXSMM always faster on these shapes
    emit(
        "table03",
        ["Shape", "Sparsity", "MKL (us)", "LIBXSMM (us)", "Paper MKL", "Paper LIBXSMM"],
        rows,
        title="Table 3: MKL vs LIBXSMM SDMM (first-layer shapes, N=64)",
        notes="Shape to hold: LIBXSMM wins everywhere, typically >= 2x.",
    )

    a = _pruned_matrix(400, 0.996, seed=400)
    b = np.random.default_rng(1).normal(size=(K, BATCH))
    benchmark(lambda: executor.multiply(a, b, compute=True))
