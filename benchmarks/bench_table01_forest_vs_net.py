"""Table 1 — QuickScorer forests vs dense neural rankers on MSN30K.

Reproduces the paper's opening comparison: Large/Mid/Small 64-leaf
forests against the Large (1000x500x500x100) and Small (500x100) dense
students, reporting NDCG@10 / NDCG / MAP, scoring time (µs/doc at the
paper-named shapes) and Fisher-randomization significance symbols
against the Mid (*) and Small (†) forests.

Paper's shape: forests are both faster and at least as accurate as dense
nets — speed-ups 2.8x (Small Net vs Small Forest) to 16.2x (Large Net vs
Mid Forest); the Large Forest is the best model.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit
from repro.metrics import fisher_randomization_test
from repro.quickscorer import QuickScorer


def _significance(model, mid, small) -> str:
    symbols = ""
    for baseline, symbol in ((mid, "*"), (small, "+")):
        if model is baseline:
            continue
        result = fisher_randomization_test(
            model.per_query_ndcg10, baseline.per_query_ndcg10, seed=0
        )
        if result.observed_difference > 0 and result.significant():
            symbols += symbol
    return symbols


def test_table01(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    large_f = msn_pipeline.evaluate_forest(zoo.large_forest)
    mid_f = msn_pipeline.evaluate_forest(zoo.mid_forest)
    small_f = msn_pipeline.evaluate_forest(zoo.small_forest)
    large_n = msn_pipeline.evaluate_network(zoo.large_net, pruned=False)
    small_n = msn_pipeline.evaluate_network(zoo.small_net, pruned=False)

    models = [large_f, mid_f, small_f, large_n, small_n]
    rows = [
        (
            m.name + _significance(m, mid_f, small_f),
            round(m.ndcg10, 4),
            round(m.ndcg_full, 4),
            round(m.map_score, 4),
            round(m.time_us, 1),
        )
        for m in models
    ]
    emit(
        "table01",
        ["Model", "NDCG@10", "NDCG", "MAP", "Scoring Time (us/doc)"],
        rows,
        title="Table 1: QuickScorer vs dense neural networks (MSN30K-like)",
        notes=(
            "Paper (MSN30K): Large/Mid/Small Forest = 0.5246/0.5206/0.5181 "
            "NDCG@10 at 8.2/1.5/0.8 us; Large/Small Net = 0.5198/0.5171 at "
            "24.4/2.2 us.  Shape to hold: forests dominate dense nets in "
            "speed at comparable quality (2.8x-16.2x)."
        ),
    )

    # Shape assertions (who wins).
    assert large_f.ndcg10 >= small_f.ndcg10 - 0.01
    assert large_n.time_us > large_f.time_us  # dense large net is slowest
    assert small_n.time_us > small_f.time_us  # 2.8x in the paper

    # Wall-clock the real traversal of the mid forest.
    forest = msn_pipeline.forest(zoo.mid_forest)
    scorer = QuickScorer(forest)
    batch = msn_pipeline.test.features[:512]
    benchmark(lambda: scorer.score(batch))
