"""Ablation — the CPU/GPU engine choice (the paper's future work).

Section 7 plans a GPU/FPGA extension; Section 2.2 cites Lettich et al.'s
GPU QuickScorer ("up to 100x ... very large forests, 20,000 trees").
This ablation maps the engine landscape with the GPU cost model: per-doc
times across forest sizes and batch regimes, locating the CPU/GPU
crossover relative to the paper's deployment forests.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.runtime import ForestShape, PricingContext, price

FOREST_SIZES = (300, 878, 2000, 5000, 20_000)
BATCHES = (128, 10_000, 100_000)


def test_ablation_gpu(benchmark):
    # One pricing function, two devices: the CPU and GPU QuickScorer
    # models are both reached through price(ForestShape(...)).
    context = PricingContext()
    model = context.gpu_cost
    cpu = model.cpu_model

    rows = []
    for n_trees in FOREST_SIZES:
        cpu_us = price(ForestShape(n_trees, 64), context=context)
        row = [n_trees, round(cpu_us, 2)]
        for batch in BATCHES:
            row.append(
                round(
                    price(
                        ForestShape(n_trees, 64),
                        context=context,
                        device="gpu",
                        batch_docs=batch,
                    ),
                    2,
                )
            )
        rows.append(tuple(row))

    crossover = model.crossover_trees(batch_docs=128)
    emit(
        "ablation_gpu",
        ["Trees", "CPU (us/doc)"] + [f"GPU @batch {b}" for b in BATCHES],
        rows,
        title="Ablation: CPU vs GPU QuickScorer cost models (64 leaves)",
        notes=(
            f"Latency-bound (batch 128) CPU/GPU crossover: ~{crossover} "
            "trees — above every deployment forest in the paper, "
            "supporting its CPU focus; at 20k trees / throughput batches "
            "the model reproduces Lettich et al.'s ~100x."
        ),
    )

    # Shape assertions.
    assert crossover > 878
    big_cpu = price(ForestShape(20_000, 64), context=context)
    big_gpu = price(
        ForestShape(20_000, 64), context=context, device="gpu",
        batch_docs=100_000,
    )
    assert 70.0 <= big_cpu / big_gpu <= 130.0

    benchmark(
        lambda: price(
            ForestShape(878, 64), context=context, device="gpu",
            batch_docs=10_000,
        )
    )
