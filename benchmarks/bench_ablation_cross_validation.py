"""Ablation — fold-to-fold variance of the evaluation.

MSLR-WEB30K ships as five folds and the paper evaluates on Fold 1; this
ablation runs a small LambdaMART across all fold rotations of the
synthetic surrogate to quantify how much NDCG@10 moves between folds —
the error bar behind every quality comparison in the harness.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.datasets import k_fold_splits, make_msn30k_like
from repro.datasets.folds import cross_validated_metric
from repro.forest import GradientBoostingConfig, LambdaMartRanker
from repro.metrics import mean_ndcg

K = 4
CONFIG = GradientBoostingConfig(
    n_trees=30, max_leaves=32, learning_rate=0.12, min_data_in_leaf=5
)


def test_ablation_cross_validation(benchmark):
    data = make_msn30k_like(n_queries=200, docs_per_query=20, seed=31)
    folds = k_fold_splits(data, k=K, seed=31)

    mean, values = cross_validated_metric(
        folds,
        fit_fn=lambda train, vali: LambdaMartRanker(CONFIG, seed=31).fit(
            train, vali
        ),
        metric_fn=lambda test, scores: mean_ndcg(test, scores, 10),
    )
    spread = float(np.std(values))

    rows = [
        (f"fold {fold.index}", round(value, 4))
        for fold, value in zip(folds, values)
    ]
    rows.append(("mean", round(mean, 4)))
    rows.append(("std", round(spread, 4)))
    emit(
        "ablation_cross_validation",
        ["Rotation", "NDCG@10"],
        rows,
        title=f"Ablation: {K}-fold cross-validated LambdaMART quality",
        notes=(
            "Shape to hold: fold-to-fold standard deviation is small "
            "relative to the model gaps the harness reasons about "
            "(roughly an order of magnitude below the forest-vs-net "
            "differences)."
        ),
    )

    assert len(values) == K
    assert spread < 0.05
    assert mean > 0.5

    fold = folds[0]
    forest = LambdaMartRanker(CONFIG, seed=31).fit(fold.train)
    batch = fold.test.features[: min(256, fold.test.n_docs)]
    benchmark(lambda: forest.predict(batch))
