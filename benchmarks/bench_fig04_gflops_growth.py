"""Figure 4 — GFLOPS as m and k grow together, for several batch sizes.

The executor is swept with m = k over a grid at n in {64, 256, 1000};
the paper's figure shows throughput rising with the matrix size and with
the batch.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.matmul import DenseGemmExecutor

SIZES = (32, 64, 128, 256, 512, 1024)
BATCHES = (64, 256, 1000)


def test_fig04(benchmark):
    executor = DenseGemmExecutor()
    rows = []
    series = {n: [] for n in BATCHES}
    for size in SIZES:
        row = [size]
        for n in BATCHES:
            gflops = executor.measure_gflops(size, n, size)
            series[n].append(gflops)
            row.append(round(gflops, 1))
        rows.append(tuple(row))
    emit(
        "fig04",
        ["m=k"] + [f"GFLOPS (n={n})" for n in BATCHES],
        rows,
        title="Figure 4: GFLOPS as m and k grow",
        notes=(
            "Shape to hold: monotone growth with m=k for every batch, and "
            "larger batches sustain higher throughput."
        ),
    )
    for n in BATCHES:
        assert series[n] == sorted(series[n])
    for i in range(len(SIZES)):
        assert series[1000][i] >= series[64][i]

    benchmark(lambda: executor.measure_gflops(512, 256, 512))
