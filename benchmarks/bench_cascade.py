"""Budgeted ranking pipelines — NDCG@10 vs measured µs/query Pareto.

The paper's deployment question, asked per **query** rather than per
document: given the trained zoo, does a staged pipeline (cheap pruned
student filters, expensive compiled student reranks the survivors) beat
serving the big compiled student alone?  Each system scores the whole
test set query by query and reports best-of-``REPEATS`` wall µs/query
next to its NDCG@10; :func:`~repro.utils.pareto.pareto_frontier` marks
the frontier.

Two scenario baselines, mirroring Tables 10/11:

* **high-quality** — the compiled dense student at the scenario's
  flagship architecture (300x200x100);
* **low-latency** — the compiled pruned student at the smallest Table 11
  architecture (50x25x25x10).

Shape to hold (asserted): at least one cascade is on the frontier and
beats the high-quality baseline on *both* axes — lower measured
µs/query at equal-or-better NDCG@10 — because the expensive model's
microseconds are spent only on documents a cheap model already likes.
A budget-capped variant additionally shows predicted-spend early exits
without leaving the frontier neighbourhood.

All pipelines are built from JSON-round-tripped
:class:`~repro.runtime.ranking.PipelineConfig` objects — the config is
the deployable artifact — and served through
:class:`~repro.serving.ScoringService`.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks._common import emit
from repro import obs
from repro.metrics import mean_ndcg
from repro.runtime import (
    PipelineConfig,
    ServiceConfig,
    build_pipeline,
    make_scorer,
)
from repro.serving import ScoringService
from repro.utils.pareto import pareto_frontier

REPEATS = 3

#: Scenario architectures (paper Table 10 / Table 11 names).
HQ_BIG = 0  # zoo.high_quality[0]  -> 300x200x100
HQ_SMALL = 2  # zoo.high_quality[2] -> 200x50x50x25
LL_SMALL = 2  # zoo.low_latency[2]  -> 50x25x25x10


def _measure(score_query, dataset, queries):
    """Best-of-REPEATS mean wall µs/query plus test-set NDCG@10."""
    best, parts = float("inf"), []
    for _ in range(REPEATS):
        start = time.perf_counter()
        parts = [score_query(x) for x in queries]
        best = min(best, time.perf_counter() - start)
    scores = np.concatenate([np.asarray(p, dtype=np.float64) for p in parts])
    return best * 1e6 / len(queries), mean_ndcg(dataset, scores, 10)


def _pipeline_service(models, stages, *, context, budget=None, name):
    """A ScoringService over a JSON-round-tripped PipelineConfig."""
    config = PipelineConfig(stages=stages, budget_us_per_query=budget)
    config = PipelineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    pipeline = build_pipeline(models, config, context=context, name=name)
    return ScoringService(
        pipeline, ServiceConfig(pipeline=config, max_batch_size=None)
    )


def _spend_without_last(pipeline, n_docs: int) -> float:
    """Predicted spend of every stage but the last at ``n_docs`` docs."""
    alive = n_docs
    spend = 0.0
    for stage in pipeline.stages[:-1]:
        spend += alive * stage.cost_us_per_doc
        alive = stage.survivor_count(alive)
    return spend


def test_bench_cascade(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    test = msn_pipeline.test
    context = msn_pipeline.pricing

    hq_big = zoo.high_quality[HQ_BIG]
    hq_small = zoo.high_quality[HQ_SMALL]
    ll_small = zoo.low_latency[LL_SMALL]

    models = {
        "student": msn_pipeline.student(hq_big),
        "pruned": msn_pipeline.pruned_student(hq_small),
        "tiny": msn_pipeline.pruned_student(ll_small),
    }
    queries = [
        test.features[test.query_slice(q)] for q in range(test.n_queries)
    ]
    n_docs = int(round(test.n_docs / test.n_queries))

    # Single-stage scenario baselines, compiled like the cascade stages.
    baselines = {
        "hq": make_scorer(
            models["student"], backend="compiled-network", context=context
        ),
        "ll": make_scorer(
            models["tiny"], backend="compiled-network", context=context
        ),
    }
    compiled = {"backend": "compiled-network"}
    two_stage = [
        {"model": "pruned", **compiled, "keep_fraction": 0.5,
         "name": f"pruned {hq_small.name}"},
        {"model": "student", **compiled, "name": f"student {hq_big.name}"},
    ]
    three_stage = [
        {"model": "tiny", **compiled, "keep_fraction": 0.4,
         "name": f"pruned {ll_small.name}"},
        {"model": "pruned", **compiled, "keep_fraction": 0.5,
         "name": f"pruned {hq_small.name}"},
        {"model": "student", **compiled, "name": f"student {hq_big.name}"},
    ]
    ll_stage = [
        {"model": "tiny", **compiled, "keep_fraction": 0.5,
         "name": f"pruned {ll_small.name}"},
        {"model": "pruned", **compiled, "name": f"pruned {hq_small.name}"},
    ]
    services = {
        "cascade: pruned->student": _pipeline_service(
            models, two_stage, context=context, name="hq-2stage"
        ),
        "cascade: tiny->pruned->student": _pipeline_service(
            models, three_stage, context=context, name="hq-3stage"
        ),
        "cascade: tiny->pruned (ll)": _pipeline_service(
            models, ll_stage, context=context, name="ll-2stage"
        ),
    }
    # The budget is set between the 3-stage pipeline's stage-2 and
    # stage-3 predicted spends at the mean query length, so typical
    # queries exit before the expensive student while the spend stays
    # admission-predictable.
    unbudgeted = services["cascade: tiny->pruned->student"].pipeline
    spend_all = unbudgeted.predicted_query_spend_us(n_docs)
    spend_two = _spend_without_last(unbudgeted, n_docs)
    budget = (spend_two + spend_all) / 2.0
    services["cascade: budgeted tiny->pruned->student"] = _pipeline_service(
        models, three_stage, context=context,
        budget=round(budget, 3), name="hq-budgeted"
    )

    rows, named = [], {}
    for label, scorer in (
        (f"compiled student {hq_big.name} (hq baseline)", baselines["hq"]),
        (f"compiled pruned {ll_small.name} (ll baseline)", baselines["ll"]),
    ):
        us, ndcg = _measure(scorer.score, test, queries)
        named[label] = (us, ndcg)
        rows.append((label, round(ndcg, 4), round(us, 1),
                     round(scorer.predicted_us_per_doc, 3), ""))
    for label, service in services.items():
        us, ndcg = _measure(service.score, test, queries)
        named[label] = (us, ndcg)
        pipeline = service.pipeline
        rows.append(
            (label, round(ndcg, 4), round(us, 1),
             round(pipeline.expected_cost_us_per_doc(), 3),
             f"budget {pipeline.budget_us_per_query:g} us"
             if pipeline.budget_us_per_query else "")
        )

    frontier = set(
        pareto_frontier(
            [ndcg for _, ndcg, *_ in rows], [us for _, _, us, *_ in rows]
        ).tolist()
    )
    rows = [
        (label, ndcg, us, pred, ("pareto " + note).strip() if i in frontier else note)
        for i, (label, ndcg, us, pred, note) in enumerate(rows)
    ]

    report = obs.cascade_report()
    hq_us, hq_ndcg = named[f"compiled student {hq_big.name} (hq baseline)"]
    winners = [
        label
        for label, (us, ndcg) in named.items()
        if label.startswith("cascade") and us < hq_us and ndcg >= hq_ndcg
    ]
    emit(
        "BENCH_cascade",
        ["System", "NDCG@10", "us/query (measured)", "pred us/doc", "notes"],
        rows,
        title=(
            "Budgeted ranking pipelines: NDCG@10 vs measured us/query "
            f"(MSN30K-like, {test.n_queries} test queries, ~{n_docs} "
            "docs/query, best of "
            f"{REPEATS})"
        ),
        notes=(
            "Shape to hold: >=1 cascade beats the single-stage compiled "
            f"student on both axes (winners: {', '.join(winners) or 'NONE'}). "
            "Cascade µs/query are end-to-end through ScoringService — "
            "stage dispatch overhead included.  "
            f"Funnel:\n{report.render()}"
        ),
        extra={
            "pipelines": {
                s.pipeline.name: s.pipeline.config.to_dict()
                for s in services.values()
            },
            "winners": winners,
        },
    )

    # Acceptance: a cascade on the Pareto frontier beats the compiled
    # student baseline on both axes.
    assert winners, (
        f"no cascade beat the hq baseline ({hq_us:.0f} us, {hq_ndcg:.4f})"
    )
    winner_idx = [i for i, row in enumerate(rows) if row[0] in winners]
    assert any(i in frontier for i in winner_idx)
    # The budget variant must have actually exited early somewhere, and
    # never beyond its predicted-spend bound.
    budgeted = services["cascade: budgeted tiny->pruned->student"].pipeline
    assert report.early_exits.get("hq-budgeted", 0) > 0
    first_cost = budgeted.stages[0].cost_us_per_doc
    for x in queries:
        spend = budgeted.predicted_query_spend_us(len(x))
        assert spend <= max(budgeted.budget_us_per_query,
                            len(x) * first_cost) + 1e-9

    query = queries[0]
    pipeline = services["cascade: tiny->pruned->student"].pipeline
    benchmark(lambda: pipeline.score_query(query))
