"""Shared helpers for the benchmark harness.

Every bench module reproduces one table or figure of the paper: it
assembles the same rows/series the paper reports, renders them with
:func:`emit` (printed to stdout *and* written under
``benchmarks/results/``), and times a representative kernel through
pytest-benchmark.

Scoring times in the emitted tables come from the calibrated cost models
at the paper-named shapes; quality metrics come from models trained at
the scaled sizes of ``BENCH_SCALE`` (see DESIGN.md for the substitution
rationale).
"""

from __future__ import annotations

import pathlib

from repro import obs
from repro.obs.export import render_json
from repro.utils.tables import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(
    name: str,
    headers,
    rows,
    *,
    title: str,
    notes: str = "",
    extra: dict | None = None,
) -> str:
    """Render a paper-style table, print it, and persist it.

    Besides the human-readable ``{name}.txt``, a machine-readable
    ``{name}.json`` is written with the same rows plus a snapshot of the
    observability state (trace tree + metric series) accumulated while
    the benchmark ran, so drift and per-stage timings travel with the
    numbers they explain.

    Parameters
    ----------
    name:
        File stem, e.g. ``"table01"`` -> ``benchmarks/results/table01.txt``.
    notes:
        Free-form comparison against the published values.
    extra:
        Additional JSON-ready keys merged into the ``{name}.json``
        document (e.g. ``bench_serving``'s retained trace sample).
    """
    text = format_table(headers, rows, title=title)
    if notes:
        text = f"{text}\n\n{notes.strip()}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    document = {
        "name": name,
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "notes": notes.strip(),
        "observability": obs.snapshot_dict(),
    }
    if extra:
        document.update(extra)
    (RESULTS_DIR / f"{name}.json").write_text(
        render_json(document=document) + "\n", encoding="utf-8"
    )
    print(f"\n{text}")
    return text
