"""Ablation — why prune the *first* layer (Section 5.2).

The paper's design choice rests on two facts checked here on the
flagship student:

1. the first layer carries the largest share of the forward time, so
   sparsifying it buys the most speed (Table 7);
2. under fine-tuning it tolerates extreme sparsity best (Fig. 10 right).

The ablation prunes each layer to 95% (with light fine-tuning) and
reports quality retained alongside the time saved by sparsifying that
layer — only the first layer scores well on both axes.
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.distill.distiller import make_distillation_provider
from repro.distill.teacher import TreeEnsembleTeacher
from repro.metrics import mean_ndcg
from repro.nn.training import Trainer, TrainingConfig
from repro.pruning import LevelPruner

SPARSITY = 0.95


def test_ablation_pruning_layer(msn_pipeline, predictor, benchmark):
    student = msn_pipeline.student(msn_pipeline.zoo.flagship)
    vali = msn_pipeline.vali
    teacher = TreeEnsembleTeacher(msn_pipeline.teacher())
    baseline = mean_ndcg(vali, student.predict(vali.features), 10)

    layer_times = predictor.dense.layer_times(136, msn_pipeline.zoo.flagship.hidden)
    total_us = sum(lt.time_us for lt in layer_times)

    rows = []
    retained = {}
    n_prunable = len(student.network.linears) - 1
    for layer in range(n_prunable):
        probe = student.clone()
        LevelPruner(SPARSITY).apply(probe.network.linears[layer])
        provider = make_distillation_provider(
            teacher, msn_pipeline.train, probe.normalizer
        )
        Trainer(
            probe.network,
            TrainingConfig(epochs=3, batch_size=256, learning_rate=0.001),
            seed=layer,
        ).fit(batch_provider=provider, steps_per_epoch=10)
        ndcg = mean_ndcg(vali, probe.predict(vali.features), 10)
        retained[layer] = ndcg
        time_saved_pct = 100.0 * layer_times[layer].time_us / total_us
        rows.append(
            (
                f"fc{layer + 1}",
                round(ndcg, 4),
                round(ndcg - baseline, 4),
                round(time_saved_pct, 1),
            )
        )

    emit(
        "ablation_pruning_layer",
        ["Pruned layer (95%)", "NDCG@10", "Delta vs dense", "Time share (%)"],
        rows,
        title="Ablation: which layer to prune (flagship, fine-tuned)",
        notes=(
            f"Dense baseline NDCG@10 = {baseline:.4f}.  Shape to hold: the "
            "first layer combines the largest time share with quality "
            "retention after fine-tuning — the basis of the paper's "
            "early-layers efficiency-oriented pruning."
        ),
    )

    # The first layer holds quality under pruning + fine-tuning.
    assert retained[0] >= baseline - 0.05
    # And it is the (near-)largest share of the forward time.
    shares = [lt.time_us for lt in layer_times]
    assert shares[0] >= max(shares) * 0.85

    probe = student.clone()
    benchmark(lambda: LevelPruner(SPARSITY).apply(probe.network.first_layer))
