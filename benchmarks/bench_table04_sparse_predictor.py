"""Table 4 — sparse time predictor: real vs predicted at N in {16,32,64}.

"Real" = the LIBXSMM-style executor with cache simulation; "predicted" =
Eq. 5 with the coefficients calibrated by difference (Section 4.4).
Paper: the predictor tracks reality closely and distinguishes same-shape
matrices with ~1% sparsity differences (e.g. the two 200x136 rows).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import emit
from repro.matmul import CsrMatrix, SparseGemmExecutor

ROWS = [
    (400, 0.995, (0.2, 0.4, 0.9)),
    (400, 0.986, (0.4, 0.9, 1.9)),
    (300, 0.985, (0.3, 0.7, 1.6)),
    (200, 0.982, (0.3, 0.5, 1.0)),
    (200, 0.971, (0.4, 0.7, 1.5)),
    (100, 0.989, (0.1, 0.2, 0.5)),
    (100, 0.967, (0.2, 0.3, 0.7)),
    (50, 0.987, (0.1, 0.1, 0.2)),
]

K = 136
BATCHES = (16, 32, 64)


def _matrix(m, sparsity, seed):
    rng = np.random.default_rng(seed)
    nnz = int(round((1 - sparsity) * m * K))
    dense = np.zeros(m * K)
    dense[rng.choice(m * K, nnz, replace=False)] = rng.normal(size=nnz)
    return CsrMatrix.from_dense(dense.reshape(m, K))


def test_table04(predictor, benchmark):
    executor = SparseGemmExecutor()
    sparse = predictor.sparse
    rows = []
    for i, (m, sparsity, paper) in enumerate(ROWS):
        a = _matrix(m, sparsity, seed=100 + i)
        cells = [f"{m}x{K}", sparsity]
        for batch, paper_value in zip(BATCHES, paper):
            real = executor.measure_time_us(a, batch)
            pred = sparse.time_for(a, batch)
            assert pred == pytest.approx(real, rel=0.30)
            cells.extend([round(real, 2), round(pred, 2)])
        cells.append("/".join(str(p) for p in paper))
        rows.append(tuple(cells))

    emit(
        "table04",
        [
            "Shape", "Sparsity",
            "N16 real", "N16 pred", "N32 real", "N32 pred",
            "N64 real", "N64 pred", "Paper (16/32/64)",
        ],
        rows,
        title="Table 4: sparse time predictor vs executor",
        notes=(
            "Shape to hold: prediction within tens of percent of the "
            "executor at every N; same-shape different-sparsity pairs "
            "(400x136 and 200x136) are separated correctly."
        ),
    )

    # Same shape, ~1% sparsity apart -> measurably different time.
    dense_variant = _matrix(200, 0.971, seed=104)
    sparse_variant = _matrix(200, 0.982, seed=103)
    assert sparse.time_for(dense_variant, 64) > sparse.time_for(sparse_variant, 64)

    a = _matrix(400, 0.995, seed=100)
    benchmark(lambda: sparse.time_for(a, 64))
