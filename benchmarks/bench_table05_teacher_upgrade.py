"""Table 5 — effect of the teacher on distilled students.

Two students (500x100 and 1000x500x500x100) are distilled from (a) the
64-leaf deployment forest and (b) the 256-leaf teacher.  Paper: the
256-leaf teacher beats the 64-leaf forest (0.5291 vs 0.5246 NDCG@10) and
both students improve when distilled from it; the student is
teacher-agnostic in cost (same architecture, same forward time).
"""

from __future__ import annotations

from benchmarks._common import emit
from repro.metrics import mean_ndcg


def test_table05(msn_pipeline, benchmark):
    zoo = msn_pipeline.zoo
    test = msn_pipeline.test
    forest64 = msn_pipeline.forest(zoo.large_forest)
    # The named 256-leaf teacher (NOT the validation-selected one, which
    # at this scale may coincide with the 64-leaf forest).
    teacher256 = msn_pipeline.forest(zoo.teacher)

    rows = [
        (
            forest64.describe(),
            "/",
            round(mean_ndcg(test, forest64.predict(test.features), 10), 4),
        ),
        (
            teacher256.describe(),
            "/",
            round(mean_ndcg(test, teacher256.predict(test.features), 10), 4),
        ),
    ]

    students = {}
    for spec in (zoo.small_net, zoo.large_net):
        for teacher_spec, teacher in (
            (zoo.large_forest, forest64),
            (zoo.teacher, teacher256),
        ):
            student = msn_pipeline.student(spec, teacher_spec=teacher_spec)
            ndcg = mean_ndcg(test, student.predict(test.features), 10)
            students[(spec.hidden, teacher_spec.name)] = ndcg
            rows.append((spec.describe(), teacher.describe(), round(ndcg, 4)))

    emit(
        "table05",
        ["Model", "Teacher", "NDCG@10"],
        rows,
        title="Table 5: distilling from stronger teachers (MSN30K-like)",
        notes=(
            "Paper: upgrading the teacher from 878x64 to 600x256 lifts the "
            "500x100 student 0.5180->0.5198 and the deep student "
            "0.5208->0.5243.  Shape to hold: the 256-leaf teacher's "
            "students are at least as good as the 64-leaf teacher's."
        ),
    )

    # Shape: the 256-leaf teacher's students track it closely.  At paper
    # scale that teacher is the best model and its students win; at this
    # harness's scale deep trees can overfit below the 64-leaf forest
    # (see docs/reproduction-notes.md), so the bound tolerates the
    # corresponding student gap.
    for hidden in (zoo.small_net.hidden, zoo.large_net.hidden):
        from_teacher = students[(hidden, zoo.teacher.name)]
        from_forest = students[(hidden, zoo.large_forest.name)]
        assert from_teacher >= from_forest - 0.06

    student = msn_pipeline.student(zoo.small_net)
    batch = test.features[:512]
    benchmark(lambda: student.predict(batch))
