"""Table 6 — budget-matched dense architectures vs QuickScorer.

Two time budgets set by the 300-tree (3.0 µs) and 500-tree (4.9 µs)
64-leaf forests; for each, 2/3/4-layer dense students designed with the
predictor to fit the budget.  Paper: deeper beats wider at equal cost,
but dense nets do not clearly beat the forests — motivating pruning.
"""

from __future__ import annotations

from benchmarks._common import emit

BUDGET_GROUPS = [
    ("QuickScorer 300, 64", [
        ("500x100", (500, 100), 2.2, 0.5196),
        ("300x200x100", (300, 200, 100), 2.4, 0.5209),
        ("300x150x150x30", (300, 150, 150, 30), 2.2, 0.5207),
    ]),
    ("QuickScorer 500, 64", [
        ("1000x200", (1000, 200), 5.5, 0.5150),
        ("600x300x100", (600, 300, 100), 5.6, 0.5203),
        ("500x250x250x100", (500, 250, 250, 100), 5.4, 0.5218),
    ]),
]

FOREST_SPECS = {
    "QuickScorer 300, 64": (300, 64, 3.0, 0.5230),
    "QuickScorer 500, 64": (500, 64, 4.9, 0.5240),
}


def test_table06(msn_pipeline, predictor, benchmark):
    from repro.core.zoo import NetworkSpec
    from repro.runtime import ForestShape, price

    rows = []
    deep_beats_shallow = []
    for group, nets in BUDGET_GROUPS:
        n_trees, n_leaves, paper_time, paper_ndcg = FOREST_SPECS[group]
        forest_spec = next(
            (s for s in msn_pipeline.zoo.all_forests()
             if s.n_trees == n_trees and s.n_leaves == n_leaves),
            None,
        )
        qs_time = price(
            ForestShape(n_trees, n_leaves), context=msn_pipeline.pricing
        )
        if forest_spec is not None:
            forest_eval = msn_pipeline.evaluate_forest(forest_spec)
            forest_ndcg = round(forest_eval.ndcg10, 4)
        else:
            forest_ndcg = None
        rows.append((group, round(qs_time, 1), forest_ndcg, paper_time, paper_ndcg))

        group_quality = []
        for name, hidden, paper_net_time, paper_net_ndcg in nets:
            spec = NetworkSpec(name, hidden)
            evaluated = msn_pipeline.evaluate_network(spec, pruned=False)
            rows.append(
                (
                    "  " + name,
                    round(evaluated.time_us, 1),
                    round(evaluated.ndcg10, 4),
                    paper_net_time,
                    paper_net_ndcg,
                )
            )
            group_quality.append((len(hidden), evaluated.ndcg10))
        deep_beats_shallow.append(group_quality)

    emit(
        "table06",
        ["Model", "Time (us/doc)", "NDCG@10", "Paper time", "Paper NDCG@10"],
        rows,
        title="Table 6: budget-matched dense architectures vs QuickScorer",
        notes=(
            "Shape to hold: nets of 2/3/4 layers land near the forest's "
            "time budget; dense nets do not dominate the forest (the gap "
            "pruning later closes)."
        ),
    )

    spec = NetworkSpec("300x200x100", (300, 200, 100))
    student = msn_pipeline.student(spec)
    batch = msn_pipeline.test.features[:512]
    benchmark(lambda: student.predict(batch))
