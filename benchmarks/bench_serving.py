"""Async front-end under sustained multi-tenant load — throughput vs tails.

Replays seeded load scenarios against the asyncio front-end over a
dense probe student and reports, per scenario and tenant: offered /
served / shed volumes (with the shedding reasons), SLO misses,
achieved throughput, coalescing depth, and the p50/p95/p99
enqueue→response latency tails.  Expected shape: raising the offered
rate deepens coalescing (more requests share each GEMM) and fattens the
tails before it dents throughput; a token-bucketed tenant sheds instead
of starving its neighbours; and the closed-loop scenario finds the
service's natural throughput ceiling.

Latency percentiles here are wall time including queueing — the
coalesced accounting split (`ServiceStats.record(kernel_seconds=...)`)
keeps them apart from the kernel-time drift audit.  Every scenario's
scores stay bit-identical to sequential scoring (gated by
``make serving-smoke``; not re-asserted per row here).

Request tracing runs enabled throughout, and the emitted
``BENCH_serving.json`` carries a ``trace_sample``: the slowest retained
request's full stage timeline (queue-wait / coalesce / kernel /
respond), so the table's p99 has one concrete, attributable example
attached.
"""

from __future__ import annotations

import math

from benchmarks._common import emit
from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import build_probe_models
from repro.runtime import AsyncConfig, ServiceConfig, TenantConfig
from repro.serving import LoadSpec, ScoringService, make_queries, run_load

#: (label, LoadSpec, AsyncConfig) — each scenario runs against a fresh
#: service and metrics registry so per-tenant counts do not bleed over.
SCENARIOS = [
    (
        "open 300/s",
        LoadSpec(
            mode="open",
            duration_s=0.5,
            rate_per_s=300.0,
            burst_factor=2.0,
            burst_period_s=0.125,
            n_users=100_000,
            n_queries=64,
            docs_per_query=10,
            zipf_s=1.1,
            tenants=(("web", 3.0), ("batch", 1.0)),
            seed=11,
        ),
        AsyncConfig(
            max_wait_us=500.0,
            slo_us=20_000.0,
            tenants=(
                TenantConfig(name="web", priority=0),
                TenantConfig(name="batch", priority=2),
            ),
        ),
    ),
    (
        "open 1500/s",
        LoadSpec(
            mode="open",
            duration_s=0.5,
            rate_per_s=1500.0,
            burst_factor=2.0,
            burst_period_s=0.125,
            n_users=100_000,
            n_queries=64,
            docs_per_query=10,
            zipf_s=1.1,
            tenants=(("web", 3.0), ("batch", 1.0)),
            seed=11,
        ),
        AsyncConfig(
            max_wait_us=500.0,
            slo_us=20_000.0,
            tenants=(
                TenantConfig(name="web", priority=0),
                TenantConfig(name="batch", priority=2),
            ),
        ),
    ),
    (
        "open 1500/s + limited tenant",
        LoadSpec(
            mode="open",
            duration_s=0.5,
            rate_per_s=1500.0,
            burst_factor=2.0,
            burst_period_s=0.125,
            n_users=100_000,
            n_queries=64,
            docs_per_query=10,
            zipf_s=1.1,
            tenants=(("web", 3.0), ("batch", 1.0), ("limited", 1.0)),
            seed=11,
        ),
        AsyncConfig(
            max_wait_us=500.0,
            slo_us=20_000.0,
            tenants=(
                TenantConfig(name="web", priority=0),
                TenantConfig(name="batch", priority=2),
                TenantConfig(name="limited", rate_per_s=100.0, burst=20),
            ),
        ),
    ),
    (
        "closed 32 users",
        LoadSpec(
            mode="closed",
            workers=32,
            requests_per_worker=40,
            think_time_s=0.0,
            n_users=100_000,
            n_queries=64,
            docs_per_query=10,
            zipf_s=1.1,
            tenants=(("web", 3.0), ("batch", 1.0)),
            seed=11,
        ),
        AsyncConfig(
            max_wait_us=500.0,
            slo_us=20_000.0,
            tenants=(
                TenantConfig(name="web", priority=0),
                TenantConfig(name="batch", priority=2),
            ),
        ),
    ),
]


def _us(value: float) -> str:
    return f"{value:.0f}" if math.isfinite(value) else "-"


def test_serving_sustained_load(benchmark):
    models = build_probe_models(n_queries=8, docs_per_query=16, seed=0)
    n_features = models["dataset"].features.shape[1]

    rows = []
    previous_registry = None
    trace_sample = None
    # Request tracing on for the whole sweep: the flight recorder is
    # reset per scenario so the emitted trace sample belongs to the
    # last (closed-loop) scenario, same as the obs snapshot.
    previous_recorder = obs.set_request_recorder(
        obs.RequestRecorder(enabled=True)
    )
    for label, spec, frontend in SCENARIOS:
        # Fresh registry per scenario: serving.* counters are cumulative
        # and per-tenant rows must not bleed across scenarios.
        previous_registry = obs.set_registry(MetricsRegistry())
        obs.get_request_recorder().reset()
        service = ScoringService(
            models["dense-network"], ServiceConfig(backend="dense-network")
        )
        report = run_load(
            service, spec, make_queries(spec, n_features), frontend=frontend
        )
        trace_sample = report.trace_sample
        serving = obs.serving_report()
        assert report.errors == 0, f"{label}: {report.errors} errors"
        stats = service.stats
        rows.append(
            (
                label,
                "(all)",
                report.offered,
                report.served,
                report.shed,
                sum(row.slo_miss for row in serving.rows),
                round(report.throughput_rps),
                f"{serving.mean_batch_requests:.1f}",
                _us(stats.p50_us),
                _us(stats.p95_us),
                _us(stats.p99_us),
            )
        )
        for row in serving.rows:
            rows.append(
                (
                    "",
                    row.tenant,
                    row.offered,
                    row.served,
                    row.shed,
                    row.slo_miss,
                    "-",
                    "-",
                    _us(row.p50_us),
                    _us(row.p95_us),
                    _us(row.p99_us),
                )
            )

    # The last scenario's registry stays installed so the emitted obs
    # snapshot carries real serving.* series alongside the table.
    emit(
        "BENCH_serving",
        [
            "Scenario", "Tenant", "Offered", "Served", "Shed", "SLO miss",
            "Req/s", "Req/batch", "p50 us", "p95 us", "p99 us",
        ],
        rows,
        title="Async front-end under sustained multi-tenant load",
        notes=(
            "Latency percentiles are enqueue->response wall time "
            "(queueing included); the drift audit keeps pricing kernel "
            "time only.  Raising the offered rate deepens coalescing "
            "(Req/batch) before it moves throughput; the token-bucketed "
            "'limited' tenant sheds at admission (rate-limit) instead of "
            "queueing; SLO misses are counted against each tenant's "
            "deadline_us or the 20 ms default.  The attached obs "
            "snapshot and trace_sample (the slowest retained request's "
            "stage timeline) cover the final (closed-loop) scenario."
        ),
        extra={"trace_sample": trace_sample},
    )
    if previous_registry is not None:
        obs.set_registry(previous_registry)
    obs.set_request_recorder(previous_recorder)

    # Representative kernel for pytest-benchmark: one coalesced engine
    # call over 16 concurrent 10-doc requests.
    service = ScoringService(
        models["dense-network"], ServiceConfig(backend="dense-network")
    )
    queries = make_queries(SCENARIOS[0][1], n_features)[:16]
    benchmark(lambda: service.engine.score_coalesced(queries))
