"""End-to-end orchestration of the paper's methodology.

:class:`EfficientRankingPipeline` wires every substrate together on one
dataset:

* trains LambdaMART forests (one boosting run per leaf count, truncated
  into all requested sizes — boosting prefixes are valid ensembles);
* distills students from the 256-leaf teacher (Section 5.1);
* prunes student first layers with the efficiency-oriented pipeline
  (Section 5.2);
* evaluates NDCG@10 / NDCG / MAP on the test split with per-query values
  retained for Fisher randomization tests;
* locates every model on the time axis through the unified runtime
  pricing layer (:func:`repro.runtime.price`) — QuickScorer for forests,
  the dense/sparse predictors for networks — always at the *paper-named*
  shape (see DESIGN.md on scaling).

All trained artefacts are cached on the instance, so benchmark modules
can share one pipeline per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.config import (
    DatasetHyperParams,
    ExperimentScale,
    ISTELLA_HYPERPARAMS,
    MSN30K_HYPERPARAMS,
)
from repro.core.zoo import ForestSpec, ISTELLA_ZOO, MSN30K_ZOO, NetworkSpec, PaperZoo
from repro.datasets.base import LtrDataset
from repro.datasets.splits import train_validation_test_split
from repro.datasets.synthetic import make_istella_s_like, make_msn30k_like
from repro.design.frontier import ModelPoint
from repro.distill.distiller import Distiller
from repro.distill.student import DistilledStudent
from repro.forest.ensemble import TreeEnsemble
from repro.forest.lambdamart import LambdaMartRanker
from repro.metrics.ranking import average_precision, ndcg, per_query_metric
from repro.pruning.pipeline import FirstLayerPruner
from repro.runtime import ForestShape, PricingContext, price, shared_predictor
from repro.timing.network_predictor import NetworkTimePredictor


@dataclass
class EvaluatedModel:
    """A model with its test-set quality and predicted scoring time."""

    name: str
    family: str  # "forest" | "neural"
    description: str
    ndcg10: float
    ndcg_full: float
    map_score: float
    time_us: float
    per_query_ndcg10: np.ndarray = field(repr=False)

    def as_point(self) -> ModelPoint:
        return ModelPoint(
            name=self.name,
            family=self.family,
            ndcg10=self.ndcg10,
            time_us=self.time_us,
        )

    def as_row(self) -> tuple:
        """(name, NDCG@10, NDCG, MAP, µs/doc) — Table 1's layout."""
        return (
            self.name,
            self.ndcg10,
            self.ndcg_full,
            self.map_score,
            self.time_us,
        )


class EfficientRankingPipeline:
    """Trains, distills, prunes and evaluates one dataset's model zoo."""

    def __init__(
        self,
        train: LtrDataset,
        vali: LtrDataset,
        test: LtrDataset,
        zoo: PaperZoo,
        hyper: DatasetHyperParams,
        scale: ExperimentScale | None = None,
    ) -> None:
        self.train = train
        self.vali = vali
        self.test = test
        self.zoo = zoo
        self.hyper = hyper
        self.scale = scale or ExperimentScale()
        self.pricing = PricingContext()
        self.qs_cost = self.pricing.qs_cost
        self._base_forests: dict[int, TreeEnsemble] = {}
        self._forests: dict[tuple[int, int], TreeEnsemble] = {}
        self._students: dict[tuple[int, ...], DistilledStudent] = {}
        self._pruned: dict[tuple[int, ...], DistilledStudent] = {}
        self._teacher_scores_test: np.ndarray | None = None
        self._selected_teacher: TreeEnsemble | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_msn30k(
        cls, scale: ExperimentScale | None = None
    ) -> "EfficientRankingPipeline":
        """Pipeline on the MSN30K-like synthetic collection."""
        scale = scale or ExperimentScale()
        data = make_msn30k_like(
            n_queries=scale.n_queries,
            docs_per_query=scale.docs_per_query,
            seed=scale.seed,
        )
        train, vali, test = train_validation_test_split(data, seed=scale.seed)
        return cls(train, vali, test, MSN30K_ZOO, MSN30K_HYPERPARAMS, scale)

    @classmethod
    def for_istella(
        cls, scale: ExperimentScale | None = None
    ) -> "EfficientRankingPipeline":
        """Pipeline on the Istella-S-like synthetic collection."""
        scale = scale or ExperimentScale()
        data = make_istella_s_like(
            n_queries=scale.n_queries,
            docs_per_query=scale.docs_per_query,
            seed=scale.seed + 1,
        )
        train, vali, test = train_validation_test_split(data, seed=scale.seed)
        return cls(train, vali, test, ISTELLA_ZOO, ISTELLA_HYPERPARAMS, scale)

    @classmethod
    def network_predictor(cls) -> NetworkTimePredictor:
        """The shared (lazily built) dense+sparse time predictor."""
        return shared_predictor()

    # ------------------------------------------------------------------
    # Forests
    # ------------------------------------------------------------------
    def _base_forest(self, n_leaves: int) -> TreeEnsemble:
        """One boosting run per leaf count, big enough for every spec."""
        if n_leaves not in self._base_forests:
            paper_max = max(
                (s.n_trees for s in self.zoo.all_forests() if s.n_leaves == n_leaves),
                default=100,
            )
            n_trees = self.scale.scaled_trees(paper_max)
            config = self.scale.forest_config(n_leaves, n_trees)
            ranker = LambdaMartRanker(config, seed=self.scale.seed)
            with obs.span(
                "pipeline.train_forest", leaves=n_leaves, trees=n_trees
            ):
                self._base_forests[n_leaves] = ranker.fit(
                    self.train, name=f"lambdamart-{n_leaves}l"
                )
        return self._base_forests[n_leaves]

    def forest(self, spec: ForestSpec) -> TreeEnsemble:
        """The trained (scaled) ensemble for a paper-named forest."""
        key = (spec.n_trees, spec.n_leaves)
        if key not in self._forests:
            base = self._base_forest(spec.n_leaves)
            n = min(self.scale.scaled_trees(spec.n_trees), base.n_trees)
            self._forests[key] = base.truncate(n, name=spec.name)
        return self._forests[key]

    def teacher(self) -> TreeEnsemble:
        """The distillation teacher, selected on the validation set.

        The paper "always distill[s] from the most effective ensemble of
        regression trees for the current dataset" (Section 6.1) — at full
        scale that is the 256-leaf model; at the scaled training sizes of
        this environment deep trees can overfit below the 64-leaf forest,
        so the teacher is picked by validation NDCG@10 among the named
        256-leaf teacher and the largest 64-leaf forest.
        """
        if self._selected_teacher is None:
            from repro.metrics.ranking import mean_ndcg

            candidates = [
                self.forest(self.zoo.teacher),
                self.forest(self.zoo.large_forest),
            ]
            self._selected_teacher = max(
                candidates,
                key=lambda f: mean_ndcg(
                    self.vali, f.predict(self.vali.features), 10
                ),
            )
        return self._selected_teacher

    # ------------------------------------------------------------------
    # Students
    # ------------------------------------------------------------------
    def student(
        self, spec: NetworkSpec, teacher_spec: ForestSpec | None = None
    ) -> DistilledStudent:
        """Dense student distilled from the (validation-selected) teacher.

        Pass an explicit ``teacher_spec`` to distill from a named forest
        instead (used by the Table 5 teacher-upgrade experiment).
        """
        if teacher_spec is None:
            teacher = self.teacher()
        else:
            teacher = self.forest(teacher_spec)
        # Key on the concrete ensemble: the validation-selected teacher
        # and an explicitly-named spec resolving to the same forest share
        # one distilled student.
        key = spec.hidden + (id(teacher),)
        if key not in self._students:
            config = self._width_scaled(
                self.scale.distill_config(self.hyper), spec.hidden[0]
            )
            distiller = Distiller(config, seed=self.scale.seed)
            with obs.span("pipeline.distill", hidden="x".join(map(str, spec.hidden))):
                self._students[key] = distiller.distill(
                    teacher, self.train, hidden=spec.hidden
                )
        return self._students[key]

    @staticmethod
    def _width_scaled(config, first_width: int, reference_width: int = 500):
        """Scale the learning rate down for very wide first layers.

        Adam's per-parameter step size is ~lr regardless of gradient
        scale, so a first layer hundreds of units wide drifts into ReLU6
        saturation at learning rates that are fine for small nets; the
        rate is scaled by ``reference_width / first_width`` beyond the
        reference (see docs/reproduction-notes.md).
        """
        if first_width <= reference_width:
            return config
        import dataclasses

        scaled = config.learning_rate * reference_width / first_width
        return dataclasses.replace(config, learning_rate=scaled)

    def pruned_student(
        self, spec: NetworkSpec, teacher_spec: ForestSpec | None = None
    ) -> DistilledStudent:
        """Student with its first layer pruned and fine-tuned.

        As with :meth:`student`, pass ``teacher_spec`` to prune the
        student of a named teacher instead of the validation-selected
        one.
        """
        if teacher_spec is None:
            teacher = self.teacher()
        else:
            teacher = self.forest(teacher_spec)
        # Key on the concrete ensemble, mirroring the _students cache: a
        # pipeline reused with an explicit teacher_spec must not return
        # the pruned student of a different teacher.
        key = spec.hidden + (id(teacher),)
        if key not in self._pruned:
            config = self._width_scaled(
                self.scale.prune_config(self.hyper), spec.hidden[0]
            )
            pruner = FirstLayerPruner(config, seed=self.scale.seed)
            student = self.student(spec, teacher_spec)
            with obs.span("pipeline.prune", hidden="x".join(map(str, spec.hidden))):
                self._pruned[key] = pruner.prune(student, teacher, self.train)
        return self._pruned[key]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def quality(self, scores: np.ndarray) -> dict[str, float | np.ndarray]:
        """Test-set NDCG@10 / NDCG / MAP plus per-query NDCG@10."""
        per_query = per_query_metric(
            self.test, scores, lambda s, l: ndcg(s, l, 10)
        )
        per_query_full = per_query_metric(self.test, scores, ndcg)
        per_query_ap = per_query_metric(self.test, scores, average_precision)
        return {
            "ndcg10": float(np.nanmean(per_query)),
            "ndcg": float(np.nanmean(per_query_full)),
            "map": float(np.nanmean(per_query_ap)),
            "per_query_ndcg10": per_query,
        }

    def evaluate_forest(self, spec: ForestSpec) -> EvaluatedModel:
        """Quality of the scaled forest, timed at the paper-named shape."""
        ensemble = self.forest(spec)
        with obs.span("pipeline.evaluate", model=spec.name, family="forest"):
            q = self.quality(ensemble.predict(self.test.features))
            time_us = price(
                ForestShape(spec.n_trees, spec.n_leaves), context=self.pricing
            )
        return EvaluatedModel(
            name=spec.name,
            family="forest",
            description=spec.describe(),
            ndcg10=q["ndcg10"],
            ndcg_full=q["ndcg"],
            map_score=q["map"],
            time_us=time_us,
            per_query_ndcg10=q["per_query_ndcg10"],
        )

    def evaluate_network(
        self, spec: NetworkSpec, *, pruned: bool = False
    ) -> EvaluatedModel:
        """Quality and predicted time of a (dense or pruned) student."""
        student = self.pruned_student(spec) if pruned else self.student(spec)
        # The backend is forced (not sparsity-threshold-detected) so a
        # pruned student is always priced hybrid and a dense one dense,
        # matching the paper's deployment assumption for each family.
        backend = "sparse-network" if pruned else "dense-network"
        with obs.span("pipeline.evaluate", model=spec.name, family="neural"):
            q = self.quality(student.predict(self.test.features))
            time_us = price(student, context=self.pricing, backend=backend)
        suffix = " (sparse)" if pruned else ""
        return EvaluatedModel(
            name=spec.name + suffix,
            family="neural",
            description=spec.describe() + suffix,
            ndcg10=q["ndcg10"],
            ndcg_full=q["ndcg"],
            map_score=q["map"],
            time_us=float(time_us),
            per_query_ndcg10=q["per_query_ndcg10"],
        )

    # ------------------------------------------------------------------
    # Frontier assembly (Figs. 12-13)
    # ------------------------------------------------------------------
    def frontier_points(
        self,
        forest_specs,
        network_specs,
        *,
        pruned_networks: bool = True,
    ) -> list[ModelPoint]:
        """Model points for a Pareto-frontier comparison."""
        points = [self.evaluate_forest(s).as_point() for s in forest_specs]
        points.extend(
            self.evaluate_network(s, pruned=pruned_networks).as_point()
            for s in network_specs
        )
        return points
