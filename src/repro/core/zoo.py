"""The paper's named models.

Every forest shape and network architecture appearing in the paper's
tables and figures, grouped per dataset.  Forest sizes for the Table 1
"Mid" and "Small" forests are not stated in the paper; they are inferred
from the reported scoring times (1.5 and 0.8 µs/doc) through the
calibrated QuickScorer cost model (~160 and ~86 trees at 64 leaves).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ForestSpec:
    """A named tree-ensemble shape."""

    name: str
    n_trees: int
    n_leaves: int

    def describe(self) -> str:
        return f"{self.n_trees} trees, {self.n_leaves} leaves"


@dataclass(frozen=True)
class NetworkSpec:
    """A named feed-forward architecture (hidden widths)."""

    name: str
    hidden: tuple[int, ...]

    def describe(self) -> str:
        return "x".join(str(w) for w in self.hidden)


@dataclass(frozen=True)
class PaperZoo:
    """All named models of one dataset's experiments."""

    dataset: str
    n_features: int
    #: Table 1 deployment forests (64 leaves).
    large_forest: ForestSpec
    mid_forest: ForestSpec
    small_forest: ForestSpec
    #: The 256-leaf distillation teacher (Section 5.1 / 6.1).
    teacher: ForestSpec
    #: Additional forests used in Tables 6/8 and the frontier sweeps.
    extra_forests: tuple[ForestSpec, ...]
    #: Table 1 networks.
    large_net: NetworkSpec
    small_net: NetworkSpec
    #: Table 6 budget-matched dense architectures.
    dense_candidates: tuple[NetworkSpec, ...]
    #: Table 8's pruned flagship.
    flagship: NetworkSpec
    #: Table 10 high-quality architectures.
    high_quality: tuple[NetworkSpec, ...]
    #: Table 11 low-latency architectures.
    low_latency: tuple[NetworkSpec, ...]

    def deployment_forests(self) -> tuple[ForestSpec, ...]:
        return (self.large_forest, self.mid_forest, self.small_forest)

    def all_forests(self) -> tuple[ForestSpec, ...]:
        return self.deployment_forests() + (self.teacher,) + self.extra_forests

    def all_networks(self) -> tuple[NetworkSpec, ...]:
        seen: dict[tuple[int, ...], NetworkSpec] = {}
        for spec in (
            (self.large_net, self.small_net, self.flagship)
            + self.dense_candidates
            + self.high_quality
            + self.low_latency
        ):
            seen.setdefault(spec.hidden, spec)
        return tuple(seen.values())


MSN30K_ZOO = PaperZoo(
    dataset="MSN30K",
    n_features=136,
    large_forest=ForestSpec("Large Forest", 878, 64),
    mid_forest=ForestSpec("Mid Forest", 160, 64),
    small_forest=ForestSpec("Small Forest", 86, 64),
    teacher=ForestSpec("Teacher", 600, 256),
    extra_forests=(
        ForestSpec("QuickScorer 500, 64", 500, 64),
        ForestSpec("QuickScorer 300, 64", 300, 64),
        ForestSpec("QuickScorer 300, 32", 300, 32),
        ForestSpec("QuickScorer 150, 32", 150, 32),
        ForestSpec("QuickScorer 80, 32", 80, 32),
        ForestSpec("QuickScorer 50, 16", 50, 16),
    ),
    large_net=NetworkSpec("Large Net", (1000, 500, 500, 100)),
    small_net=NetworkSpec("Small Net", (500, 100)),
    dense_candidates=(
        NetworkSpec("500x100", (500, 100)),
        NetworkSpec("300x200x100", (300, 200, 100)),
        NetworkSpec("300x150x150x30", (300, 150, 150, 30)),
        NetworkSpec("1000x200", (1000, 200)),
        NetworkSpec("600x300x100", (600, 300, 100)),
        NetworkSpec("500x250x250x100", (500, 250, 250, 100)),
    ),
    flagship=NetworkSpec("400x200x200x100", (400, 200, 200, 100)),
    high_quality=(
        NetworkSpec("300x200x100", (300, 200, 100)),
        NetworkSpec("200x100x100x50", (200, 100, 100, 50)),
        NetworkSpec("200x50x50x25", (200, 50, 50, 25)),
    ),
    low_latency=(
        NetworkSpec("100x50x50x25", (100, 50, 50, 25)),
        NetworkSpec("100x25x25x10", (100, 25, 25, 10)),
        NetworkSpec("50x25x25x10", (50, 25, 25, 10)),
    ),
)


ISTELLA_ZOO = PaperZoo(
    dataset="Istella-S",
    n_features=220,
    large_forest=ForestSpec("Large Forest", 1500, 64),
    mid_forest=ForestSpec("Mid Forest", 500, 64),
    small_forest=ForestSpec("Small Forest", 200, 64),
    teacher=ForestSpec("Teacher", 2500, 256),
    extra_forests=(
        ForestSpec("QuickScorer 300, 32", 300, 32),
        ForestSpec("QuickScorer 150, 32", 150, 32),
        ForestSpec("QuickScorer 80, 32", 80, 32),
        ForestSpec("QuickScorer 50, 16", 50, 16),
    ),
    large_net=NetworkSpec("Large Net", (800, 400, 400, 200)),
    small_net=NetworkSpec("Small Net", (300, 200, 100)),
    dense_candidates=(
        NetworkSpec("300x200x100", (300, 200, 100)),
        NetworkSpec("800x200x200x100", (800, 200, 200, 100)),
    ),
    flagship=NetworkSpec("400x200x200x100", (400, 200, 200, 100)),
    high_quality=(
        NetworkSpec("800x400x400x200", (800, 400, 400, 200)),
        NetworkSpec("800x200x200x100", (800, 200, 200, 100)),
        NetworkSpec("300x200x100", (300, 200, 100)),
    ),
    low_latency=(
        NetworkSpec("200x75x75x25", (200, 75, 75, 25)),
        NetworkSpec("100x75x75x10", (100, 75, 75, 10)),
        NetworkSpec("100x50x50x10", (100, 50, 50, 10)),
    ),
)
