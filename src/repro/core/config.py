"""Experiment hyper-parameters.

:class:`DatasetHyperParams` records the paper's Table 9 verbatim — the
training epochs ``E_t``, pruning/fine-tuning epochs ``E_p``/``E_ft``, LR
decay ``gamma`` at ``gamma_steps`` and dropout for both datasets.

:class:`ExperimentScale` holds the *scaled* sizes used in this offline
environment (smaller query counts and tree counts so the full pipeline
runs in minutes on numpy); scale 1.0 reproduces the paper's sizes.  The
substitution is documented in DESIGN.md: quality is measured on scaled
trainings, scoring times always refer to the paper-named shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distill.distiller import DistillationConfig
from repro.forest.gbdt import GradientBoostingConfig
from repro.pruning.pipeline import FirstLayerPruningConfig


@dataclass(frozen=True)
class DatasetHyperParams:
    """Table 9: per-dataset training and pruning hyper-parameters."""

    name: str
    training_epochs: int  # E_t
    pruning_epochs: int  # E_p
    finetune_epochs: int  # E_ft
    gamma: float
    gamma_steps: tuple[int, ...]
    dropout: float

    def as_row(self) -> tuple:
        """Row in the layout of Table 9."""
        steps = ", ".join(str(s) for s in self.gamma_steps)
        dropout = "-" if self.dropout == 0.0 else f"{self.dropout:g}"
        return (
            self.name,
            self.training_epochs,
            self.pruning_epochs,
            self.finetune_epochs,
            self.gamma,
            steps,
            dropout,
        )


MSN30K_HYPERPARAMS = DatasetHyperParams(
    name="MSN30K",
    training_epochs=100,
    pruning_epochs=80,
    finetune_epochs=20,
    gamma=0.1,
    gamma_steps=(50, 80),
    dropout=0.0,
)

ISTELLA_HYPERPARAMS = DatasetHyperParams(
    name="Istella-S",
    training_epochs=250,
    pruning_epochs=60,
    finetune_epochs=190,
    gamma=0.5,
    gamma_steps=(90, 130, 180),
    dropout=0.1,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled experiment sizes for this environment.

    ``tree_scale`` multiplies the paper's tree counts when *training*
    forests (predictions stay ordered under truncation, so relative
    quality is preserved); epoch counts shrink similarly.  The cost
    models always time the paper-named shapes.
    """

    n_queries: int = 350
    docs_per_query: int = 30
    tree_scale: float = 0.15
    max_leaves_cap: int = 256
    distill_epochs: int = 30
    distill_milestones: tuple[int, ...] = (20, 27)
    distill_learning_rate: float = 0.003
    steps_per_epoch: int | None = None
    prune_epochs: int = 20
    finetune_epochs: int = 8
    prune_milestones: tuple[int, ...] = (15, 25)
    pruning_sensitivity: float = 2.0
    seed: int = 7

    def scaled_trees(self, paper_trees: int) -> int:
        """Trained tree count for a paper-named ensemble size."""
        return max(10, int(round(self.tree_scale * paper_trees)))

    def forest_config(self, n_leaves: int, n_trees: int) -> GradientBoostingConfig:
        return GradientBoostingConfig(
            n_trees=n_trees,
            max_leaves=min(n_leaves, self.max_leaves_cap),
            learning_rate=0.12,
            min_data_in_leaf=5,
        )

    def distill_config(self, hyper: DatasetHyperParams) -> DistillationConfig:
        return DistillationConfig(
            epochs=self.distill_epochs,
            learning_rate=self.distill_learning_rate,
            lr_milestones=self.distill_milestones,
            lr_gamma=hyper.gamma,
            dropout=hyper.dropout,
            steps_per_epoch=self.steps_per_epoch,
        )

    def prune_config(self, hyper: DatasetHyperParams) -> FirstLayerPruningConfig:
        return FirstLayerPruningConfig(
            sensitivity=self.pruning_sensitivity,
            epochs_prune=self.prune_epochs,
            epochs_finetune=self.finetune_epochs,
            learning_rate=self.distill_learning_rate,
            lr_gamma=hyper.gamma,
            lr_milestones=self.prune_milestones,
            steps_per_epoch=self.steps_per_epoch,
        )


#: Full paper scale; only feasible with hours of compute.
FULL_SCALE = ExperimentScale(
    n_queries=30_000,
    docs_per_query=120,
    tree_scale=1.0,
    distill_epochs=100,
    distill_milestones=(50, 80),
    prune_epochs=80,
    finetune_epochs=20,
    prune_milestones=(50, 80),
)
