"""End-to-end pipeline and the paper's named models.

* :mod:`repro.core.config` — the training/pruning hyper-parameters of
  Table 9 and the scaled experiment settings used in this environment.
* :mod:`repro.core.zoo` — every named forest and network architecture
  appearing in the paper's tables and figures.
* :mod:`repro.core.pipeline` — :class:`EfficientRankingPipeline`: train
  forests, distill students, prune first layers, evaluate quality, and
  locate every model on the efficiency/effectiveness plane.
"""

from repro.core.config import (
    ISTELLA_HYPERPARAMS,
    MSN30K_HYPERPARAMS,
    DatasetHyperParams,
    ExperimentScale,
)
from repro.core.zoo import (
    ForestSpec,
    ISTELLA_ZOO,
    MSN30K_ZOO,
    NetworkSpec,
    PaperZoo,
)
from repro.core.pipeline import EfficientRankingPipeline, EvaluatedModel

__all__ = [
    "DatasetHyperParams",
    "ExperimentScale",
    "MSN30K_HYPERPARAMS",
    "ISTELLA_HYPERPARAMS",
    "ForestSpec",
    "NetworkSpec",
    "PaperZoo",
    "MSN30K_ZOO",
    "ISTELLA_ZOO",
    "EfficientRankingPipeline",
    "EvaluatedModel",
]
