"""Closed-loop load generation against the asyncio front-end.

The missing half of a serving benchmark: a traffic model.  This module
simulates a population of users hammering an
:class:`~repro.serving.frontend.AsyncScoringService` with the three
properties real ranking traffic has and uniform synthetic load lacks:

* **skewed popularity** — users are drawn from a seeded Zipfian
  distribution (probability ∝ rank^-s) over ``n_users`` simulated users
  (thousands to millions; only ranks are materialised, not users), and
  each user maps to one of ``n_queries`` distinct candidate lists — so
  a keyed :class:`~repro.runtime.parallel.ScoreCache` sees realistic
  re-reference behaviour;
* **bursty arrivals** — the *open* model draws exponential
  inter-arrival gaps whose rate square-wave-modulates between
  ``rate_per_s`` and ``rate_per_s × burst_factor`` every
  ``burst_period_s`` (Poisson-with-bursts); the *closed* model runs
  ``workers`` coroutine users in think-time loops, where offered load
  adapts to service latency;
* **multi-tenancy** — each request carries a tenant drawn from the
  spec's weighted tenant mix, exercising the admission layer's token
  buckets and priority classes.

Everything random is drawn **up front** from one seeded generator, so a
given :class:`LoadSpec` always offers the identical request sequence
(tenants, users, sizes, gaps) no matter how the event loop interleaves
completions — the property the smoke gate's assertions stand on.

:func:`run_load` drives a whole run (build front-end → replay schedule
→ drain) and returns a :class:`LoadReport` of client-side counts:
offered/served/shed per tenant, error count, wall time and achieved
throughput.  Server-side latency percentiles and SLO misses live in the
``serving.*`` series (:func:`repro.obs.serving_report`); the benchmark
emits both.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.exceptions import ConfigError, ReproError
from repro.serving.frontend import AsyncScoringService
from repro.serving.tenancy import RequestShedError

__all__ = ["LoadReport", "LoadSpec", "run_load", "run_load_async"]


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible traffic scenario.

    ``mode="open"`` offers ``rate_per_s`` arrivals (burst-modulated) for
    ``duration_s`` simulated seconds of schedule; ``mode="closed"`` runs
    ``workers`` users each issuing ``requests_per_worker`` requests with
    ``think_time_s`` pauses.  Both draw users Zipf(``zipf_s``) over
    ``n_users``, mapped onto ``n_queries`` distinct candidate lists of
    ``docs_per_query`` documents, with tenants drawn from the weighted
    ``tenants`` mix.  ``time_scale`` compresses the schedule's sleeps
    (0.1 = replay 10× faster) without changing what is offered — the
    smoke gate's lever for running a "long" scenario in milliseconds.
    """

    mode: str = "open"
    duration_s: float = 1.0
    rate_per_s: float = 200.0
    burst_factor: float = 1.0
    burst_period_s: float = 0.25
    workers: int = 8
    requests_per_worker: int = 25
    think_time_s: float = 0.0
    n_users: int = 10_000
    n_queries: int = 64
    docs_per_query: int = 10
    zipf_s: float = 1.1
    tenants: tuple[tuple[str, float], ...] = (("default", 1.0),)
    time_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ConfigError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        positive = {
            "duration_s": self.duration_s,
            "rate_per_s": self.rate_per_s,
            "burst_factor": self.burst_factor,
            "burst_period_s": self.burst_period_s,
            "workers": self.workers,
            "requests_per_worker": self.requests_per_worker,
            "n_users": self.n_users,
            "n_queries": self.n_queries,
            "docs_per_query": self.docs_per_query,
            "time_scale": self.time_scale,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigError(f"{name} must be > 0, got {value}")
        if self.think_time_s < 0:
            raise ConfigError(
                f"think_time_s must be >= 0, got {self.think_time_s}"
            )
        if self.zipf_s < 0:
            raise ConfigError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if not self.tenants:
            raise ConfigError("tenants mix must name at least one tenant")
        tenants = tuple(
            (str(name), float(weight)) for name, weight in self.tenants
        )
        for name, weight in tenants:
            if weight <= 0:
                raise ConfigError(
                    f"tenant {name!r} weight must be > 0, got {weight}"
                )
        object.__setattr__(self, "tenants", tenants)

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "rate_per_s": self.rate_per_s,
            "burst_factor": self.burst_factor,
            "burst_period_s": self.burst_period_s,
            "workers": self.workers,
            "requests_per_worker": self.requests_per_worker,
            "think_time_s": self.think_time_s,
            "n_users": self.n_users,
            "n_queries": self.n_queries,
            "docs_per_query": self.docs_per_query,
            "zipf_s": self.zipf_s,
            "tenants": [list(pair) for pair in self.tenants],
            "time_scale": self.time_scale,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown LoadSpec key(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if "tenants" in kwargs:
            kwargs["tenants"] = tuple(
                (pair[0], pair[1]) for pair in kwargs["tenants"]
            )
        return cls(**kwargs)


@dataclass
class LoadReport:
    """Client-side outcome counts of one load run.

    ``trace_sample`` carries the slowest retained request trace of the
    run (its :meth:`~repro.obs.requests.RequestContext.to_dict` form)
    when request tracing was enabled, ``None`` otherwise — the hook
    benchmarks use to ship one concrete tail trace with their tables.

    ``swap_events`` records each mid-run hot swap fired through
    ``swap_at``/``swap_fn`` (wall-clock offset, arrival index, and the
    swap's own outcome dict); ``served_by_version`` counts the logical
    requests each model version served during the run — both empty for
    runs without a versioned swap.
    """

    spec: LoadSpec
    offered: int = 0
    served: int = 0
    errors: int = 0
    wall_s: float = 0.0
    served_by_tenant: dict[str, int] = field(default_factory=dict)
    shed_by_tenant: dict[str, dict[str, int]] = field(default_factory=dict)
    trace_sample: dict | None = None
    swap_events: list[dict] = field(default_factory=list)
    served_by_version: dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return sum(
            count
            for reasons in self.shed_by_tenant.values()
            for count in reasons.values()
        )

    @property
    def shed_ratio(self) -> float:
        return self.shed / self.offered if self.offered else float("nan")

    @property
    def throughput_rps(self) -> float:
        return self.served / self.wall_s if self.wall_s > 0 else float("nan")

    def to_dict(self) -> dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "shed_ratio": self.shed_ratio,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "served_by_tenant": dict(self.served_by_tenant),
            "shed_by_tenant": {
                tenant: dict(reasons)
                for tenant, reasons in self.shed_by_tenant.items()
            },
            "trace_sample": self.trace_sample,
            "swap_events": list(self.swap_events),
            "served_by_version": dict(self.served_by_version),
        }

    def render(self) -> str:
        lines = [
            f"Load run ({self.spec.mode}): {self.offered} offered, "
            f"{self.served} served, {self.shed} shed "
            f"({self.shed_ratio:.1%}), {self.errors} errors, "
            f"{self.wall_s:.3f} s wall, "
            f"{self.throughput_rps:.0f} req/s",
        ]
        for tenant in sorted(
            set(self.served_by_tenant) | set(self.shed_by_tenant)
        ):
            reasons = self.shed_by_tenant.get(tenant, {})
            shed = sum(reasons.values())
            detail = (
                " ("
                + ", ".join(f"{r}: {c}" for r, c in sorted(reasons.items()))
                + ")"
                if reasons
                else ""
            )
            lines.append(
                f"  {tenant}: {self.served_by_tenant.get(tenant, 0)} "
                f"served, {shed} shed{detail}"
            )
        for event in self.swap_events:
            lines.append(
                f"  swap at {event.get('at_s', 0.0):.3f}s "
                f"(request {event.get('at_request', '?')}): "
                f"{event.get('action', '?')}"
            )
        if self.served_by_version:
            lines.append(
                "  served by version: "
                + ", ".join(
                    f"{v}: {n}"
                    for v, n in sorted(self.served_by_version.items())
                )
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Schedule generation (all randomness drawn up front, deterministically)
# ----------------------------------------------------------------------
def _zipf_probs(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -s
    return weights / weights.sum()


@dataclass(frozen=True)
class _Arrival:
    at_s: float  # schedule time of this arrival (open mode)
    tenant: str
    query: int


def build_schedule(spec: LoadSpec) -> list[_Arrival]:
    """The deterministic request sequence a spec offers.

    Open mode: exponential inter-arrival gaps at the instantaneous rate
    ``rate_per_s`` (× ``burst_factor`` during the second half of every
    ``burst_period_s`` window) until ``duration_s`` of schedule time is
    filled.  Closed mode: ``workers × requests_per_worker`` arrivals
    with ``at_s`` unset (workers pace themselves); the tenant/query
    draws are shared so both modes sample the same population.
    """
    rng = np.random.default_rng(spec.seed)
    user_probs = _zipf_probs(spec.n_users, spec.zipf_s)
    names = [name for name, _ in spec.tenants]
    weights = np.array([w for _, w in spec.tenants], dtype=np.float64)
    weights /= weights.sum()

    if spec.mode == "open":
        times: list[float] = []
        t = 0.0
        while True:
            in_burst = (
                t % spec.burst_period_s
            ) >= spec.burst_period_s / 2.0
            rate = spec.rate_per_s * (
                spec.burst_factor if in_burst else 1.0
            )
            t += float(rng.exponential(1.0 / rate))
            if t >= spec.duration_s:
                break
            times.append(t)
        count = len(times)
    else:
        count = spec.workers * spec.requests_per_worker
        times = [0.0] * count

    users = rng.choice(spec.n_users, size=count, p=user_probs)
    tenant_idx = rng.choice(len(names), size=count, p=weights)
    return [
        _Arrival(
            at_s=times[i],
            tenant=names[int(tenant_idx[i])],
            query=int(users[i]) % spec.n_queries,
        )
        for i in range(count)
    ]


def make_queries(
    spec: LoadSpec, n_features: int, *, seed: int | None = None
) -> list[np.ndarray]:
    """The ``n_queries`` distinct candidate lists the population asks for."""
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    return [
        rng.standard_normal((spec.docs_per_query, n_features))
        for _ in range(spec.n_queries)
    ]


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
async def _issue(
    front: AsyncScoringService,
    arrival: _Arrival,
    queries: list[np.ndarray],
    report: LoadReport,
) -> None:
    try:
        await front.score(queries[arrival.query], tenant=arrival.tenant)
    except RequestShedError as shed:
        reasons = report.shed_by_tenant.setdefault(shed.tenant, {})
        reasons[shed.reason] = reasons.get(shed.reason, 0) + 1
    except Exception:  # noqa: BLE001 — load runs report, never crash
        report.errors += 1
    else:
        report.served += 1
        report.served_by_tenant[arrival.tenant] = (
            report.served_by_tenant.get(arrival.tenant, 0) + 1
        )


async def run_load_async(
    front: AsyncScoringService,
    spec: LoadSpec,
    queries: list[np.ndarray] | None = None,
    *,
    swap_at: float | None = None,
    swap_fn=None,
) -> LoadReport:
    """Replay ``spec`` against a **running** front-end; returns the report.

    When ``swap_at`` (a fraction of the offered requests, in ``(0, 1)``)
    and ``swap_fn`` are given, ``swap_fn(front)`` fires exactly once —
    just before the arrival that crosses the fraction is issued — and
    its return dict lands in ``report.swap_events`` together with the
    wall-clock offset and arrival index.  ``report.served_by_version``
    then carries the per-version request counts accumulated during the
    run (requires the service's versioned scorer, present on every
    :class:`~repro.serving.service.ScoringService`).
    """
    if queries is None:
        raise ReproError(
            "run_load_async needs the query candidate lists; build them "
            "with make_queries(spec, n_features)"
        )
    if len(queries) < spec.n_queries:
        raise ReproError(
            f"spec names {spec.n_queries} queries but only "
            f"{len(queries)} candidate lists were provided"
        )
    if swap_at is not None:
        if swap_fn is None:
            raise ReproError("swap_at requires swap_fn")
        if not 0.0 < swap_at < 1.0:
            raise ReproError(
                f"swap_at must lie in (0, 1), got {swap_at}"
            )
    schedule = build_schedule(spec)
    report = LoadReport(spec=spec, offered=len(schedule))
    swap_trigger = (
        max(1, math.ceil(swap_at * len(schedule)))
        if swap_at is not None and schedule
        else None
    )
    issued = 0
    versioned = getattr(getattr(front, "service", None), "versioned", None)
    versions_before = (
        dict(versioned.served_by_version) if versioned is not None else {}
    )
    start = time.perf_counter()

    def _before_issue() -> None:
        # Single-threaded event loop: no lock needed around the counter.
        nonlocal issued
        issued += 1
        if swap_trigger is not None and issued == swap_trigger:
            info = swap_fn(front) or {}
            report.swap_events.append(
                {
                    "at_s": time.perf_counter() - start,
                    "at_request": issued,
                    **info,
                }
            )

    if spec.mode == "open":
        tasks = []
        elapsed_base = time.perf_counter()
        for arrival in schedule:
            delay = arrival.at_s * spec.time_scale - (
                time.perf_counter() - elapsed_base
            )
            if delay > 0:
                await asyncio.sleep(delay)
            _before_issue()
            tasks.append(
                asyncio.ensure_future(
                    _issue(front, arrival, queries, report)
                )
            )
        if tasks:
            await asyncio.gather(*tasks)
    else:
        per_worker = [
            schedule[w :: spec.workers] for w in range(spec.workers)
        ]

        async def _worker(mine: list[_Arrival]) -> None:
            for arrival in mine:
                _before_issue()
                await _issue(front, arrival, queries, report)
                if spec.think_time_s > 0:
                    await asyncio.sleep(
                        spec.think_time_s * spec.time_scale
                    )

        await asyncio.gather(*(_worker(mine) for mine in per_worker))
    report.wall_s = time.perf_counter() - start
    if versioned is not None:
        for version, count in versioned.served_by_version.items():
            delta = count - versions_before.get(version, 0)
            if delta > 0:
                report.served_by_version[version] = delta
    recorder = obs.get_request_recorder()
    if recorder.enabled:
        slowest = recorder.flight.slowest_records(1)
        if slowest:
            report.trace_sample = slowest[0].to_dict()
    return report


def run_load(
    service,
    spec: LoadSpec,
    queries: list[np.ndarray] | None = None,
    *,
    n_features: int | None = None,
    frontend=None,
    swap_at: float | None = None,
    swap_fn=None,
) -> LoadReport:
    """Build a front-end around ``service``, replay ``spec``, drain, report.

    ``queries`` may be omitted when ``n_features`` is given — the
    candidate lists are then generated by :func:`make_queries` from the
    spec's own seed.  ``swap_at``/``swap_fn`` trigger a mid-run hot swap
    (see :func:`run_load_async`).
    """
    if queries is None:
        if n_features is None:
            raise ReproError(
                "pass either the query candidate lists or n_features"
            )
        queries = make_queries(spec, n_features)

    async def _run() -> LoadReport:
        async with AsyncScoringService(
            service, frontend=frontend
        ) as front:
            return await run_load_async(
                front, spec, queries, swap_at=swap_at, swap_fn=swap_fn
            )

    return asyncio.run(_run())
