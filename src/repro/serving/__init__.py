"""Serving: the scoring endpoint and its async multi-tenant front-end.

Two surfaces over one runtime:

* :mod:`repro.serving.service` — the synchronous
  :class:`ScoringService`: one model behind a latency budget, with
  micro-batching, sharded parallel scoring, and the resilience ladder
  (see that module for the full tour).  ``from repro.serving import
  ScoringService`` is unchanged from when this package was a module.
* :mod:`repro.serving.frontend` — :class:`AsyncScoringService`, the
  asyncio front-end that coalesces many concurrent callers' candidate
  lists into shared cross-request micro-batches (bit-identically) with
  per-tenant admission control — token buckets, priority classes and
  load shedding (:mod:`repro.serving.tenancy`) — and enqueue→response
  SLO accounting into the ``serving.*`` series.
* :mod:`repro.serving.loadgen` — the closed-loop load harness:
  :class:`LoadSpec` scenarios (seeded Zipfian popularity, bursty open /
  think-time closed arrivals, weighted tenant mixes) replayed by
  :func:`run_load` into a :class:`LoadReport`.

``python -m repro.serving.smoke`` (``make serving-smoke``) gates the
whole stack: coalescing bit-identity across backends, provable shed
bounds, and SLO-miss accounting.  See ``docs/serving_async.md``.
"""

from repro.runtime.config import AsyncConfig, TenantConfig
from repro.runtime.lifecycle import (
    LifecycleConfig,
    LifecycleManager,
    ModelRegistry,
    ModelVersion,
)
from repro.serving.frontend import AsyncScoringService
from repro.serving.loadgen import (
    LoadReport,
    LoadSpec,
    build_schedule,
    make_queries,
    run_load,
    run_load_async,
)
from repro.serving.service import (
    BudgetExceededError,
    ScoringService,
    ServiceConfig,
    ServiceStats,
)
from repro.serving.tenancy import (
    AdmissionController,
    RequestShedError,
    TenantState,
    TokenBucket,
)

__all__ = [
    "AdmissionController",
    "AsyncConfig",
    "AsyncScoringService",
    "BudgetExceededError",
    "LifecycleConfig",
    "LifecycleManager",
    "LoadReport",
    "LoadSpec",
    "ModelRegistry",
    "ModelVersion",
    "RequestShedError",
    "ScoringService",
    "ServiceConfig",
    "ServiceStats",
    "TenantConfig",
    "TenantState",
    "TokenBucket",
    "build_schedule",
    "make_queries",
    "run_load",
    "run_load_async",
]
