"""A miniature document-scoring service.

Wraps any model the scoring runtime knows (forests via QuickScorer,
dense / first-layer-sparse / quantized students, ahead-of-time compiled
plans via the ``compiled-network`` backend, early-exit cascades — see
:mod:`repro.runtime`) behind one endpoint with the operational
features a query processor needs:

* per-request latency *budget* checking against the calibrated cost
  models (requests are priced before execution, the paper's predictors
  doing in deployment what they do at design time);
* micro-batching of documents per query through the shared
  :class:`~repro.runtime.batching.BatchEngine`;
* running latency/volume statistics with p50/p95/p99 percentiles;
* **parallel scoring**: a :class:`~repro.runtime.parallel.ParallelConfig`
  shards each request across a persistent worker pool and (optionally)
  short-circuits repeated documents through a
  :class:`~repro.runtime.parallel.ScoreCache` — bit-identically to
  single-threaded scoring;
* **graceful degradation**: a :class:`~repro.runtime.config.
  ResilienceConfig` serves through a
  :class:`~repro.runtime.resilience.FallbackChain` — retries with
  backoff, per-request deadlines, and per-tier circuit breakers that
  trip on failure rate or predicted-vs-measured latency drift.  The
  resilience layer wraps the sharded scorer unchanged;
* **versioned models with zero-downtime hot swap**: every service
  serves through a :class:`~repro.runtime.lifecycle.ModelRegistry`
  (a plain model is auto-wrapped as the single version ``v1``).
  :meth:`ScoringService.swap` registers a candidate and promotes it
  behind a shadow-scoring gate — or immediately with ``force=True`` —
  with in-flight requests finishing on the incumbent, fingerprint-keyed
  cache invalidation, and automatic rollback when the gate trips.  See
  ``docs/lifecycle.md``.

Configuration is one typed object, :class:`~repro.runtime.config.
ServiceConfig`::

    service = ScoringService(model, ServiceConfig(
        budget_us_per_doc=25.0,
        parallel=ParallelConfig(workers=4, cache_entries=8192),
        resilience=ResilienceConfig(fallback_models=[cheap, StubScorer()]),
    ))

The pre-1.1 keyword arguments (``fallback_models``, ``retry_policy``,
``breaker_config``, ``deadline_us``, ``allow_unpriced``) keep working as
deprecated aliases that emit ``DeprecationWarning`` and map onto the
configs — see the migration table in ``docs/runtime.md``.

This is the integration surface a downstream search stack would adopt;
``examples/scoring_service.py`` shows the multi-stage variant,
``examples/resilient_service.py`` the degradation ladder and
``examples/parallel_scoring.py`` the sharded engine.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Mapping

import numpy as np

from repro import obs
from repro.runtime import (
    BatchEngine,
    BudgetExceededError,
    FallbackChain,
    LifecycleConfig,
    LifecycleManager,
    ModelRegistry,
    PricingContext,
    RankingPipeline,
    ResilienceConfig,
    ScoreCache,
    ServiceConfig,
    ServiceStats,
    ShardedScorer,
    VersionedScorer,
    build_pipeline,
    is_scorer,
    make_scorer,
)

__all__ = [
    "BudgetExceededError",
    "ScoringService",
    "ServiceConfig",
    "ServiceStats",
]

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()

#: Deprecated keyword → the ServiceConfig location that replaces it.
_LEGACY_KWARGS = {
    "fallback_models": "ServiceConfig(resilience=ResilienceConfig("
    "fallback_models=...))",
    "retry_policy": "ServiceConfig(resilience=ResilienceConfig(retry=...))",
    "breaker_config": "ServiceConfig(resilience=ResilienceConfig("
    "breaker=...))",
    "deadline_us": "ServiceConfig(resilience=ResilienceConfig("
    "deadline_us=...))",
    "allow_unpriced": "ServiceConfig(allow_unpriced=...)",
}


class ScoringService:
    """A single-model scoring endpoint with a latency budget.

    Parameters
    ----------
    model:
        Any model with a registered runtime backend — a
        :class:`~repro.forest.ensemble.TreeEnsemble` (scored through
        QuickScorer), a :class:`~repro.distill.student.DistilledStudent`
        (dense or first-layer-sparse), an
        :class:`~repro.design.cascade.EarlyExitCascade` — or an
        already-built :class:`~repro.runtime.base.Scorer`.  When
        ``config.pipeline`` is set, a mapping of stage role names to
        models instead (resolved through
        :func:`~repro.runtime.ranking.build_pipeline`), or a pre-built
        :class:`~repro.runtime.ranking.RankingPipeline`.
    config:
        A :class:`~repro.runtime.config.ServiceConfig` bundling budget,
        batching, backend choice, parallelism and resilience.  Mutually
        exclusive with the per-field keyword shorthands below.
    budget_us_per_doc, max_batch_size, backend:
        Convenience shorthands for the matching :class:`ServiceConfig`
        fields (for one-liner services without a config object).
    predictor:
        Shared :class:`~repro.timing.network_predictor.
        NetworkTimePredictor` for pricing networks (defaults to the
        process-wide one).
    cost_model:
        QuickScorer cost model override for pricing forests.
    context:
        Pre-built :class:`~repro.runtime.context.PricingContext`
        (overrides ``predictor``/``cost_model``).
    clock, sleep:
        Injectable time pair forwarded to the resilience layer (see
        :class:`~repro.runtime.faults.ManualClock`).
    fallback_models, retry_policy, breaker_config, deadline_us, \
allow_unpriced:
        **Deprecated** aliases; they emit ``DeprecationWarning`` and map
        onto :class:`ServiceConfig`/:class:`ResilienceConfig` with
        behaviour identical to the equivalent config.
    **scorer_opts:
        Extra options forwarded to :func:`repro.runtime.make_scorer`
        (e.g. ``quantized_bits=8``, or ``compiled=True`` to serve
        through an ahead-of-time
        :class:`~repro.runtime.compile.InferencePlan`).  Merged over
        ``config.backend_options`` (per-call keys win).
    """

    def __init__(
        self,
        model,
        config: ServiceConfig | None = None,
        *,
        budget_us_per_doc: float | None = None,
        predictor=None,
        cost_model=None,
        max_batch_size=_UNSET,
        backend: str | None = None,
        context: PricingContext | None = None,
        fallback_models=None,
        retry_policy=None,
        breaker_config=None,
        deadline_us: float | None = None,
        allow_unpriced: bool | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
        **scorer_opts,
    ) -> None:
        legacy = {
            "fallback_models": fallback_models,
            "retry_policy": retry_policy,
            "breaker_config": breaker_config,
            "deadline_us": deadline_us,
            "allow_unpriced": allow_unpriced,
        }
        provided_legacy = [k for k, v in legacy.items() if v is not None]
        if provided_legacy:
            warnings.warn(
                "ScoringService keyword(s) "
                + ", ".join(repr(k) for k in provided_legacy)
                + " are deprecated; pass "
                + "; ".join(_LEGACY_KWARGS[k] for k in provided_legacy)
                + " instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if config is not None:
            conflicting = [
                name
                for name, given in (
                    ("budget_us_per_doc", budget_us_per_doc is not None),
                    ("max_batch_size", max_batch_size is not _UNSET),
                    ("backend", backend is not None),
                    *((k, True) for k in provided_legacy),
                )
                if given
            ]
            if conflicting:
                raise ValueError(
                    "pass service settings via config=ServiceConfig(...) "
                    "or keywords, not both (got config plus "
                    + ", ".join(conflicting)
                    + ")"
                )
        else:
            resilience = None
            if any(
                v is not None
                for v in (
                    fallback_models,
                    retry_policy,
                    breaker_config,
                    deadline_us,
                )
            ):
                resilience = ResilienceConfig(
                    fallback_models=tuple(fallback_models or ()),
                    retry=retry_policy,
                    breaker=breaker_config,
                    deadline_us=deadline_us,
                )
            config = ServiceConfig(
                budget_us_per_doc=budget_us_per_doc,
                max_batch_size=(
                    256 if max_batch_size is _UNSET else max_batch_size
                ),
                backend=backend,
                allow_unpriced=bool(allow_unpriced),
                resilience=resilience,
            )
        self.config = config

        if context is None:
            context = PricingContext(predictor=predictor, qs_cost=cost_model)
        self.pipeline: RankingPipeline | None = None
        if config.pipeline is not None:
            if isinstance(model, ModelRegistry):
                raise ValueError(
                    "a ServiceConfig with pipeline= cannot take a "
                    "ModelRegistry: each pipeline stage names its own model"
                )
            if isinstance(model, RankingPipeline):
                self.pipeline = model
            else:
                if not isinstance(model, Mapping):
                    raise ValueError(
                        "a ServiceConfig with pipeline= needs model to be "
                        "a mapping of stage role names to models, got "
                        f"{type(model).__name__}"
                    )
                self.pipeline = build_pipeline(
                    model, config.pipeline, context=context
                )
            model = self.pipeline
        # Every service serves through a versioned registry; a plain
        # model (or pipeline) is auto-wrapped as single version "v1".
        opts = {**(config.backend_options or {}), **scorer_opts}
        if isinstance(model, ModelRegistry):
            if len(model) == 0:
                raise ValueError(
                    "cannot serve an empty ModelRegistry; register a "
                    "model first"
                )
            self.registry = model
        else:
            self.registry = ModelRegistry(
                context=context,
                backend=config.backend,
                backend_options=opts,
            )
            self.registry.register(model, version="v1", source="seed")
        self.cache: ScoreCache | None = None
        if config.parallel is not None and config.parallel.cache_entries:
            self.cache = ScoreCache(config.parallel.cache_entries)
        self.versioned = VersionedScorer(
            self.registry, parallel=config.parallel, cache=self.cache
        )
        self.scorer = self.versioned
        engine_scorer = self.scorer
        self.chain: FallbackChain | None = None
        resilience = config.resilience
        if resilience is not None:
            tiers = [engine_scorer]
            for fallback in resilience.fallback_models:
                tiers.append(
                    fallback
                    if is_scorer(fallback)
                    else make_scorer(fallback, context=context)
                )
            self.chain = FallbackChain(
                tiers,
                retry=resilience.retry,
                breaker=resilience.breaker,
                deadline_us=resilience.deadline_us,
                clock=clock,
                sleep=sleep,
            )
            engine_scorer = self.chain
        self.engine = BatchEngine(
            engine_scorer,
            max_batch_size=config.max_batch_size,
            budget_us_per_doc=config.budget_us_per_doc,
            allow_unpriced=config.allow_unpriced,
        )
        self.stats = self.engine.stats
        self.budget_us_per_doc = config.budget_us_per_doc
        self.lifecycle = LifecycleManager(
            self.registry,
            config.lifecycle or LifecycleConfig(),
            versioned=self.versioned,
            cache=self.cache,
            engine=self.engine,
            budget_us_per_doc=config.budget_us_per_doc,
            allow_unpriced=config.allow_unpriced,
        )

    # ------------------------------------------------------------------
    @property
    def model(self):
        """The active version's model (the ``v1`` seed until a swap)."""
        return self.registry.active.model

    @property
    def sharded(self) -> ShardedScorer | None:
        """The active version's shard stack (``None`` without
        :class:`~repro.runtime.parallel.ParallelConfig`)."""
        if self.config.parallel is None:
            return None
        return self.versioned.active_stack()

    # ------------------------------------------------------------------
    def score(self, features) -> np.ndarray:
        """Score one request's documents, updating the running stats."""
        with obs.span("service.request", backend=self.scorer.backend):
            return self.engine.score(features)

    # ------------------------------------------------------------------
    def swap(
        self,
        candidate,
        *,
        version: str | None = None,
        force: bool = False,
        source: str = "candidate",
        **backend_options,
    ) -> dict[str, object]:
        """Register ``candidate`` and promote it zero-downtime.

        With the default :class:`~repro.runtime.lifecycle.
        LifecycleConfig` the swap opens a *shadow phase*: a fraction of
        live traffic is mirrored to the candidate off the hot path and
        the promotion gate (score drift + NDCG ranking agreement vs the
        incumbent) decides.  ``force=True`` promotes immediately.
        Either way the activation itself is one atomic pointer flip:
        in-flight requests finish on the incumbent, new arrivals score
        on the candidate, and the incumbent's
        :class:`~repro.runtime.parallel.ScoreCache` rows are
        invalidated by fingerprint.  See ``docs/lifecycle.md``.
        """
        return self.lifecycle.swap(
            candidate,
            version=version,
            force=force,
            source=source,
            **backend_options,
        )

    def rollback(self):
        """Re-activate the previously active model version."""
        return self.lifecycle.rollback()

    def redistill(self, **kwargs) -> dict[str, object]:
        """Fine-tune the active student on the replay buffer and swap
        the result in (see :meth:`~repro.runtime.lifecycle.
        LifecycleManager.redistill`)."""
        return self.lifecycle.redistill(**kwargs)

    def lifecycle_summary(self) -> dict[str, object]:
        """Registry/shadow/swap snapshot of the versioned lifecycle."""
        return self.lifecycle.summary()

    def close(self) -> None:
        """Release worker pools and the shadow executor."""
        self.lifecycle.close()
        self.versioned.close()
        self.registry.close()

    def drift_summary(self) -> dict[str, float]:
        """Predicted vs measured µs/doc for this service's traffic.

        The deployment-time audit of the paper's cost predictors: the
        calibrated price the model was admitted under, the measured
        running unit cost, and their signed percentage gap.
        """
        return self.stats.drift_summary()

    def resilience_summary(self) -> list[dict[str, object]] | None:
        """Per-tier serving/breaker snapshot, or ``None`` when the
        service was built without a fallback chain."""
        return self.chain.tier_summary() if self.chain else None

    def parallel_summary(self) -> dict[str, object] | None:
        """Shard/pool/cache snapshot, or ``None`` when the service was
        built without a :class:`ParallelConfig`."""
        return self.sharded.summary() if self.sharded else None

    def pipeline_summary(self) -> list[dict[str, object]] | None:
        """Per-stage name/cost/keep snapshot, or ``None`` when the
        service was built without a
        :class:`~repro.runtime.ranking.PipelineConfig`."""
        if self.pipeline is None:
            return None
        return [
            {
                "stage": stage.name,
                "cost_us_per_doc": stage.cost_us_per_doc,
                "keep_fraction": stage.keep_fraction,
            }
            for stage in self.pipeline.stages
        ]

    @property
    def fallback_ratio(self) -> float:
        """Fraction of requests served by a non-primary tier (0 when
        the service has no fallback chain)."""
        return self.chain.fallback_ratio if self.chain else 0.0

    def rank(self, features) -> np.ndarray:
        """Document indices in descending score order."""
        return self.engine.rank(features)

    def top_k(self, features, k: int) -> np.ndarray:
        """Indices of the ``k`` highest-scored documents.

        Partial selection (``argpartition`` + sort of the ``k`` winners)
        rather than a full per-request argsort.
        """
        return self.engine.top_k(features, k)
