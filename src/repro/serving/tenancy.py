"""Per-tenant admission control: token buckets, QoS classes, shedding.

A production ranker is shared by many callers — product surfaces, batch
re-scorers, experiment traffic — and the front-end must keep one noisy
tenant from starving the rest.  This module is the admission layer the
asyncio front-end consults *before* a request is queued:

* :class:`TokenBucket` — the classic rate limiter, deterministic under
  an injectable clock: tokens refill at ``rate_per_s`` up to ``burst``;
  a request is admitted iff a whole token is available.
* :class:`TenantState` — one tenant's live position: its bucket, its
  queued-request count, and its admission counters.
* :class:`AdmissionController` — maps tenant names to states (declared
  tenants from :class:`~repro.runtime.config.AsyncConfig`, undeclared
  ones under an implicit default contract) and answers one question per
  arrival: *admit, or shed with which reason?*  Shedding reasons are
  ``rate-limit`` (token bucket empty), ``queue-depth`` (front-end-wide
  cap) and ``tenant-queue-depth`` (per-tenant cap).

Shedding happens at arrival, never mid-queue: once admitted, a request
is always answered (the engine's own resilience ladder handles scorer
failures).  Every decision feeds the ``serving.*`` metric series.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.exceptions import ReproError
from repro.runtime.config import AsyncConfig, TenantConfig

__all__ = [
    "AdmissionController",
    "RequestShedError",
    "SHED_REASONS",
    "TenantState",
    "TokenBucket",
]

#: Reasons an arrival may be shed, as recorded in ``serving.shed``.
SHED_REASONS = ("rate-limit", "queue-depth", "tenant-queue-depth")


class RequestShedError(ReproError):
    """The front-end refused a request at admission (load shedding).

    Carries the ``tenant`` and the shed ``reason`` (one of
    :data:`SHED_REASONS`) so callers — and the load generator — can
    account rejections per tenant without parsing messages.
    """

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(
            f"request from tenant {tenant!r} shed at admission: {reason}"
        )
        self.tenant = tenant
        self.reason = reason


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    Tokens refill continuously at ``rate_per_s`` up to a capacity of
    ``burst``; the bucket starts full.  All timing flows through the
    injected ``clock`` (monotonic seconds), so tests and the smoke gate
    can drive it with a manual clock and replay schedules exactly.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ReproError(f"rate_per_s must be > 0, got {rate_per_s}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._refilled_at, 0.0)
        self._tokens = min(
            self.burst, self._tokens + elapsed * self.rate_per_s
        )
        self._refilled_at = now

    def available(self, now: float | None = None) -> float:
        """Tokens currently in the bucket (refilled to ``now``)."""
        self._refill(self._clock() if now is None else now)
        return self._tokens

    def try_acquire(self, now: float | None = None) -> bool:
        """Take one token if available; returns whether it was."""
        self._refill(self._clock() if now is None else now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<TokenBucket {self._tokens:.1f}/{self.burst} "
            f"@ {self.rate_per_s:g}/s>"
        )


class TenantState:
    """One tenant's live admission position."""

    def __init__(
        self,
        config: TenantConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.bucket: TokenBucket | None = (
            TokenBucket(config.rate_per_s, config.burst, clock=clock)
            if config.rate_per_s is not None
            else None
        )
        self.queued = 0
        self.admitted = 0
        self.shed = 0
        self.served = 0
        self.slo_misses = 0

    def effective_slo_us(self, default_slo_us: float | None) -> float | None:
        """The tenant's enqueue→response SLO, falling back to the default."""
        if self.config.deadline_us is not None:
            return self.config.deadline_us
        return default_slo_us

    def snapshot(self) -> dict[str, object]:
        """Counters + contract, for summaries and the load harness."""
        return {
            "tenant": self.config.name,
            "priority": self.config.priority,
            "rate_per_s": self.config.rate_per_s,
            "admitted": self.admitted,
            "shed": self.shed,
            "served": self.served,
            "slo_misses": self.slo_misses,
            "queued": self.queued,
        }


class AdmissionController:
    """Tenant-aware admit-or-shed decisions for the async front-end.

    Single-writer by design: the controller is only touched from the
    event-loop thread (``score`` admissions and batcher releases), so it
    needs no locks — the contract the front-end upholds by doing *all*
    bookkeeping on the loop and only the engine call on the executor.
    """

    def __init__(
        self,
        config: AsyncConfig,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self.tenants: dict[str, TenantState] = {
            tenant.name: TenantState(tenant, clock=clock)
            for tenant in config.tenants
        }

    # ------------------------------------------------------------------
    def state(self, name: str) -> TenantState:
        """The tenant's state, creating an implicit default on first use."""
        found = self.tenants.get(name)
        if found is None:
            found = self.tenants[name] = TenantState(
                TenantConfig(name=name), clock=self._clock
            )
        return found

    def admit(
        self, name: str, *, queue_depth: int, now: float | None = None
    ) -> tuple[TenantState, str | None]:
        """Decide one arrival; returns ``(state, shed_reason_or_None)``.

        Check order mirrors cost: the global queue cap (protects the
        whole service) first, the per-tenant cap second, the token
        bucket last — a rate-limited tenant does not burn bucket tokens
        on requests a full queue would have shed anyway.
        """
        state = self.state(name)
        reason: str | None = None
        if queue_depth >= self.config.max_queue_depth:
            reason = "queue-depth"
        elif (
            state.config.max_queue_depth is not None
            and state.queued >= state.config.max_queue_depth
        ):
            reason = "tenant-queue-depth"
        elif state.bucket is not None and not state.bucket.try_acquire(
            self._clock() if now is None else now
        ):
            reason = "rate-limit"
        if reason is None:
            state.admitted += 1
            state.queued += 1
        else:
            state.shed += 1
        return state, reason

    def release(self, name: str) -> None:
        """Mark one queued request of ``name`` as drained into a batch."""
        state = self.state(name)
        state.queued = max(state.queued - 1, 0)

    def summary(self) -> list[dict[str, object]]:
        """Per-tenant snapshots, declared tenants first, then implicit."""
        declared = [t.name for t in self.config.tenants]
        order = declared + sorted(set(self.tenants) - set(declared))
        return [self.tenants[name].snapshot() for name in order]
