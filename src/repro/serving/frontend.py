"""Asyncio front-end: cross-request coalescing over the scoring runtime.

:class:`AsyncScoringService` puts an event loop in front of the
synchronous :class:`~repro.serving.service.ScoringService`.  Many
concurrent callers ``await service.score(features, tenant=...)``; a
single batcher task drains the queue and pushes **one coalesced
micro-batch per engine call** through
:meth:`~repro.runtime.batching.BatchEngine.score_coalesced` — one GEMM
for N users' candidate lists instead of N small ones — then slices the
scores back out per request.

The bit contract: coalescing never changes a score.  Every batchable
backend in the runtime is chunk-invariant (einsum network adapters,
``stable=True`` compiled plans, row-independent QuickScorer traversal),
so the slice a request gets back is bitwise what a lone synchronous
``score`` call would have produced; non-batchable cascades are scored
request-by-request inside the same engine call.  The hypothesis suite
(``tests/test_serving_async.py``) and ``make serving-smoke`` both pin
this.

Threading model — single-writer everywhere:

* all queueing, admission and response bookkeeping happens on the event
  loop thread (the :class:`~repro.serving.tenancy.AdmissionController`
  is lock-free by this contract);
* only the engine call runs off-loop, on a dedicated one-thread
  executor; :class:`~repro.runtime.batching.ServiceStats` and the
  ``obs`` registry take their own locks, so stats written from that
  thread and read from the loop are safe.

Queueing and QoS:

* arrivals pass the admission layer first — global queue cap, per-tenant
  queue cap, per-tenant token bucket — and a refused request raises
  :class:`~repro.serving.tenancy.RequestShedError` immediately
  (shed-at-arrival, never mid-queue);
* admitted requests wait in per-priority FIFO deques; the batcher drains
  strictly by priority class (lower number first), FIFO within a class,
  up to ``max_batch_requests`` / ``max_batch_docs`` per coalesced call;
* ``max_wait_us`` is the linger window: with queued work the batcher
  waits that long for more arrivals to coalesce before dispatching
  (0 = dispatch whatever is there, the latency-first default);
* every response is timed **enqueue→response** against the tenant's SLO
  (``deadline_us``, falling back to ``AsyncConfig.slo_us``); overruns
  are served but counted as ``serving.slo_miss``.

When the default :class:`~repro.obs.requests.RequestRecorder` is
enabled, every request additionally carries a
:class:`~repro.obs.requests.RequestContext`: the front-end stamps the
``admission`` / ``queue-wait`` / ``respond`` stages with its own clock,
the engine stamps ``coalesce`` / ``kernel`` (the contexts ride into the
executor thread via ``score_coalesced(request_contexts=...)``), and the
finished record lands in the flight recorder.  While the recorder is
disabled (the default) none of this allocates — the per-request branch
is one attribute check.

Use it as an async context manager::

    service = ScoringService(student, ServiceConfig(frontend=AsyncConfig(
        max_wait_us=200.0,
        tenants=(TenantConfig(name="web", rate_per_s=500.0, priority=0),),
    )))
    async with AsyncScoringService(service) as front:
        scores = await front.score(features, tenant="web")
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import obs
from repro.exceptions import ReproError
from repro.runtime.config import AsyncConfig, ServiceConfig
from repro.serving.service import ScoringService
from repro.serving.tenancy import (
    AdmissionController,
    RequestShedError,
    TenantState,
)
from repro.utils.validation import check_array_2d

__all__ = ["AsyncScoringService"]


class _Pending:
    """One admitted request waiting in the queue."""

    __slots__ = ("features", "tenant", "state", "enqueued_at", "future", "ctx")

    def __init__(
        self,
        features: np.ndarray,
        tenant: str,
        state: TenantState,
        enqueued_at: float,
        future: asyncio.Future,
        ctx=None,
    ) -> None:
        self.features = features
        self.tenant = tenant
        self.state = state
        self.enqueued_at = enqueued_at
        self.future = future
        self.ctx = ctx


class AsyncScoringService:
    """Async multi-tenant endpoint coalescing requests into shared batches.

    Parameters
    ----------
    service:
        The synchronous :class:`~repro.serving.service.ScoringService`
        to serve through — or any model accepted by its constructor, in
        which case one is built from ``config``/``scorer_opts``.
    config:
        :class:`~repro.runtime.config.ServiceConfig` used when ``service``
        is a bare model.  Its ``frontend`` section configures this class.
    frontend:
        Explicit :class:`~repro.runtime.config.AsyncConfig`, overriding
        ``service.config.frontend`` (default: that, or ``AsyncConfig()``).
    clock:
        Monotonic-seconds clock driving enqueue timestamps, the token
        buckets and the kernel timer — injectable so tests and the smoke
        gate replay schedules deterministically.
    """

    def __init__(
        self,
        service,
        config: ServiceConfig | None = None,
        *,
        frontend: AsyncConfig | None = None,
        clock: Callable[[], float] = time.perf_counter,
        **scorer_opts,
    ) -> None:
        if not isinstance(service, ScoringService):
            service = ScoringService(service, config, **scorer_opts)
        elif config is not None or scorer_opts:
            raise ValueError(
                "pass either a built ScoringService or a model with "
                "config/scorer options, not both"
            )
        self.service = service
        self.engine = service.engine
        if frontend is None:
            frontend = service.config.frontend or AsyncConfig()
        self.frontend = frontend
        self._clock = clock
        self.admission = AdmissionController(frontend, clock=clock)
        self._queues: dict[int, deque[_Pending]] = {}
        self._queued = 0
        self._batches = 0
        self._batch_seq = 0
        self._coalesced_requests = 0
        self._task: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._wakeup: asyncio.Event | None = None
        self._closing = False

    # ------------------------------------------------------------------
    # Model lifecycle (delegated to the wrapped service)
    # ------------------------------------------------------------------
    @property
    def lifecycle(self):
        """The wrapped service's
        :class:`~repro.runtime.lifecycle.LifecycleManager`."""
        return self.service.lifecycle

    @property
    def registry(self):
        """The wrapped service's
        :class:`~repro.runtime.lifecycle.ModelRegistry`."""
        return self.service.registry

    def swap(self, candidate, **kwargs) -> dict[str, object]:
        """Hot-swap the served model zero-downtime (see
        :meth:`ScoringService.swap`).  Safe to call while the batcher
        is running: activation is atomic and in-flight coalesced
        batches finish on the version they resolved."""
        return self.service.swap(candidate, **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._task is not None

    async def start(self) -> "AsyncScoringService":
        """Start the batcher task (idempotent via context manager use)."""
        if self._task is not None:
            raise ReproError("AsyncScoringService is already running")
        self._closing = False
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        self._task = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="repro-serving-batcher"
        )
        return self

    async def stop(self) -> None:
        """Drain every queued request, then stop the batcher."""
        if self._task is None:
            return
        self._closing = True
        assert self._wakeup is not None
        self._wakeup.set()
        try:
            await self._task
        finally:
            self._task = None
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    async def __aenter__(self) -> "AsyncScoringService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Request path (event-loop thread only)
    # ------------------------------------------------------------------
    async def score(self, features, *, tenant: str = "default") -> np.ndarray:
        """Score one request's documents through the shared batch queue.

        Admission runs first — a shed request raises
        :class:`~repro.serving.tenancy.RequestShedError` without being
        queued.  Admitted requests resolve with the same float64 score
        vector a synchronous ``service.score`` call would return,
        bit-for-bit, regardless of which requests shared the batch.
        """
        if self._task is None or self._closing:
            raise ReproError(
                "AsyncScoringService is not running; use "
                "'async with AsyncScoringService(...)' or await start()"
            )
        x = np.asarray(features, dtype=np.float64)
        if not (x.ndim == 2 and x.shape[0] == 0):
            x = check_array_2d(x, "features")
        recorder = obs.get_request_recorder()
        ctx = (
            recorder.begin(tenant, n_docs=len(x), now_s=self._clock())
            if recorder.enabled
            else None
        )
        state, reason = self.admission.admit(
            tenant, queue_depth=self._queued, now=self._clock()
        )
        if reason is not None:
            obs.record_shed(tenant, reason)
            if ctx is not None:
                ctx.annotate(reason=reason)
                recorder.finish(ctx, status="shed", now_s=self._clock())
            raise RequestShedError(tenant, reason)
        obs.record_admitted(tenant)
        future = asyncio.get_running_loop().create_future()
        enqueued_at = self._clock()
        pending = _Pending(x, tenant, state, enqueued_at, future, ctx)
        if ctx is not None:
            # The enqueue timestamp anchors the stage timeline; the
            # arrival→enqueue admission work is recorded but excluded
            # from the enqueue→response sum.
            ctx.enqueued_s = enqueued_at
            ctx.stage(
                "admission",
                ctx.created_s,
                enqueued_at,
                priority=state.config.priority,
            )
        self._queues.setdefault(state.config.priority, deque()).append(
            pending
        )
        self._queued += 1
        assert self._wakeup is not None
        self._wakeup.set()
        return await future

    # ------------------------------------------------------------------
    # Batcher (single task)
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            if not self._queued:
                if self._closing:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if self.frontend.max_wait_us > 0 and not self._closing:
                # Linger: trade this much latency for deeper coalescing.
                await asyncio.sleep(self.frontend.max_wait_us * 1e-6)
            batch = self._drain()
            if batch:
                await self._execute(batch)

    def _drain(self) -> list[_Pending]:
        """Pop the next coalesced batch: priority order, FIFO within."""
        batch: list[_Pending] = []
        docs = 0
        drained_at = self._clock()
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            while queue:
                n = len(queue[0].features)
                if batch and (
                    len(batch) >= self.frontend.max_batch_requests
                    or docs + n > self.frontend.max_batch_docs
                ):
                    return batch
                pending = queue.popleft()
                self._queued -= 1
                self.admission.release(pending.tenant)
                if pending.ctx is not None:
                    pending.ctx.stage(
                        "queue-wait", pending.enqueued_at, drained_at
                    )
                batch.append(pending)
                docs += n
        return batch

    async def _execute(self, batch: list[_Pending]) -> None:
        features = [pending.features for pending in batch]
        enqueue_times = [pending.enqueued_at for pending in batch]
        contexts = [pending.ctx for pending in batch]
        traced = any(ctx is not None for ctx in contexts)
        self._batch_seq += 1
        if traced:
            for ctx in contexts:
                if ctx is not None:
                    ctx.batch_id = self._batch_seq
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.score_coalesced(
                    features,
                    enqueue_times=enqueue_times,
                    clock=self._clock,
                    request_contexts=contexts if traced else None,
                ),
            )
        except Exception as exc:  # noqa: BLE001 — relayed to each caller
            now = self._clock()
            recorder = obs.get_request_recorder()
            for pending in batch:
                if pending.ctx is not None:
                    pending.ctx.annotate(error=type(exc).__name__)
                    recorder.finish(pending.ctx, status="error", now_s=now)
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        now = self._clock()
        self._batches += 1
        self._coalesced_requests += len(batch)
        obs.record_batch(
            n_requests=len(batch),
            n_docs=sum(len(f) for f in features),
            queue_depth=self._queued,
        )
        recorder = obs.get_request_recorder()
        for pending, scores in zip(batch, results):
            latency_us = max(now - pending.enqueued_at, 0.0) * 1e6
            slo_us = pending.state.effective_slo_us(self.frontend.slo_us)
            miss = slo_us is not None and latency_us > slo_us
            obs.record_response(pending.tenant, latency_us, slo_us=slo_us)
            pending.state.served += 1
            if miss:
                pending.state.slo_misses += 1
            if pending.ctx is not None:
                ctx = pending.ctx
                # Respond picks up where the kernel stage ended, so the
                # four post-enqueue stages tile enqueue→response exactly.
                ctx.stage("respond", ctx.last_stage_end(now), now)
                recorder.finish(
                    ctx,
                    status="ok",
                    now_s=now,
                    slo_us=slo_us,
                    slo_miss=miss,
                )
            if not pending.future.done():
                pending.future.set_result(scores)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Front-end position: coalescing counters + per-tenant states."""
        return {
            "batches": self._batches,
            "coalesced_requests": self._coalesced_requests,
            "requests_per_batch": (
                self._coalesced_requests / self._batches
                if self._batches
                else float("nan")
            ),
            "queue_depth": self._queued,
            "tenants": self.admission.summary(),
        }
