"""Self-checking serving front-end smoke run (``make serving-smoke``).

Exercises the asyncio multi-tenant front-end end to end and *asserts*
the outcomes, so CI can gate on ``python -m repro.serving.smoke``:

1. **Coalescing bit-identity** — concurrent async requests answered
   through shared cross-request micro-batches must reproduce sequential
   ``ScoringService.score`` bit for bit, on every probe backend
   (``quickscorer``, ``dense-network``, ``sparse-network``, and the AOT
   ``compiled-network`` plan).  This is the contract that makes
   coalescing adoptable: sharing a GEMM may never change a score.
2. **Coalescing actually coalesces** — with a linger window and
   concurrent callers, the engine must see fewer batches than requests
   (requests/batch > 1), or the front-end is just a slow queue.
3. **Admission control** — a deterministic seeded load run over three
   tenants must shed a rate-limited tenant within provable bounds
   (its token bucket admits at most ``burst + rate x wall`` requests),
   shed it for the ``rate-limit`` reason only, and leave the unlimited
   tenant unshed.  Shedding raises; it never fails a served request.
4. **SLO accounting** — a tenant with an unmeetable ``deadline_us``
   must have every served response counted as an SLO miss (misses are
   served, not dropped), and the miss counts must agree between the
   admission layer and the ``serving.*`` series.
5. **Observability** — :func:`repro.obs.serving_report` must reflect
   the traffic just offered: per-tenant admitted/shed counts matching
   the client-side :class:`~repro.serving.loadgen.LoadReport`, finite
   latency percentiles, and a rendering that names every tenant.

Exits non-zero on any violation.
"""

from __future__ import annotations

import asyncio
import math
import sys

import numpy as np


def check_bit_identity() -> tuple[int, float]:
    """Interleaved async scoring == sequential scoring, across backends."""
    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig
    from repro.serving import AsyncScoringService, ScoringService

    models = build_probe_models(n_queries=8, docs_per_query=16, seed=0)
    features = models["dataset"].features
    rng = np.random.default_rng(3)
    targets = [
        ("quickscorer", "quickscorer"),
        ("dense-network", "dense-network"),
        ("sparse-network", "sparse-network"),
        # the AOT plan over the pruned probe student: coalescing composes
        # with compiled execution because stable plans are chunk-invariant
        ("compiled-network", "sparse-network"),
    ]
    checked = 0
    best_coalesce = 0.0
    for backend, model_key in targets:
        service = ScoringService(
            models[model_key], ServiceConfig(backend=backend)
        )
        # Uneven per-request slices of the probe matrix, so batch
        # boundaries never align with request boundaries.
        bounds = np.sort(
            rng.choice(np.arange(1, len(features)), size=7, replace=False)
        )
        requests = np.split(features, bounds)
        sequential = [service.score(x) for x in requests]

        async def _interleaved() -> tuple[list[np.ndarray], dict]:
            async with AsyncScoringService(
                service, frontend=AsyncConfig(max_wait_us=2000.0)
            ) as front:
                scores = await asyncio.gather(
                    *(front.score(x) for x in requests)
                )
                return scores, front.summary()

        interleaved, summary = asyncio.run(_interleaved())
        for index, (ref, got) in enumerate(zip(sequential, interleaved)):
            np.testing.assert_array_equal(
                got,
                ref,
                err_msg=(
                    f"{backend} request {index} scored through a coalesced "
                    "batch diverged from sequential scoring"
                ),
            )
            checked += 1
        ratio = summary["requests_per_batch"]
        if math.isfinite(ratio):
            best_coalesce = max(best_coalesce, ratio)
    assert checked >= 32, f"only {checked} identity checks ran"
    assert best_coalesce > 1.0, (
        f"concurrent requests never shared a batch "
        f"(best requests/batch {best_coalesce:.2f})"
    )
    print(
        f"bit-identity: {checked} coalesced requests reproduce sequential "
        f"scoring exactly (best coalescing {best_coalesce:.1f} requests/batch)"
    )
    return checked, best_coalesce


def check_admission_and_slo():
    """Deterministic seeded load: shed bounds, reasons, SLO accounting."""
    from repro import obs
    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig, TenantConfig
    from repro.serving import LoadSpec, ScoringService, make_queries, run_load

    models = build_probe_models(n_queries=8, docs_per_query=16, seed=0)
    n_features = models["dataset"].features.shape[1]
    service = ScoringService(
        models["dense-network"], ServiceConfig(backend="dense-network")
    )
    frontend = AsyncConfig(
        max_wait_us=500.0,
        tenants=(
            # bucket of 5, refilling 1/s: over a sub-second run it can
            # admit at most ~6 of this tenant's ~66 offered requests
            TenantConfig(name="limited", rate_per_s=1.0, burst=5),
            # 0.5 us enqueue->response is unmeetable: every served
            # response must count as an SLO miss (served, not dropped)
            TenantConfig(name="strict", deadline_us=0.5, priority=0),
            TenantConfig(name="bulk", priority=2),
        ),
    )
    spec = LoadSpec(
        mode="closed",
        workers=8,
        requests_per_worker=25,
        think_time_s=0.0,
        n_users=5000,
        n_queries=16,
        docs_per_query=8,
        zipf_s=1.1,
        tenants=(("limited", 1.0), ("strict", 1.0), ("bulk", 1.0)),
        seed=42,
    )
    queries = make_queries(spec, n_features)
    report = run_load(service, spec, queries, frontend=frontend)

    assert report.errors == 0, f"{report.errors} requests errored"
    assert report.offered == spec.workers * spec.requests_per_worker
    assert report.served + report.shed == report.offered

    def offered(tenant: str) -> int:
        return report.served_by_tenant.get(tenant, 0) + sum(
            report.shed_by_tenant.get(tenant, {}).values()
        )

    # Rate-limited tenant: the bucket bounds admissions at
    # burst + rate x wall, so with ~66 offered and a sub-minute run the
    # shed ratio is provably in (0.5, 1.0) — the bounds the issue gates.
    limited_offered = offered("limited")
    limited_shed = sum(report.shed_by_tenant.get("limited", {}).values())
    admit_bound = 5 + 1.0 * max(report.wall_s, 1.0)
    assert limited_offered - limited_shed <= admit_bound + 1, (
        f"token bucket over-admitted: {limited_offered - limited_shed} "
        f"admitted vs bound {admit_bound:.0f}"
    )
    limited_ratio = limited_shed / limited_offered
    assert 0.5 <= limited_ratio < 1.0, (
        f"limited tenant shed ratio {limited_ratio:.1%} outside [0.5, 1.0)"
    )
    assert set(report.shed_by_tenant.get("limited", {})) == {"rate-limit"}, (
        "limited tenant shed for reasons other than rate-limit: "
        f"{report.shed_by_tenant.get('limited')}"
    )
    # Unlimited tenants must sail through admission untouched.
    for tenant in ("strict", "bulk"):
        assert tenant not in report.shed_by_tenant, (
            f"{tenant} was shed: {report.shed_by_tenant.get(tenant)}"
        )

    # SLO accounting: strict's deadline is unmeetable, so every served
    # response is a miss — and misses are *served* (client saw scores).
    serving = obs.serving_report()
    strict = serving.tenant("strict")
    assert strict is not None, "strict tenant missing from serving report"
    assert strict.served == report.served_by_tenant["strict"]
    assert strict.slo_miss == strict.served, (
        f"strict tenant: {strict.slo_miss} SLO misses != "
        f"{strict.served} served under an unmeetable deadline"
    )
    bulk = serving.tenant("bulk")
    assert bulk is not None and bulk.slo_miss == 0, (
        "bulk tenant has no SLO configured but recorded misses"
    )
    print(
        f"admission: limited tenant shed {limited_ratio:.0%} "
        f"(rate-limit only), strict tenant {strict.slo_miss}/"
        f"{strict.served} SLO misses, bulk untouched"
    )
    return report, serving


def check_observability(report, serving) -> None:
    """The serving.* series must agree with the client-side report."""
    for tenant in ("limited", "strict", "bulk"):
        row = serving.tenant(tenant)
        assert row is not None, f"{tenant} missing from serving report"
        assert row.served == report.served_by_tenant.get(tenant, 0), (
            f"{tenant}: serving.latency_us count {row.served} != "
            f"client-side served {report.served_by_tenant.get(tenant, 0)}"
        )
        client_shed = sum(report.shed_by_tenant.get(tenant, {}).values())
        assert row.shed == client_shed, (
            f"{tenant}: serving.shed {row.shed} != client-side "
            f"{client_shed}"
        )
        if row.served:
            assert math.isfinite(row.p99_us) and row.p99_us > 0, (
                f"{tenant} served traffic but p99 is {row.p99_us}"
            )
    assert serving.batches > 0, "no coalesced batches recorded"
    rendered = serving.render()
    for tenant in ("limited", "strict", "bulk"):
        assert tenant in rendered, f"{tenant} missing from rendering"
    print(
        f"obs: {serving.batches} batches, "
        f"{serving.mean_batch_requests:.1f} requests/batch, "
        "per-tenant counts agree with the client-side report"
    )


def main() -> int:
    check_bit_identity()
    report, serving = check_admission_and_slo()
    check_observability(report, serving)
    print()
    print(report.render())
    print()
    print(serving.render())
    print(
        "serving-smoke: coalescing is bit-identical and tenancy "
        "admission/SLO accounting holds"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
