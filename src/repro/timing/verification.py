"""Calibration self-verification.

Deployments that persist predictors (``repro calibrate``) should confirm
they still describe the running code before trusting their
microseconds; this module re-measures the anchor quantities every cost
model was calibrated against and reports the drift.  The benchmark
harness asserts the same anchors; this is the runtime-queryable form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quickscorer.cost import QuickScorerCostModel
from repro.timing.calibration import calibrate_sparse_predictor
from repro.timing.gflops import GflopsSurface

#: (name, expected, tolerance as a fraction) per anchor.
QUICKSCORER_ANCHORS = (
    ("qs_878x64_us", 8.2, 0.05),
    ("qs_500x64_us", 4.9, 0.05),
    ("qs_300x64_us", 3.0, 0.05),
)
DENSE_ANCHORS = (
    ("gflops_low_k", 90.0, 0.12),
    ("gflops_mid_k", 110.0, 0.12),
    ("gflops_high_k", 130.0, 0.12),
)
SPARSE_ANCHORS = (("lc_over_lb", 2.0, 0.25),)


@dataclass(frozen=True)
class AnchorCheck:
    """One anchor's re-measured value against its calibration target."""

    name: str
    expected: float
    measured: float
    tolerance: float

    @property
    def drift(self) -> float:
        """Relative deviation from the expected value."""
        return abs(self.measured - self.expected) / self.expected

    @property
    def ok(self) -> bool:
        return self.drift <= self.tolerance


@dataclass(frozen=True)
class CalibrationReport:
    """All anchor checks of one verification pass."""

    checks: tuple[AnchorCheck, ...]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> list[AnchorCheck]:
        return [c for c in self.checks if not c.ok]

    def render(self) -> str:
        lines = ["Calibration verification:"]
        for c in self.checks:
            status = "ok" if c.ok else "DRIFTED"
            lines.append(
                f"  {c.name}: measured {c.measured:.3f} vs expected "
                f"{c.expected:.3f} ({c.drift:.1%} drift, tol "
                f"{c.tolerance:.0%}) -> {status}"
            )
        return "\n".join(lines)


def verify_calibration(
    *, include_dense: bool = True, include_sparse: bool = True
) -> CalibrationReport:
    """Re-measure every calibration anchor; see :class:`CalibrationReport`.

    The dense sweep takes a moment (it measures the GFLOPS surface);
    disable parts via the flags for a quick QuickScorer-only check.
    """
    checks: list[AnchorCheck] = []

    qs = QuickScorerCostModel()
    for (name, expected, tol), (trees, leaves) in zip(
        QUICKSCORER_ANCHORS, ((878, 64), (500, 64), (300, 64))
    ):
        checks.append(
            AnchorCheck(name, expected, qs.scoring_time_us(trees, leaves), tol)
        )

    if include_dense:
        zones = GflopsSurface.measure(batch_size=1000).zone_summary()
        measured = (
            zones.low_k_gflops, zones.mid_k_gflops, zones.high_k_gflops,
        )
        for (name, expected, tol), value in zip(DENSE_ANCHORS, measured):
            checks.append(AnchorCheck(name, expected, float(value), tol))

    if include_sparse:
        predictor = calibrate_sparse_predictor()
        (name, expected, tol), = SPARSE_ANCHORS
        checks.append(
            AnchorCheck(name, expected, predictor.l_c_over_l_b, tol)
        )

    return CalibrationReport(checks=tuple(checks))
