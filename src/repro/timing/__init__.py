"""Scoring-time predictors (the paper's central contribution).

Analytic — not learned — models that, given only a feed-forward
architecture (layer widths) and the sparsity structure of each layer,
estimate its CPU forward-pass time.  They let the pipeline train *only*
architectures that match a latency budget (Section 4):

* :mod:`repro.timing.gflops` — the empirical GFLOPS surface measured on
  the dense executor (Fig. 6's heat map with its three k-zones) and its
  lookup form.
* :mod:`repro.timing.dense_predictor` — Eq. 3: layer-by-layer matrix
  multiplication time from the GFLOPS lookup (Table 2).
* :mod:`repro.timing.calibration` — Section 4.4's derivation of
  ``L_a, L_b, L_c`` from runs on purpose-built matrices (single-column,
  diagonal, two-column) measured on the sparse executor.
* :mod:`repro.timing.sparse_predictor` — Eq. 5:
  ``T = |a_r| L_c + nnz L_a + |a_c| L_b`` (Table 4).
* :mod:`repro.timing.network_predictor` — the combined hybrid model for
  first-layer-sparse networks (Tables 7, 10, 11 and Fig. 11).
"""

from repro.timing.gflops import GflopsSurface, ZoneSummary
from repro.timing.dense_predictor import DenseTimePredictor, LayerTime
from repro.timing.sparse_predictor import SparseTimePredictor
from repro.timing.calibration import CalibrationMatrices, calibrate_sparse_predictor
from repro.timing.network_predictor import NetworkTimePredictor, NetworkTimeReport
from repro.timing.serialization import load_predictor, save_predictor
from repro.timing.verification import CalibrationReport, verify_calibration

__all__ = [
    "save_predictor",
    "load_predictor",
    "verify_calibration",
    "CalibrationReport",
    "GflopsSurface",
    "ZoneSummary",
    "DenseTimePredictor",
    "LayerTime",
    "SparseTimePredictor",
    "CalibrationMatrices",
    "calibrate_sparse_predictor",
    "NetworkTimePredictor",
    "NetworkTimeReport",
]
