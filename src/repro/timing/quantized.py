"""Timing model for quantized (int8) inference.

Completes the quantization future-work thread: given the fp32 timing
predictors, estimate the forward time of the same architecture executed
with int8 weights/activations.  Two effects are modeled:

* **SIMD widening** — an AVX2 register holds 4x more int8 lanes than
  fp32 lanes, so compute-bound layers approach a 4x ceiling; real
  engines reach a fraction of it (dequantization, requantization and
  saturating-add overheads), captured by ``efficiency``.
* **Memory-traffic shrinking** — weights occupy a quarter of the bytes,
  which is what the *sparse* kernel mostly pays for (B-row loads shrink
  too); its speed-up is therefore closer to the ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matmul.csr import CsrMatrix
from repro.timing.network_predictor import NetworkTimePredictor


@dataclass(frozen=True)
class QuantizedTimingModel:
    """Scales the fp32 predictors to int8 execution.

    Attributes
    ----------
    lane_ratio:
        SIMD lane multiplier (4 for fp32 -> int8).
    efficiency:
        Fraction of the lane-ratio ceiling a real int8 GEMM kernel
        sustains (oneDNN's int8 paths typically reach 50-70% of the
        ideal on dense layers).
    sparse_efficiency:
        Same for the sparse kernel, whose bandwidth-bound loads benefit
        more directly from the narrower operands.
    """

    predictor: NetworkTimePredictor
    lane_ratio: float = 4.0
    efficiency: float = 0.6
    sparse_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.lane_ratio <= 1:
            raise ValueError("lane_ratio must exceed 1")
        for name in ("efficiency", "sparse_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")

    @property
    def dense_speedup(self) -> float:
        """Effective dense-layer speed-up of int8 over fp32."""
        return 1.0 + (self.lane_ratio - 1.0) * self.efficiency

    @property
    def sparse_speedup(self) -> float:
        """Effective sparse-kernel speed-up of int8 over fp32."""
        return 1.0 + (self.lane_ratio - 1.0) * self.sparse_efficiency

    def dense_time_us(self, input_dim: int, hidden) -> float:
        """Predicted int8 µs/doc for a dense architecture."""
        fp32 = self.predictor.predict(input_dim, hidden)
        return fp32.dense_total_us_per_doc / self.dense_speedup

    def hybrid_time_us(
        self,
        input_dim: int,
        hidden,
        *,
        first_layer_matrix: CsrMatrix | None = None,
        first_layer_sparsity: float | None = None,
    ) -> float:
        """Predicted int8 µs/doc for a first-layer-sparse architecture."""
        fp32 = self.predictor.predict(
            input_dim,
            hidden,
            first_layer_matrix=first_layer_matrix,
            first_layer_sparsity=first_layer_sparsity,
        )
        if fp32.hybrid_total_us_per_doc is None:
            raise ValueError(
                "a first-layer matrix or sparsity is required for the "
                "hybrid estimate"
            )
        dense_part = fp32.pruned_forecast_us_per_doc / self.dense_speedup
        sparse_part = (
            fp32.sparse_first_layer_us_per_doc / self.sparse_speedup
        )
        return dense_part + sparse_part
