"""Sparse-dense multiplication time predictor (Section 4.4, Eq. 5).

The LIBXSMM kernel's cost decomposes over the *structure* of the sparse
operand A — known a priori, since A is the pruned weight matrix:

    T = |a_r| * L_c  +  nnz * L_a  +  |a_c| * L_b          (Eq. 5)

with ``|a_r|`` / ``|a_c|`` the active rows/columns, ``L_c`` the C-row
load+store, ``L_a`` the per-non-zero broadcast+FMA work, ``L_b`` the
first-touch load of a B row.  ``L_b`` and ``L_c`` are per-SIMD-vector
costs, so they scale with ``N_b = ceil(N / simd_lanes)``; the paper
verifies ``L_c ~= 2 L_b`` and that the model holds for N < 128, where B
stays cache-resident.  Coefficients come from
:func:`repro.timing.calibration.calibrate_sparse_predictor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PredictorError
from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.matmul.csr import CsrMatrix


@dataclass(frozen=True)
class SparseTimePredictor:
    """Eq. 5 with calibrated per-vector coefficients (nanoseconds).

    Attributes
    ----------
    l_c_vec_ns:
        C-row load+store per SIMD vector (charged once per active row).
    l_a_scalar_ns, l_a_vec_ns:
        Per-non-zero cost: the scalar broadcast plus one FMA per vector.
    l_b_vec_ns:
        First-touch B-row load per SIMD vector (once per active column).
    max_batch:
        Largest N the cache-residency assumption supports; the paper's
        measurements diverge from Eq. 5 at N >= 128.
    """

    l_c_vec_ns: float
    l_a_scalar_ns: float
    l_a_vec_ns: float
    l_b_vec_ns: float
    cpu: CpuSpec = I9_9900K
    max_batch: int = 127

    def n_vectors(self, batch: int) -> int:
        """``N_b``: SIMD vectors per row of B/C."""
        if batch <= 0:
            raise PredictorError(f"batch must be positive, got {batch}")
        return -(-batch // self.cpu.simd_lanes_f32)

    # ------------------------------------------------------------------
    def time_us(
        self,
        *,
        nnz: int,
        active_rows: int,
        active_cols: int,
        batch: int,
        strict: bool = True,
    ) -> float:
        """Predicted µs from the structural quantities of Eq. 5."""
        if nnz < 0 or active_rows < 0 or active_cols < 0:
            raise PredictorError("structural counts must be non-negative")
        if strict and batch > self.max_batch:
            raise PredictorError(
                f"batch {batch} breaks the cache-residency assumption "
                f"(valid for N <= {self.max_batch}); pass strict=False to "
                "extrapolate anyway"
            )
        nb = self.n_vectors(batch)
        total_ns = (
            active_rows * nb * self.l_c_vec_ns
            + nnz * (self.l_a_scalar_ns + nb * self.l_a_vec_ns)
            + active_cols * nb * self.l_b_vec_ns
        )
        return total_ns / 1000.0

    def time_for(self, a: CsrMatrix, batch: int, *, strict: bool = True) -> float:
        """Predicted µs for a concrete pruned weight matrix."""
        return self.time_us(
            nnz=a.nnz,
            active_rows=a.n_active_rows,
            active_cols=a.n_active_cols,
            batch=batch,
            strict=strict,
        )

    def worst_case_time_us(
        self, m: int, k: int, sparsity: float, batch: int
    ) -> float:
        """Eq. 5 with every row and column assumed active.

        The paper's Fig. 11 speed-up curves use this worst case: the
        number of active rows/columns equals the full dimension, and only
        nnz shrinks with sparsity.
        """
        if not 0.0 <= sparsity <= 1.0:
            raise PredictorError(f"sparsity must be in [0, 1], got {sparsity}")
        nnz = int(round((1.0 - sparsity) * m * k))
        return self.time_us(
            nnz=nnz,
            active_rows=min(m, nnz) if nnz else 0,
            active_cols=min(k, nnz) if nnz else 0,
            batch=batch,
            strict=False,
        )

    @property
    def l_c_over_l_b(self) -> float:
        """Empirical check of the paper's ``L_c = 2 L_b`` observation."""
        if self.l_b_vec_ns == 0:
            return float("inf")
        return self.l_c_vec_ns / self.l_b_vec_ns
