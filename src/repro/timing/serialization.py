"""Persisting calibrated time predictors.

Measuring the GFLOPS surface and calibrating the sparse coefficients
takes a moment; a deployment wants to do it once per machine and reuse
the result.  This module serializes both predictors (and the batch
context they were measured at) to a single JSON document.
"""

from __future__ import annotations

import json

import numpy as np

from repro.hardware.cpu import CpuSpec
from repro.timing.dense_predictor import DenseTimePredictor
from repro.timing.gflops import GflopsSurface
from repro.timing.network_predictor import NetworkTimePredictor
from repro.timing.sparse_predictor import SparseTimePredictor

FORMAT_VERSION = 1


def predictor_to_dict(predictor: NetworkTimePredictor) -> dict:
    """JSON-serializable snapshot of a calibrated predictor pair."""
    surface = predictor.dense.surface
    sparse = predictor.sparse
    return {
        "version": FORMAT_VERSION,
        "dense": {
            "m_grid": surface.m_grid.tolist(),
            "k_grid": surface.k_grid.tolist(),
            "gflops": surface.gflops.tolist(),
            "batch_size": surface.batch_size,
            "bias_relu_ns_per_neuron": predictor.dense.bias_relu_ns_per_neuron,
            "first_layer_output_ns_per_value": (
                predictor.dense.first_layer_output_ns_per_value
            ),
        },
        "sparse": {
            "l_c_vec_ns": sparse.l_c_vec_ns,
            "l_a_scalar_ns": sparse.l_a_scalar_ns,
            "l_a_vec_ns": sparse.l_a_vec_ns,
            "l_b_vec_ns": sparse.l_b_vec_ns,
            "max_batch": sparse.max_batch,
            "simd_lanes": sparse.cpu.simd_lanes_f32,
        },
        "sparse_batch": predictor.sparse_batch,
    }


def predictor_from_dict(data: dict) -> NetworkTimePredictor:
    """Inverse of :func:`predictor_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported predictor format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    d = data["dense"]
    surface = GflopsSurface(
        np.asarray(d["m_grid"]),
        np.asarray(d["k_grid"]),
        np.asarray(d["gflops"]),
        batch_size=int(d["batch_size"]),
    )
    dense = DenseTimePredictor(
        surface,
        bias_relu_ns_per_neuron=float(d["bias_relu_ns_per_neuron"]),
        first_layer_output_ns_per_value=float(
            d["first_layer_output_ns_per_value"]
        ),
    )
    s = data["sparse"]
    cpu = CpuSpec(simd_bits=32 * int(s["simd_lanes"]))
    sparse = SparseTimePredictor(
        l_c_vec_ns=float(s["l_c_vec_ns"]),
        l_a_scalar_ns=float(s["l_a_scalar_ns"]),
        l_a_vec_ns=float(s["l_a_vec_ns"]),
        l_b_vec_ns=float(s["l_b_vec_ns"]),
        cpu=cpu,
        max_batch=int(s["max_batch"]),
    )
    return NetworkTimePredictor(
        dense, sparse, sparse_batch=int(data["sparse_batch"])
    )


def save_predictor(predictor: NetworkTimePredictor, path) -> None:
    """Write a calibrated predictor pair to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(predictor_to_dict(predictor), handle)


def load_predictor(path) -> NetworkTimePredictor:
    """Load a predictor pair written by :func:`save_predictor`."""
    with open(path, "r", encoding="utf-8") as handle:
        return predictor_from_dict(json.load(handle))
