"""Empirical GFLOPS surface over matrix shapes.

Section 4.2 of the paper sweeps oneDNN over (m, k) grids at fixed batch
size n, observes that throughput varies strongly with shape (Figs. 4-5),
and synthesizes the measurements into a lookup — the Fig. 6 heat map
whose k-axis partitions into three performance zones (~90 / ~110 / ~130
GFLOPS).  This module performs the same sweep on the simulated dense
executor and exposes both the raw surface (bilinear lookup in log-shape
space) and the zone summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matmul.dense import DenseGemmExecutor

DEFAULT_M_GRID = (16, 25, 50, 75, 100, 150, 200, 300, 400, 500, 750, 1000, 1500)
DEFAULT_K_GRID = (16, 32, 64, 96, 128, 136, 192, 220, 256, 384, 512, 768, 1024)


@dataclass(frozen=True)
class ZoneSummary:
    """The three k-zones of Fig. 6 with their mean throughput."""

    low_k_gflops: float  # k < 128
    mid_k_gflops: float  # 128 <= k < 512
    high_k_gflops: float  # k >= 512

    def zone_gflops(self, k: int) -> float:
        if k >= 512:
            return self.high_k_gflops
        if k >= 128:
            return self.mid_k_gflops
        return self.low_k_gflops


class GflopsSurface:
    """Measured GFLOPS as a function of (m, k) at a fixed batch size n."""

    def __init__(
        self,
        m_grid: np.ndarray,
        k_grid: np.ndarray,
        gflops: np.ndarray,
        batch_size: int,
    ) -> None:
        self.m_grid = np.asarray(m_grid, dtype=np.float64)
        self.k_grid = np.asarray(k_grid, dtype=np.float64)
        self.gflops = np.asarray(gflops, dtype=np.float64)
        self.batch_size = batch_size
        if self.gflops.shape != (len(self.m_grid), len(self.k_grid)):
            raise ValueError(
                "gflops grid must have shape (len(m_grid), len(k_grid))"
            )
        if np.any(np.diff(self.m_grid) <= 0) or np.any(np.diff(self.k_grid) <= 0):
            raise ValueError("grids must be strictly increasing")

    # ------------------------------------------------------------------
    @classmethod
    def measure(
        cls,
        executor: DenseGemmExecutor | None = None,
        *,
        batch_size: int = 1000,
        m_grid=DEFAULT_M_GRID,
        k_grid=DEFAULT_K_GRID,
    ) -> "GflopsSurface":
        """Sweep the executor over the grid (the paper's Fig. 6 run)."""
        executor = executor or DenseGemmExecutor()
        m_grid = np.asarray(sorted(m_grid))
        k_grid = np.asarray(sorted(k_grid))
        grid = np.empty((len(m_grid), len(k_grid)))
        for i, m in enumerate(m_grid):
            for j, k in enumerate(k_grid):
                grid[i, j] = executor.measure_gflops(int(m), batch_size, int(k))
        return cls(m_grid, k_grid, grid, batch_size)

    # ------------------------------------------------------------------
    def lookup(self, m: int, k: int) -> float:
        """Bilinear interpolation in log-shape space, clamped at the edges."""
        if m <= 0 or k <= 0:
            raise ValueError(f"m and k must be positive, got {(m, k)}")

        def interp_axis(grid: np.ndarray, value: float) -> tuple[int, int, float]:
            v = float(np.clip(value, grid[0], grid[-1]))
            j = int(np.searchsorted(grid, v, side="right") - 1)
            j = min(max(j, 0), len(grid) - 2)
            lo, hi = np.log(grid[j]), np.log(grid[j + 1])
            w = 0.0 if hi == lo else (np.log(v) - lo) / (hi - lo)
            return j, j + 1, w

        i0, i1, wm = interp_axis(self.m_grid, m)
        j0, j1, wk = interp_axis(self.k_grid, k)
        g = self.gflops
        top = g[i0, j0] * (1 - wk) + g[i0, j1] * wk
        bot = g[i1, j0] * (1 - wk) + g[i1, j1] * wk
        return float(top * (1 - wm) + bot * wm)

    def zone_summary(self, *, min_m: int = 200) -> ZoneSummary:
        """Average throughput of the three k-zones (rows with m >= min_m)."""
        rows = self.m_grid >= min_m
        if not rows.any():
            rows = np.ones(len(self.m_grid), dtype=bool)
        sub = self.gflops[rows]

        def zone_mean(mask: np.ndarray) -> float:
            if not mask.any():
                return float("nan")
            return float(sub[:, mask].mean())

        return ZoneSummary(
            low_k_gflops=zone_mean(self.k_grid < 128),
            mid_k_gflops=zone_mean((self.k_grid >= 128) & (self.k_grid < 512)),
            high_k_gflops=zone_mean(self.k_grid >= 512),
        )

    def heatmap_rows(self) -> list[tuple[int, int, float]]:
        """Flat (m, k, gflops) triples for rendering Fig. 6."""
        out = []
        for i, m in enumerate(self.m_grid):
            for j, k in enumerate(self.k_grid):
                out.append((int(m), int(k), float(self.gflops[i, j])))
        return out
