"""Whole-network scoring-time prediction (Sections 5.2 and 6).

Combines the dense predictor (Eq. 3 over the GFLOPS surface) and the
sparse predictor (Eq. 5) into the hybrid model the paper designs with:
a network whose *first* layer has been pruned to high sparsity runs the
first layer through the sparse kernel and the remaining layers densely.

Tables 10-11 of the paper forecast a pruned model's time by subtracting
the dense first layer's contribution from the total, arguing the sparse
residual is negligible at >= 95% sparsity; this module provides both that
forecast (:meth:`NetworkTimePredictor.pruned_forecast_us`) and the full
hybrid estimate with the sparse layer's Eq. 5 cost included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matmul.blocks import BlockCsrMatrix
from repro.matmul.csr import CsrMatrix
from repro.timing.calibration import calibrate_sparse_predictor
from repro.timing.dense_predictor import DenseTimePredictor, LayerTime
from repro.timing.sparse_predictor import SparseTimePredictor

#: Gather + panel-bookkeeping overhead of block-SpMM over a dense GEMM
#: at the gathered (m x k_eff) shape.  The block kernel runs the same
#: GEMM micro-kernel after compacting the active columns, so its cost is
#: the dense cost of the compacted shape plus the gather traffic.
BLOCK_KERNEL_OVERHEAD = 1.25


@dataclass(frozen=True)
class NetworkTimeReport:
    """Predicted timing of one architecture."""

    input_dim: int
    layers: tuple[int, ...]
    batch_size: int
    layer_times: tuple[LayerTime, ...]
    dense_total_us_per_doc: float
    first_layer_impact_pct: float
    sparse_first_layer_us_per_doc: float | None
    hybrid_total_us_per_doc: float | None
    pruned_forecast_us_per_doc: float

    def describe(self) -> str:
        """Architecture in the paper's ``a x b x c`` notation."""
        return "x".join(str(w) for w in self.layers)


class NetworkTimePredictor:
    """Hybrid dense + sparse scoring-time predictor for FFN rankers."""

    def __init__(
        self,
        dense: DenseTimePredictor | None = None,
        sparse: SparseTimePredictor | None = None,
        *,
        sparse_batch: int = 64,
    ) -> None:
        self.dense = dense or DenseTimePredictor()
        self.sparse = sparse or calibrate_sparse_predictor()
        self.sparse_batch = sparse_batch

    # ------------------------------------------------------------------
    def predict(
        self,
        input_dim: int,
        layers,
        *,
        first_layer_sparsity: float | None = None,
        first_layer_matrix: CsrMatrix | None = None,
    ) -> NetworkTimeReport:
        """Full timing report for an architecture.

        Parameters
        ----------
        first_layer_sparsity:
            Planned sparsity of the first layer; uses the worst-case
            (all rows/columns active) Eq. 5 estimate.
        first_layer_matrix:
            The actual pruned weight matrix; uses its measured structure
            instead of the worst case.  Takes precedence.
        """
        layer_times = tuple(self.dense.layer_times(input_dim, layers))
        batch = self.dense.batch_size
        total_us = sum(lt.time_us for lt in layer_times)
        dense_per_doc = total_us / batch
        first_share = layer_times[0].time_us / total_us
        forecast = dense_per_doc * (1.0 - first_share)

        sparse_per_doc = None
        hybrid = None
        if first_layer_matrix is not None:
            sparse_us = self.sparse.time_for(
                first_layer_matrix, self.sparse_batch
            )
            sparse_per_doc = sparse_us / self.sparse_batch
        elif first_layer_sparsity is not None:
            m = layer_times[0].out_width
            k = layer_times[0].in_width
            sparse_us = self.sparse.worst_case_time_us(
                m, k, first_layer_sparsity, self.sparse_batch
            )
            sparse_per_doc = sparse_us / self.sparse_batch
        if sparse_per_doc is not None:
            hybrid = forecast + sparse_per_doc

        return NetworkTimeReport(
            input_dim=input_dim,
            layers=tuple(int(v) for v in layers),
            batch_size=batch,
            layer_times=layer_times,
            dense_total_us_per_doc=dense_per_doc,
            first_layer_impact_pct=100.0 * first_share,
            sparse_first_layer_us_per_doc=sparse_per_doc,
            hybrid_total_us_per_doc=hybrid,
            pruned_forecast_us_per_doc=forecast,
        )

    def layer_kernel_times(self, matrix: CsrMatrix) -> tuple[float, float]:
        """Per-document dense-vs-sparse cost of one weight matrix.

        The arbitration rule behind ahead-of-time kernel selection
        (:func:`repro.runtime.compile.compile_network`): the dense side
        prices ``2mk`` FLOPs at the measured GFLOPS of the layer's
        shape (Eq. 3's per-layer term), the sparse side runs the
        matrix's measured structure through Eq. 5 at the calibrated
        ``sparse_batch``.  Returns ``(dense_us, sparse_us)`` per doc.
        """
        m, k = matrix.shape
        dense_us = 2.0 * m * k / self.dense.surface.lookup(m, k) / 1000.0
        sparse_us = (
            self.sparse.time_for(matrix, self.sparse_batch, strict=False)
            / self.sparse_batch
        )
        return dense_us, sparse_us

    def block_kernel_time(self, block: BlockCsrMatrix) -> float:
        """Per-document cost of the block-SpMM kernel for ``block``.

        Blocked SpMM gathers the stored tiles' columns into a compact
        ``k_eff = stored_cells / m`` panel and runs the dense GEMM
        micro-kernel on it, so the cost is the GFLOPS-surface dense
        price of the compacted ``(m, k_eff)`` shape times the measured
        gather overhead :data:`BLOCK_KERNEL_OVERHEAD`.
        """
        m, _ = block.shape
        k_eff = max(1, -(-block.stored_cells // m))
        gflops = self.dense.surface.lookup(m, k_eff)
        return BLOCK_KERNEL_OVERHEAD * 2.0 * m * k_eff / gflops / 1000.0

    def quantized_kernel_time(self, m: int, k: int, bits: int) -> float:
        """Per-document cost of an int-``bits`` integer GEMM layer.

        Prices the layer's ``2mk`` FLOPs at the dense GFLOPS surface
        and applies the SIMD lane-ratio speedup of
        :class:`repro.timing.quantized.QuantizedTimingModel` — the same
        scaling the pricing layer already uses for quantized networks,
        so plans and ``price()`` agree.
        """
        from repro.timing.quantized import QuantizedTimingModel

        if bits not in (8, 16):
            raise ValueError(f"bits must be 8 or 16, got {bits}")
        model = QuantizedTimingModel(self, lane_ratio=32.0 / bits)
        dense_us = 2.0 * m * k / self.dense.surface.lookup(m, k) / 1000.0
        return dense_us / model.dense_speedup

    def layer_kernel_times_all(
        self, matrix: CsrMatrix, *, block: BlockCsrMatrix | None = None
    ) -> dict[str, float]:
        """Per-document cost of every compiled kernel for one layer.

        The full arbitration table behind
        :func:`repro.runtime.compile.compile_network`: scalar
        dense/sparse from :meth:`layer_kernel_times`, int8/int16 from
        :meth:`quantized_kernel_time`, and — when a regrouped ``block``
        matrix is supplied — block-SpMM from :meth:`block_kernel_time`.
        Keys are the compiled kernel names (``dense-gemm``,
        ``csr-spmm``, ``block-spmm``, ``int8-gemm``, ``int16-gemm``).
        """
        m, k = matrix.shape
        dense_us, sparse_us = self.layer_kernel_times(matrix)
        times = {
            "dense-gemm": dense_us,
            "csr-spmm": sparse_us,
            "int8-gemm": self.quantized_kernel_time(m, k, 8),
            "int16-gemm": self.quantized_kernel_time(m, k, 16),
        }
        if block is not None:
            times["block-spmm"] = self.block_kernel_time(block)
        return times

    def pruned_forecast_us(self, input_dim: int, layers) -> float:
        """Tables 10-11: total minus the dense first layer."""
        return self.predict(input_dim, layers).pruned_forecast_us_per_doc

    def sparsity_speedup(
        self, m: int, k: int, sparsity: float, *, batch: int | None = None
    ) -> float:
        """Fig. 11: dense-vs-sparse speed-up of one layer at a sparsity.

        Worst-case structure (all rows and columns active), as in the
        paper's figure.
        """
        batch = batch or self.sparse_batch
        dense_us = 2.0 * m * k * batch / self.dense.surface.lookup(m, k) / 1000.0
        sparse_us = self.sparse.worst_case_time_us(m, k, sparsity, batch)
        if sparse_us <= 0:
            return float("inf")
        return dense_us / sparse_us
