"""Calibration-by-difference of the sparse predictor (Section 4.4).

The elementary costs ``L_a, L_b, L_c`` of Eq. 5 cannot be timed directly;
the paper derives them by measuring purpose-built matrices whose cost
expressions differ in exactly one term:

* ``A_c``  — all non-zeros in a single column (one per row):
  ``T(A_c)  = m L_c + nnz L_a + 1 L_b``
* ``A_rd`` — one non-zero per row *and* per column (a permutation):
  ``T(A_rd) = m L_c + nnz L_a + k L_b``
* ``A_2c`` — two columns, two non-zeros per row:
  ``T(A_2c) = m L_c + 2 nnz L_a + 2 L_b``

so ``L_b = (T(A_rd) - T(A_c)) / (k - 1)``, then
``L_a = (T(A_2c) - T(A_c) - L_b) / nnz``, then ``L_c`` from ``T(A_c)``.
Here the "measurements" run on the simulated LIBXSMM executor; as in the
paper, shapes m = k in {200, 300, 400, 500} and batches N in {16, 32, 64}
are averaged, per-vector costs are obtained by normalizing by
``N_b``, and the N-dependence of ``L_a`` (a scalar broadcast plus one FMA
per vector) is recovered by linear regression over ``N_b``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CalibrationError
from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.matmul.csr import CsrMatrix
from repro.matmul.sparse import SparseGemmExecutor
from repro.timing.sparse_predictor import SparseTimePredictor
from repro.utils.rng import ensure_rng

DEFAULT_SHAPES = (200, 300, 400, 500)
DEFAULT_BATCHES = (16, 32, 64)


@dataclass(frozen=True)
class CalibrationMatrices:
    """The three probe matrices for one m = k shape."""

    single_column: CsrMatrix  # A_c
    row_diagonal: CsrMatrix  # A_rd
    two_columns: CsrMatrix  # A_2c

    @classmethod
    def build(
        cls, size: int, seed: int | np.random.Generator | None = 0
    ) -> "CalibrationMatrices":
        """Construct A_c, A_rd and A_2c of shape ``size x size``."""
        if size < 4:
            raise CalibrationError(f"size must be >= 4, got {size}")
        rng = ensure_rng(seed)
        m = k = size

        a_c = np.zeros((m, k))
        j_star = k // 2
        a_c[:, j_star] = rng.uniform(0.5, 1.5, size=m)

        a_rd = np.zeros((m, k))
        perm = rng.permutation(k)
        a_rd[np.arange(m), perm] = rng.uniform(0.5, 1.5, size=m)

        a_2c = np.zeros((m, k))
        j1, j2 = k // 3, 2 * k // 3
        a_2c[:, j1] = rng.uniform(0.5, 1.5, size=m)
        a_2c[:, j2] = rng.uniform(0.5, 1.5, size=m)

        return cls(
            single_column=CsrMatrix.from_dense(a_c),
            row_diagonal=CsrMatrix.from_dense(a_rd),
            two_columns=CsrMatrix.from_dense(a_2c),
        )


def _measure_ns(
    executor: SparseGemmExecutor,
    a: CsrMatrix,
    batch: int,
    rng: np.random.Generator,
) -> float:
    b = rng.normal(size=(a.shape[1], batch))
    _, report = executor.multiply(a, b, compute=False)
    return report.time_ns


def calibrate_sparse_predictor(
    executor: SparseGemmExecutor | None = None,
    *,
    shapes=DEFAULT_SHAPES,
    batches=DEFAULT_BATCHES,
    cpu: CpuSpec = I9_9900K,
    seed: int | np.random.Generator | None = 0,
) -> SparseTimePredictor:
    """Derive ``L_a, L_b, L_c`` on the sparse executor and build Eq. 5.

    Raises
    ------
    CalibrationError
        If the derived coefficients are non-positive (which would mean the
        probe measurements are inconsistent).
    """
    executor = executor or SparseGemmExecutor(cpu)
    rng = ensure_rng(seed)
    lanes = cpu.simd_lanes_f32

    l_b_vec_samples: list[float] = []
    l_c_vec_samples: list[float] = []
    l_a_by_nb: dict[int, list[float]] = {}

    for size in shapes:
        probes = CalibrationMatrices.build(size, rng)
        m = k = size
        nnz = m
        for batch in batches:
            nb = -(-batch // lanes)
            t_c = _measure_ns(executor, probes.single_column, batch, rng)
            t_rd = _measure_ns(executor, probes.row_diagonal, batch, rng)
            t_2c = _measure_ns(executor, probes.two_columns, batch, rng)

            l_b = (t_rd - t_c) / (k - 1)
            l_a = (t_2c - t_c - l_b) / nnz
            l_c = (t_c - nnz * l_a - l_b) / m

            l_b_vec_samples.append(l_b / nb)
            l_c_vec_samples.append(l_c / nb)
            l_a_by_nb.setdefault(nb, []).append(l_a)

    l_b_vec = float(np.mean(l_b_vec_samples))
    l_c_vec = float(np.mean(l_c_vec_samples))

    # L_a(N) = scalar broadcast + N_b * per-vector FMA: linear fit over N_b.
    nbs = np.asarray(sorted(l_a_by_nb), dtype=np.float64)
    la_means = np.asarray([np.mean(l_a_by_nb[int(nb)]) for nb in nbs])
    if len(nbs) >= 2:
        slope, intercept = np.polyfit(nbs, la_means, 1)
    else:
        slope, intercept = la_means[0] / nbs[0], 0.0
    l_a_scalar = float(max(intercept, 0.0))
    l_a_vec = float(slope)

    if l_b_vec <= 0 or l_c_vec <= 0 or l_a_vec <= 0:
        raise CalibrationError(
            "calibration produced non-positive coefficients: "
            f"l_b={l_b_vec:.4f}, l_c={l_c_vec:.4f}, l_a_vec={l_a_vec:.4f}"
        )

    return SparseTimePredictor(
        l_c_vec_ns=l_c_vec,
        l_a_scalar_ns=l_a_scalar,
        l_a_vec_ns=l_a_vec,
        l_b_vec_ns=l_b_vec,
        cpu=cpu,
    )
