"""Dense forward-pass time predictor (Section 4.2, Eq. 3).

The forward pass of a feed-forward network with layer widths
``l_1 .. l_d`` on ``f`` input features costs, per document,

    T ~= t_m * ( f*l_1 + sum_i l_i * l_{i-1} )            (Eq. 3)

where the multiplication time ``t_m = 1 / GFLOPS`` is *shape dependent*:
the predictor looks each layer's (m = l_i, k = l_{i-1}) up in the
measured GFLOPS surface rather than using one hardware constant — the
paper's key observation (Figs. 4-6).  Bias additions and ReLU
activations contribute ``(t_a + t_r) * sum_i l_i``, which Eq. 3 drops as
negligible; the predictor carries them optionally for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ArchitectureError
from repro.timing.gflops import GflopsSurface


def validate_architecture(input_dim: int, layers) -> tuple[int, ...]:
    """Validate and normalize a layer-width specification."""
    dims = tuple(int(v) for v in layers)
    if input_dim <= 0:
        raise ArchitectureError(f"input_dim must be positive, got {input_dim}")
    if not dims:
        raise ArchitectureError("a network needs at least one layer")
    if any(d <= 0 for d in dims):
        raise ArchitectureError(f"layer widths must be positive, got {dims}")
    return dims


@dataclass(frozen=True)
class LayerTime:
    """Predicted cost of one fully-connected layer."""

    index: int  # 1-based, as in the paper's Table 7
    in_width: int  # k of the weight matrix
    out_width: int  # m of the weight matrix
    gflops: float
    time_us: float  # for the whole batch

    @property
    def flops(self) -> int:
        return 2 * self.in_width * self.out_width


class DenseTimePredictor:
    """Per-architecture forward-time estimates from a GFLOPS surface.

    Parameters
    ----------
    surface:
        Measured :class:`GflopsSurface`; built once per (CPU, batch size).
    bias_relu_ns_per_neuron:
        Optional ``t_a + t_r`` term of Eq. 3 (per output neuron per
        document); the paper argues it is negligible and drops it.
    """

    def __init__(
        self,
        surface: GflopsSurface | None = None,
        *,
        batch_size: int = 1000,
        bias_relu_ns_per_neuron: float = 0.0,
        first_layer_output_ns_per_value: float = 0.6,
    ) -> None:
        if surface is None:
            surface = GflopsSurface.measure(batch_size=batch_size)
        self.surface = surface
        self.batch_size = surface.batch_size
        self.bias_relu_ns_per_neuron = bias_relu_ns_per_neuron
        # Table 7's observation: applying bias and ReLU6 to the *first*
        # layer's output writes it through the cache (where it then stays
        # for the second layer), so the first layer carries an extra
        # per-output-value cost that later layers do not pay.
        self.first_layer_output_ns_per_value = first_layer_output_ns_per_value

    # ------------------------------------------------------------------
    def layer_times(self, input_dim: int, layers) -> list[LayerTime]:
        """Per-layer batch times for architecture ``input_dim -> layers``."""
        dims = (input_dim,) + validate_architecture(input_dim, layers)
        n = self.batch_size
        out: list[LayerTime] = []
        for i in range(1, len(dims)):
            k, m = dims[i - 1], dims[i]
            gflops = self.surface.lookup(m, k)
            matmul_us = 2.0 * m * k * n / gflops / 1000.0
            extra_us = self.bias_relu_ns_per_neuron * m * n / 1000.0
            if i == 1:
                extra_us += self.first_layer_output_ns_per_value * m * n / 1000.0
            out.append(
                LayerTime(
                    index=i,
                    in_width=k,
                    out_width=m,
                    gflops=gflops,
                    time_us=matmul_us + extra_us,
                )
            )
        return out

    def forward_time_us_per_doc(self, input_dim: int, layers) -> float:
        """Predicted scoring time per document (the paper's µs/doc)."""
        total = sum(lt.time_us for lt in self.layer_times(input_dim, layers))
        return total / self.batch_size

    def layer_breakdown(self, input_dim: int, layers) -> list[float]:
        """Relative execution time per layer, in percent (Table 7)."""
        times = [lt.time_us for lt in self.layer_times(input_dim, layers)]
        total = sum(times)
        return [100.0 * t / total for t in times]

    def first_layer_impact(self, input_dim: int, layers) -> float:
        """Fraction (%) of the total time spent in the first layer."""
        return self.layer_breakdown(input_dim, layers)[0]
