"""Command-line interface.

Exposes the library's pipeline as subcommands over files, so the system
can be driven without writing Python:

* ``repro generate``      — write a synthetic LtR collection (SVMLight).
* ``repro train-forest``  — train LambdaMART on an SVMLight file.
* ``repro distill``       — distill a student MLP from a saved forest.
* ``repro prune``         — first-layer prune + fine-tune a student.
* ``repro score``         — score an SVMLight file with a saved model.
* ``repro calibrate``     — measure + save the time predictors.
* ``repro predict-time``  — price an architecture with saved predictors.
* ``repro compile``       — compile a network into an inference plan and
  print chosen kernel per layer with predicted vs measured µs/doc.
* ``repro stats``         — serve a probe workload, report spans + drift.
* ``repro resilience``    — fault-inject a backend behind a fallback
  chain and report degradation, breaker states and retry counts.
* ``repro cascade``       — probe a declarative budgeted ranking
  pipeline: per-stage survivor funnel, measured µs/query and NDCG@10
  against each single-stage baseline, budget early-exits.
* ``repro throughput``    — sweep workers x shard size over the sharded
  scorer and print docs/sec plus cache hit ratios.
* ``repro serve``         — answer a burst of concurrent probe requests
  through the asyncio front-end, verify coalesced scores are
  bit-identical to sequential ones, and print the serving report.
* ``repro loadtest``      — replay a seeded multi-tenant load scenario
  (Zipfian popularity, bursty open or closed-loop arrivals) against the
  front-end and report shed/SLO/latency per tenant.
* ``repro trace``         — run a traced probe load (or read a flight
  dump) and print per-request stage timelines by trace id.
* ``repro top``           — live text dashboard over a replayed load:
  serving table, SLO burn rates and the flight-recorder tail.

Every command is a thin wrapper over the public API; see ``--help`` of
each subcommand.  Global flags: ``--trace`` prints the span tree and the
predicted-vs-measured drift report after any command; ``--verbose`` /
``--quiet`` tune the structured log output.
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np

from repro import obs
from repro.datasets import (
    load_svmlight,
    make_istella_s_like,
    make_msn30k_like,
    save_svmlight,
    train_validation_test_split,
)
from repro.distill import DistillationConfig, Distiller
from repro.distill.student import DistilledStudent
from repro.forest import GradientBoostingConfig, LambdaMartRanker, TreeEnsemble
from repro.metrics import mean_average_precision, mean_ndcg
from repro.pruning import FirstLayerPruner, FirstLayerPruningConfig
from repro.runtime import (
    ForestShape,
    NetworkShape,
    PricingContext,
    make_scorer,
    network_report,
    price,
)
from repro.timing import NetworkTimePredictor, load_predictor, save_predictor

log = logging.getLogger("repro.cli")


def _configure_logging(*, verbose: bool = False, quiet: bool = False) -> None:
    """Point the ``repro`` logger at stdout with a level and format.

    Default output is bare messages (what ``print`` produced before);
    ``--verbose`` switches to a structured ``time level logger: message``
    format at DEBUG, ``--quiet`` raises the threshold to WARNING.  The
    handler is rebuilt on every call so redirected ``sys.stdout`` (tests,
    pipes) is honoured.
    """
    root = logging.getLogger("repro")
    if verbose:
        level, fmt = logging.DEBUG, "%(asctime)s %(levelname)s %(name)s: %(message)s"
    elif quiet:
        level, fmt = logging.WARNING, "%(message)s"
    else:
        level, fmt = logging.INFO, "%(message)s"
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter(fmt))
    root.handlers = [handler]
    root.setLevel(level)
    root.propagate = False


def _parse_hidden(text: str) -> tuple[int, ...]:
    try:
        hidden = tuple(int(part) for part in text.lower().split("x"))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"architecture must look like 400x200x100, got {text!r}"
        ) from exc
    if not hidden or any(h <= 0 for h in hidden):
        raise argparse.ArgumentTypeError(
            f"architecture widths must be positive, got {text!r}"
        )
    return hidden


def _parse_block_shape(text: str) -> tuple[int, int]:
    parts = text.lower().split("x")
    try:
        shape = tuple(int(part) for part in parts)
    except ValueError:
        shape = ()
    if len(shape) != 2 or any(v <= 0 for v in shape):
        raise argparse.ArgumentTypeError(
            f"block shape must look like 64x8, got {text!r}"
        )
    return shape


# ----------------------------------------------------------------------
# Subcommand implementations (each returns a process exit code)
# ----------------------------------------------------------------------
def cmd_generate(args) -> int:
    """Write a synthetic LtR collection in SVMLight format."""
    maker = make_msn30k_like if args.flavour == "msn30k" else make_istella_s_like
    dataset = maker(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    save_svmlight(dataset, args.output)
    log.info("wrote %s -> %s", dataset.summary(), args.output)
    return 0


def cmd_train_forest(args) -> int:
    """Train a LambdaMART ensemble on an SVMLight file."""
    dataset = load_svmlight(args.data)
    train, vali, test = train_validation_test_split(dataset, seed=args.seed)
    config = GradientBoostingConfig(
        n_trees=args.trees,
        max_leaves=args.leaves,
        learning_rate=args.learning_rate,
        min_data_in_leaf=args.min_data_in_leaf,
    )
    forest = LambdaMartRanker(config, seed=args.seed).fit(train, vali)
    forest.save(args.output)
    ndcg = mean_ndcg(test, forest.predict(test.features), 10)
    log.info(
        "trained %s; test NDCG@10 = %.4f; saved -> %s",
        forest.describe(), ndcg, args.output,
    )
    return 0


def cmd_distill(args) -> int:
    """Distill a student MLP from a saved forest."""
    forest = TreeEnsemble.load(args.forest)
    dataset = load_svmlight(args.data, n_features=forest.n_features)
    train, _, test = train_validation_test_split(dataset, seed=args.seed)
    config = DistillationConfig(
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        lr_milestones=tuple(
            int(round(args.epochs * f)) for f in (0.6, 0.85)
        ),
    )
    student = Distiller(config, seed=args.seed).distill(
        forest, train, hidden=args.architecture
    )
    student.save(args.output)
    ndcg = mean_ndcg(test, student.predict(test.features), 10)
    log.info(
        "distilled %s from %s; test NDCG@10 = %.4f; saved -> %s",
        student.describe(), forest.describe(), ndcg, args.output,
    )
    return 0


def cmd_prune(args) -> int:
    """First-layer prune and fine-tune a saved student."""
    forest = TreeEnsemble.load(args.forest)
    dataset = load_svmlight(args.data, n_features=forest.n_features)
    train, _, test = train_validation_test_split(dataset, seed=args.seed)
    student = DistilledStudent.load(args.network)
    config = FirstLayerPruningConfig(
        sensitivity=args.sensitivity,
        epochs_prune=args.epochs_prune,
        epochs_finetune=args.epochs_finetune,
        lr_milestones=(),
    )
    pruned = FirstLayerPruner(config, seed=args.seed).prune(
        student, forest, train
    )
    pruned.save(args.output)
    ndcg = mean_ndcg(test, pruned.predict(test.features), 10)
    log.info(
        "pruned first layer to %.1f%% sparsity; test NDCG@10 = %.4f; "
        "saved -> %s",
        pruned.first_layer_sparsity() * 100.0, ndcg, args.output,
    )
    return 0


def cmd_score(args) -> int:
    """Score an SVMLight file with a saved forest or network."""
    if args.forest:
        model = TreeEnsemble.load(args.forest)
    else:
        model = DistilledStudent.load(args.network)
    # Model dispatch lives in the runtime registry, not here: any model
    # family with a registered backend scores through the same path.
    # Pricing stays lazy, so no predictor calibration is paid to score.
    scorer = make_scorer(model)
    dataset = load_svmlight(args.data, n_features=scorer.input_dim)
    scores = scorer.score(dataset.features)
    np.savetxt(args.output, scores, fmt="%.6g")
    ndcg = mean_ndcg(dataset, scores, 10)
    map_score = mean_average_precision(dataset, scores)
    log.info(
        "scored %d docs with %s; NDCG@10 = %.4f, MAP = %.4f; scores -> %s",
        dataset.n_docs, scorer.describe(), ndcg, map_score, args.output,
    )
    return 0


def cmd_calibrate(args) -> int:
    """Measure the GFLOPS surface, calibrate Eq. 5, save both."""
    predictor = NetworkTimePredictor()
    save_predictor(predictor, args.output)
    zones = predictor.dense.surface.zone_summary()
    log.info(
        "calibrated predictors (zones %.0f/%.0f/%.0f GFLOPS, "
        "L_c/L_b = %.2f); saved -> %s",
        zones.low_k_gflops, zones.mid_k_gflops, zones.high_k_gflops,
        predictor.sparse.l_c_over_l_b, args.output,
    )
    return 0


def cmd_verify(args) -> int:
    """Re-measure the calibration anchors and report drift."""
    from repro.timing import verify_calibration

    report = verify_calibration(include_dense=not args.quick,
                                include_sparse=not args.quick)
    log.info("%s", report.render())
    return 0 if report.ok else 1


def cmd_predict_time(args) -> int:
    """Price an architecture through the runtime pricing layer."""
    context = PricingContext(
        predictor=load_predictor(args.predictor) if args.predictor else None
    )
    shape = NetworkShape(
        args.features, args.architecture, first_layer_sparsity=args.sparsity
    )
    report = network_report(shape, context)
    log.info("architecture   : %s on %d features", report.describe(), args.features)
    log.info("dense          : %.2f us/doc", report.dense_total_us_per_doc)
    log.info("1st layer share: %.0f%%", report.first_layer_impact_pct)
    log.info("pruned forecast: %.2f us/doc", report.pruned_forecast_us_per_doc)
    if report.hybrid_total_us_per_doc is not None:
        log.info(
            "hybrid (sparse first layer @ %.1f%%): %.2f us/doc",
            args.sparsity * 100.0, report.hybrid_total_us_per_doc,
        )
    if args.compare_forest:
        n_trees, n_leaves = args.compare_forest
        forest_us = price(ForestShape(n_trees, n_leaves), context=context)
        log.info(
            "QuickScorer %dx%d: %.2f us/doc (%.1fx the pruned forecast)",
            n_trees, n_leaves, forest_us,
            forest_us / report.pruned_forecast_us_per_doc,
        )
    return 0


def cmd_compile(args) -> int:
    """Compile a network into an inference plan and probe its kernels.

    Builds the network — from a saved student (``--network``) or a
    synthetic one pruned to ``--sparsity`` — compiles it at ``--dtype``,
    then prints the chosen kernel per layer with the predictor's µs/doc
    estimate next to the measured (best-of-``--repeats``) cost, plus the
    whole-plan comparison against naive ``predict``.
    """
    import time as _time

    from repro.nn.network import FeedForwardNetwork
    from repro.pruning import ColumnBlockPruner, LevelPruner
    from repro.runtime import compile_network

    if args.network:
        student = DistilledStudent.load(args.network)
        network = student.network
        source = args.network
    else:
        network = FeedForwardNetwork(
            args.features, args.architecture, seed=args.seed
        )
        if args.sparsity > 0:
            if args.pruner == "column-block":
                pruner = ColumnBlockPruner(
                    args.sparsity, block_cols=args.block_shape[1]
                )
            else:
                pruner = LevelPruner(args.sparsity)
            pruner.apply(network.first_layer)
            network.apply_masks()
        source = (
            f"synthetic {network.describe()} "
            f"(first layer {args.pruner}-pruned to {args.sparsity:.0%})"
        )
    context = PricingContext(
        predictor=load_predictor(args.predictor) if args.predictor else None
    )
    plan = compile_network(
        network,
        context=context,
        dtype=args.dtype,
        max_batch=max(args.batch, 1),
        stable=args.stable,
        quantize=args.quantize,
        tolerance=args.tolerance,
        block_sparse=args.block_sparse,
        block_shape=args.block_shape,
    )
    rng = np.random.default_rng(args.seed)
    features = rng.standard_normal((args.batch, network.input_dim))
    measured = plan.profile_layers(features, repeats=args.repeats)

    log.info("compiled %s", source)
    log.info(
        "%s (fingerprint %s, buffers %d KiB, compiled in %.1f ms)",
        plan.describe(), plan.fingerprint,
        plan.buffer_bytes // 1024, plan.compile_us / 1e3,
    )
    header = (
        f"{'layer':>5} {'shape':>10} {'sparsity':>8} {'kernel':>10} "
        f"{'dtype':>7} {'fill':>5} {'predicted':>12} {'measured':>12}"
    )
    log.info("%s", header)
    log.info("%s", "-" * len(header))
    for lp, us in zip(plan.layers, measured):
        if lp.bits is not None:
            layer_dtype = f"int{lp.bits}"
        else:
            layer_dtype = plan.dtype_name.replace("float", "f")
        fill = f"{lp.block_fill:.0%}" if lp.kernel == "block-spmm" else "-"
        log.info(
            "%5s %10s %8s %10s %7s %5s %9.3f us %9.3f us",
            f"L{lp.index}",
            f"{lp.out_width}x{lp.in_width}",
            f"{lp.sparsity:.1%}",
            lp.kernel,
            layer_dtype,
            fill,
            lp.predicted_us_per_doc,
            us,
        )
    log.info(
        "%5s %10s %8s %10s %7s %5s %9.3f us %9.3f us",
        "total", "", "", "", "", "",
        plan.predicted_us_per_doc, sum(measured),
    )
    if plan.score_tolerance is not None:
        log.info(
            "quantize=%s: declared score tolerance %.2e vs float64 reference",
            plan.quantize, plan.score_tolerance,
        )

    best_naive = best_plan = float("inf")
    for _ in range(args.repeats):
        start = _time.perf_counter()
        network.predict(features)
        best_naive = min(best_naive, _time.perf_counter() - start)
        start = _time.perf_counter()
        plan.score(features)
        best_plan = min(best_plan, _time.perf_counter() - start)
    naive_us = best_naive * 1e6 / args.batch
    plan_us = best_plan * 1e6 / args.batch
    log.info(
        "naive predict %.3f us/doc -> compiled %.3f us/doc "
        "(%.2fx) at batch %d",
        naive_us, plan_us, naive_us / plan_us, args.batch,
    )
    log.info("")
    log.info("%s", obs.compile_report().render())
    return 0


def cmd_stats(args) -> int:
    """Serve a probe workload and report spans, metrics and drift.

    Runs every query of a small synthetic collection through the three
    deployment backends (QuickScorer forest, dense student, sparse
    student) with tracing enabled, then prints the predicted-vs-measured
    drift table, the metrics snapshot and the span tree — the paper's
    design-time cost predictions audited on this machine.
    """
    from repro.obs.probe import run_probe

    obs.enable_tracing()
    run_probe(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    log.info("%s", obs.drift_report().render())
    log.info("")
    log.info("Span tree:")
    log.info("%s", obs.render_trace_tree())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(obs.render_json())
        log.info("snapshot (trace + metrics JSON) -> %s", args.json)
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(obs.render_prometheus())
        log.info("metrics (Prometheus text) -> %s", args.prometheus)
    return 0


def cmd_resilience(args) -> int:
    """Probe the degradation ladder under scheduled faults.

    Builds the probe models, fault-injects the chosen primary backend on
    a deterministic schedule, serves every query through a
    ``primary -> fallback -> stub`` chain via :class:`ScoringService`,
    and reports fallback ratios, breaker states and retry counts — the
    serving-side counterpart of ``repro stats``.
    """
    from repro.obs.probe import build_probe_models
    from repro.runtime import (
        FaultPolicy,
        ResilienceConfig,
        RetryPolicy,
        ServiceConfig,
        StubScorer,
        make_scorer,
        with_faults,
    )
    from repro.serving import ScoringService

    models = build_probe_models(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    dataset = models["dataset"]
    primary = with_faults(
        make_scorer(models[args.backend], backend=args.backend),
        FaultPolicy.every(args.fault_every, args.fault_kind,
                          stall_seconds=args.stall_seconds),
    )
    fallback_backend = (
        "sparse-network" if args.backend != "sparse-network" else "dense-network"
    )
    fallback = make_scorer(models[fallback_backend], backend=fallback_backend)
    service = ScoringService(
        primary,
        ServiceConfig(
            resilience=ResilienceConfig(
                fallback_models=(fallback, StubScorer()),
                retry=RetryPolicy(max_attempts=args.attempts),
                deadline_us=args.deadline_us,
            )
        ),
    )
    for start, stop in zip(dataset.query_ptr[:-1], dataset.query_ptr[1:]):
        service.score(dataset.features[start:stop])
    log.info("%s", service.chain.describe())
    for tier in service.resilience_summary():
        log.info(
            "  %-18s served=%-5d retries=%-4d failures=%-4d breaker=%s",
            tier["backend"], tier["served"], tier["retries"],
            tier["failures"], tier["breaker"],
        )
    log.info("")
    log.info("%s", obs.resilience_report().render())
    log.info("")
    log.info(
        "fallback ratio %.1f%%; latency %s",
        service.fallback_ratio * 100.0,
        {k: round(v, 1) for k, v in service.stats.latency_summary().items()},
    )
    return 0


def cmd_cascade(args) -> int:
    """Probe a declarative budgeted ranking pipeline.

    Assembles a three-stage pipeline over the probe models — 0.95-pruned
    sparse student → dense student → LambdaMART forest — from a
    :class:`~repro.runtime.ranking.PipelineConfig` that is round-tripped
    through JSON first (the config *is* the deployable artifact), serves
    every probe query through :class:`ScoringService`, and prints the
    stage table, measured µs/query + NDCG@10 against each single-stage
    baseline, and the cascade funnel report with budget early-exits.
    """
    import json
    import time as _time

    from repro.metrics import mean_ndcg
    from repro.obs.probe import build_probe_models
    from repro.runtime import PipelineConfig, ServiceConfig
    from repro.serving import ScoringService

    models = build_probe_models(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    dataset = models["dataset"]
    keeps = list(args.keep)
    while len(keeps) < 2:
        keeps.append(keeps[-1] if keeps else 0.5)
    config = PipelineConfig(
        stages=[
            {"model": "sparse-network", "keep_fraction": keeps[0]},
            {"model": "dense-network", "keep_fraction": keeps[1]},
            {"model": "quickscorer"},
        ],
        budget_us_per_query=args.budget_us,
    )
    round_tripped = PipelineConfig.from_dict(
        json.loads(json.dumps(config.to_dict()))
    )
    if round_tripped != config:
        log.error("PipelineConfig failed to round-trip through JSON")
        return 1
    service = ScoringService(
        {name: m for name, m in models.items() if name != "dataset"},
        ServiceConfig(pipeline=round_tripped, max_batch_size=None),
    )
    log.info("%s", service.pipeline.describe())
    for level, stage in enumerate(service.pipeline_summary()):
        log.info(
            "  level %d: %-16s %.3f us/doc, keep %.0f%%",
            level, stage["stage"], stage["cost_us_per_doc"],
            stage["keep_fraction"] * 100.0,
        )
    log.info(
        "expected amortized cost %.3f us/doc; predicted spend for a "
        "%d-doc query %.1f us",
        service.pipeline.expected_cost_us_per_doc(),
        args.docs,
        service.pipeline.predicted_query_spend_us(args.docs),
    )

    queries = [
        dataset.features[dataset.query_slice(q)]
        for q in range(dataset.n_queries)
    ]

    def measure(score_query):
        best, parts = float("inf"), []
        for _ in range(args.repeats):
            start = _time.perf_counter()
            parts = [score_query(x) for x in queries]
            best = min(best, _time.perf_counter() - start)
        scores = np.concatenate(
            [np.asarray(p, dtype=np.float64) for p in parts]
        )
        return best * 1e6 / len(queries), mean_ndcg(dataset, scores, 10)

    systems = [("cascade", service.score, service.scorer.predicted_us_per_doc)]
    for backend in ("sparse-network", "dense-network", "quickscorer"):
        scorer = make_scorer(models[backend], backend=backend)
        systems.append((backend, scorer.score, scorer.predicted_us_per_doc))
    header = (
        f"{'system':<16} {'pred us/doc':>12} {'us/query':>10} {'NDCG@10':>8}"
    )
    log.info("")
    log.info("%s", header)
    log.info("%s", "-" * len(header))
    rows = []
    for name, score_query, predicted in systems:
        us_per_query, ndcg = measure(score_query)
        rows.append(
            {
                "system": name,
                "predicted_us_per_doc": predicted,
                "us_per_query": us_per_query,
                "ndcg10": ndcg,
            }
        )
        log.info(
            "%-16s %12.3f %10.1f %8.4f", name, predicted, us_per_query, ndcg
        )
    report = obs.cascade_report()
    log.info("")
    log.info("%s", report.render())
    if args.json:
        payload = {
            "pipeline": round_tripped.to_dict(),
            "rows": rows,
            "metrics": obs.get_registry().snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        log.info("probe rows + pipeline config -> %s", args.json)
    return 0


def cmd_throughput(args) -> int:
    """Sweep workers x shard size over the sharded scoring engine.

    Builds one probe backend, then serves the same workload through a
    :class:`~repro.runtime.parallel.ShardedScorer` for every
    ``--workers`` x ``--shard-rows`` combination, printing docs/sec, the
    speedup over the 1-worker/unsharded baseline and — when
    ``--cache-entries`` is set — the warm-pass cache hit ratio.  Every
    configuration's scores are checked bit-identical to plain scoring
    before its row is printed.
    """
    import math
    import time as _time

    from repro.obs.probe import build_probe_models
    from repro.runtime import ParallelConfig, ShardedScorer, make_scorer

    models = build_probe_models(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    features = models["dataset"].features
    base_scorer = make_scorer(models[args.backend], backend=args.backend)
    baseline_scores = base_scorer.score(features)

    def measure(scorer) -> float:
        best = float("inf")
        for _ in range(args.repeats):
            start = _time.perf_counter()
            out = scorer.score(features)
            best = min(best, _time.perf_counter() - start)
        if not np.array_equal(out, baseline_scores):
            raise SystemExit(
                f"sharded scores diverged from plain scoring for {scorer!r}"
            )
        return len(features) / best

    base_rate = len(features) / min(
        _measure_plain(base_scorer, features, args.repeats)
    )
    log.info(
        "workload: %d docs x %d features via %s "
        "(unsharded baseline %.0f docs/sec)",
        features.shape[0], features.shape[1], args.backend, base_rate,
    )
    header = (
        f"{'workers':>7} {'shard rows':>10} {'docs/sec':>12} "
        f"{'speedup':>8} {'hit ratio':>10}"
    )
    log.info("%s", header)
    log.info("%s", "-" * len(header))
    for workers in args.workers:
        for shard_rows in args.shard_rows:
            config = ParallelConfig(
                workers=workers,
                strategy="size-capped" if shard_rows else "even",
                max_shard_rows=shard_rows or None,
                cache_entries=args.cache_entries,
            )
            with ShardedScorer(base_scorer, config) as sharded:
                rate = measure(sharded)
                hit_ratio = float("nan")
                if args.cache_entries:
                    warm = measure(sharded)  # cache-warm pass
                    rate = max(rate, warm)
                    hit_ratio = sharded.cache.hit_ratio
            log.info(
                "%7d %10s %12.0f %7.2fx %s",
                workers,
                shard_rows or "-",
                rate,
                rate / base_rate,
                f"{hit_ratio:>9.1%}" if math.isfinite(hit_ratio) else f"{'-':>9}",
            )
    report = obs.parallel_report()
    log.info("")
    log.info("%s", report.render())
    return 0


def cmd_serve(args) -> int:
    """Serve concurrent probe requests through the asyncio front-end.

    Builds one probe backend behind an :class:`AsyncScoringService`,
    fires every probe query *concurrently*, verifies each coalesced
    answer is bit-identical to the sequential ``ScoringService.score``
    result, and prints the coalescing summary plus the per-tenant
    serving report.
    """
    import asyncio

    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig
    from repro.serving import AsyncScoringService, ScoringService

    models = build_probe_models(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    dataset = models["dataset"]
    model_key = (
        "sparse-network" if args.backend == "compiled-network" else args.backend
    )
    service = ScoringService(
        models[model_key], ServiceConfig(backend=args.backend)
    )
    requests = [
        dataset.features[start:stop]
        for start, stop in zip(dataset.query_ptr[:-1], dataset.query_ptr[1:])
    ]
    sequential = [service.score(x) for x in requests]

    async def _serve() -> tuple[list[np.ndarray], dict]:
        async with AsyncScoringService(
            service, frontend=AsyncConfig(max_wait_us=args.max_wait_us)
        ) as front:
            scores = await asyncio.gather(
                *(front.score(x) for x in requests)
            )
            return scores, front.summary()

    coalesced, summary = asyncio.run(_serve())
    for index, (ref, got) in enumerate(zip(sequential, coalesced)):
        if not np.array_equal(ref, got):
            raise SystemExit(
                f"request {index} scored through a coalesced batch "
                "diverged from sequential scoring"
            )
    log.info(
        "served %d concurrent requests (%d docs) via %s: "
        "%d coalesced batches, %.1f requests/batch, "
        "bit-identical to sequential scoring",
        len(requests), dataset.n_docs, args.backend,
        summary["batches"], summary["requests_per_batch"],
    )
    log.info("")
    log.info("%s", obs.serving_report().render())
    return 0


def _parse_tenant(text: str):
    """``name=weight[:rate[:priority[:deadline_us]]]`` → (name, weight, cfg).

    Examples: ``web=3``, ``web=3:500`` (500 req/s bucket),
    ``batch=1:50:2`` (priority class 2), ``sla=1::0:8000`` (priority 0,
    8 ms deadline, no rate limit).
    """
    from repro.runtime import TenantConfig

    try:
        name, rest = text.split("=", 1)
        parts = rest.split(":")
        weight = float(parts[0])
        rate = float(parts[1]) if len(parts) > 1 and parts[1] else None
        priority = int(parts[2]) if len(parts) > 2 and parts[2] else 1
        deadline = float(parts[3]) if len(parts) > 3 and parts[3] else None
    except (ValueError, IndexError) as exc:
        raise argparse.ArgumentTypeError(
            f"tenant must look like name=weight[:rate[:priority"
            f"[:deadline_us]]], got {text!r}"
        ) from exc
    return name, weight, TenantConfig(
        name=name, rate_per_s=rate, priority=priority, deadline_us=deadline
    )


def cmd_loadtest(args) -> int:
    """Replay a seeded load scenario against the asyncio front-end.

    The scenario comes from ``--spec`` (a LoadSpec JSON file) or from
    the flags below; either way the offered sequence is deterministic in
    the seed.  Prints the client-side load report and the server-side
    per-tenant serving table; ``--json`` additionally dumps both plus
    the metrics snapshot.
    """
    import json

    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig
    from repro.serving import LoadSpec, ScoringService, make_queries, run_load

    tenants = [_parse_tenant(t) for t in (args.tenant or [])]
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as fh:
            spec = LoadSpec.from_dict(json.load(fh))
    else:
        spec = LoadSpec(
            mode=args.mode,
            duration_s=args.duration,
            rate_per_s=args.rate,
            burst_factor=args.burst_factor,
            burst_period_s=args.burst_period,
            workers=args.workers,
            requests_per_worker=args.requests_per_worker,
            think_time_s=args.think_time,
            n_users=args.users,
            n_queries=args.distinct_queries,
            docs_per_query=args.docs,
            zipf_s=args.zipf_s,
            tenants=tuple((name, weight) for name, weight, _ in tenants)
            or (("default", 1.0),),
            time_scale=args.time_scale,
            seed=args.seed,
        )
    models = build_probe_models(n_queries=8, docs_per_query=16, seed=args.seed)
    model_key = (
        "sparse-network" if args.backend == "compiled-network" else args.backend
    )
    service = ScoringService(
        models[model_key], ServiceConfig(backend=args.backend)
    )
    frontend = AsyncConfig(
        max_wait_us=args.max_wait_us,
        slo_us=args.slo_us,
        tenants=tuple(cfg for _, _, cfg in tenants),
    )
    swap_fn = None
    if args.swap_at is not None:
        candidate = models[model_key]
        if hasattr(candidate, "clone"):
            candidate = candidate.clone()
            last = candidate.network.linears[-1]
            last.weight.data *= 1.001
            last.bias.data *= 1.001
            swap_kwargs = {}
        else:
            # forests have no cheap perturbed twin; swap to the student
            candidate = models["dense-network"]
            swap_kwargs = {"backend": "dense-network"}
        swap_fn = lambda front: front.swap(  # noqa: E731
            candidate, version="v2", force=True, **swap_kwargs
        )
    n_features = models["dataset"].features.shape[1]
    report = run_load(
        service,
        spec,
        make_queries(spec, n_features),
        frontend=frontend,
        swap_at=args.swap_at,
        swap_fn=swap_fn,
    )
    serving = obs.serving_report()
    log.info("%s", report.render())
    log.info("")
    log.info("%s", serving.render())
    if args.json:
        payload = {
            "load": report.to_dict(),
            "metrics": obs.get_registry().snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        log.info("load report + metrics snapshot -> %s", args.json)
    return 0


def cmd_swap(args) -> int:
    """Probe the versioned model lifecycle end to end.

    Builds the probe student service, swaps in a near-identical
    candidate through the shadow-scoring gate (promoted on live traffic)
    and — with ``--regressed`` — a deliberately broken one (rolled back
    automatically).  Prints the gate evidence, the swap timeline and the
    ``lifecycle.*`` report; ``--json`` dumps the lifecycle summary.
    """
    import json

    from repro.obs.probe import build_probe_models
    from repro.runtime import LifecycleConfig, ParallelConfig, ServiceConfig
    from repro.serving import ScoringService

    models = build_probe_models(
        n_queries=args.queries, docs_per_query=args.docs, seed=args.seed
    )
    dataset = models["dataset"]
    student = models["dense-network"]
    service = ScoringService(
        student,
        ServiceConfig(
            max_batch_size=None,
            parallel=ParallelConfig(workers=2, cache_entries=4096),
            lifecycle=LifecycleConfig(
                shadow_mode="sync",
                shadow_fraction=args.shadow_fraction,
                shadow_min_requests=args.shadow_min,
            ),
        ),
    )
    queries = [
        dataset.features[dataset.query_slice(q)]
        for q in range(dataset.n_queries)
    ]

    def serve(n: int) -> None:
        for i in range(n):
            service.score(queries[i % len(queries)])

    def shadow_phase(candidate, version: str) -> None:
        outcome = service.swap(candidate, version=version)
        log.info("swap(%s) -> %s", version, outcome["action"])
        serve(args.requests)
        if service.lifecycle.state == "shadowing":
            service.lifecycle.decide()
        gate = service.lifecycle.last_gate
        verdict = "PASSED" if gate.passed else "TRIPPED"
        log.info(
            "gate %s after %d comparisons: drift %.2f%%, agreement %.3f%s",
            verdict, gate.compared, gate.mean_drift_pct,
            gate.mean_agreement,
            (" (" + "; ".join(gate.reasons) + ")") if gate.reasons else "",
        )
        log.info("active version: %s", service.registry.active.version_id)

    serve(args.requests)  # warm the incumbent before any swap
    good = student.clone()
    for param in (
        good.network.linears[-1].weight,
        good.network.linears[-1].bias,
    ):
        param.data *= 1.001
    shadow_phase(good, "candidate")
    if args.regressed:
        bad = student.clone()
        for param in (
            bad.network.linears[-1].weight,
            bad.network.linears[-1].bias,
        ):
            param.data *= -1.0
        shadow_phase(bad, "regressed")
    summary = service.lifecycle_summary()
    log.info("")
    for event in summary["swap_events"]:
        log.info(
            "  %s: %s -> %s (%d compared, %d cache rows invalidated)",
            event["kind"], event["from_version"], event["to_version"],
            event["compared"], event["invalidated"],
        )
    log.info("")
    log.info("%s", obs.lifecycle_report().render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        log.info("lifecycle summary -> %s", args.json)
    service.close()
    return 0


def _traced_probe_load(args):
    """Run a seeded probe load with request tracing on; returns records.

    Shared by ``repro trace`` (no ``--flight`` file) and the tests: a
    fresh enabled recorder + registry + burn monitor are installed for
    the duration, and every retained flight record is returned in its
    ``to_dict`` form.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig
    from repro.serving import LoadSpec, ScoringService, make_queries, run_load

    spec = LoadSpec(
        mode="closed",
        workers=args.workers,
        requests_per_worker=args.requests_per_worker,
        think_time_s=0.0,
        n_users=5_000,
        n_queries=16,
        docs_per_query=args.docs,
        zipf_s=1.1,
        tenants=(("web", 3.0), ("batch", 1.0)),
        seed=args.seed,
    )
    models = build_probe_models(n_queries=8, docs_per_query=16, seed=args.seed)
    model_key = (
        "sparse-network" if args.backend == "compiled-network" else args.backend
    )
    service = ScoringService(
        models[model_key], ServiceConfig(backend=args.backend)
    )
    recorder = obs.RequestRecorder(enabled=True)
    previous_recorder = obs.set_request_recorder(recorder)
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_monitor = obs.set_slo_monitor(obs.SloMonitor())
    try:
        run_load(
            service,
            spec,
            make_queries(spec, models["dataset"].features.shape[1]),
            frontend=AsyncConfig(max_wait_us=300.0, slo_us=args.slo_us),
        )
        return [record.to_dict() for record in recorder.flight.records()]
    finally:
        obs.set_request_recorder(previous_recorder)
        obs.set_registry(previous_registry)
        obs.set_slo_monitor(previous_monitor)


def cmd_trace(args) -> int:
    """Print per-request stage timelines from the flight recorder.

    Without ``--flight``, a seeded probe load runs with request tracing
    enabled and its retained records are inspected; with ``--flight``,
    records come from a JSON dump (a ``repro loadtest --json`` /
    ``BENCH_serving.json`` document with a ``trace_sample``, a flight
    dump with a ``records`` list, or a bare list).  A trace-id prefix
    argument narrows the output to matching traces; otherwise the
    slowest ``--slowest`` retained requests render in full.
    """
    import json

    from repro.obs.flight import render_record

    if args.flight:
        with open(args.flight, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, list):
            records = data
        elif isinstance(data, dict) and "records" in data:
            records = data["records"]
        elif isinstance(data, dict) and data.get("trace_sample"):
            records = [data["trace_sample"]]
        elif isinstance(data, dict) and (
            data.get("load", {}) or {}
        ).get("trace_sample"):
            records = [data["load"]["trace_sample"]]
        else:
            log.error("no trace records found in %s", args.flight)
            return 1
    else:
        records = _traced_probe_load(args)
    if args.trace_id:
        matches = [
            r
            for r in records
            if str(r.get("trace_id", "")).startswith(args.trace_id)
        ]
        if not matches:
            log.error(
                "no retained trace matches %r (have %d records)",
                args.trace_id,
                len(records),
            )
            return 1
    else:
        matches = sorted(
            records, key=lambda r: -(r.get("wall_us") or 0.0)
        )[: args.slowest]
    for record in matches:
        log.info("%s", render_record(record))
        log.info("")
    log.info(
        "%d trace(s) shown of %d retained", len(matches), len(records)
    )
    return 0


def cmd_top(args) -> int:
    """Live text dashboard over a replayed load scenario.

    Builds a probe service, replays an open-loop load against the async
    front-end, and renders ``--frames`` dashboard frames while it runs:
    the per-tenant serving table, the SLO burn-rate table, and the
    flight recorder's retained tail, plus a final frame after drain.
    """
    import asyncio

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.probe import build_probe_models
    from repro.runtime import AsyncConfig, ServiceConfig
    from repro.serving import (
        AsyncScoringService,
        LoadSpec,
        ScoringService,
        make_queries,
    )
    from repro.serving.loadgen import run_load_async

    spec = LoadSpec(
        mode="open",
        duration_s=args.duration,
        rate_per_s=args.rate,
        burst_factor=2.0,
        burst_period_s=max(args.duration / 4.0, 1e-3),
        n_users=10_000,
        n_queries=32,
        docs_per_query=args.docs,
        zipf_s=1.1,
        tenants=(("web", 3.0), ("batch", 1.0)),
        seed=args.seed,
    )
    models = build_probe_models(n_queries=8, docs_per_query=16, seed=args.seed)
    model_key = (
        "sparse-network" if args.backend == "compiled-network" else args.backend
    )
    service = ScoringService(
        models[model_key], ServiceConfig(backend=args.backend)
    )
    queries = make_queries(spec, models["dataset"].features.shape[1])
    recorder = obs.RequestRecorder(enabled=True)
    previous_recorder = obs.set_request_recorder(recorder)
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_monitor = obs.set_slo_monitor(obs.SloMonitor())

    def _frame(label, front) -> str:
        lines = [
            f"--- repro top [{label}] "
            f"queue depth {front.summary()['queue_depth']} ---",
            obs.serving_report().render(),
            "",
            obs.slo_burn_report().render(),
            "",
            recorder.flight.render(),
        ]
        return "\n".join(lines)

    async def _run():
        async with AsyncScoringService(
            service, frontend=AsyncConfig(max_wait_us=300.0, slo_us=args.slo_us)
        ) as front:
            load = asyncio.ensure_future(
                run_load_async(front, spec, queries)
            )
            frame = 0
            while not load.done() and frame < args.frames:
                await asyncio.sleep(args.interval)
                frame += 1
                log.info("%s\n", _frame(f"frame {frame}", front))
            report = await load
            log.info("%s\n", _frame("final", front))
            return report

    try:
        report = asyncio.run(_run())
        log.info("%s", report.render())
        return 0
    finally:
        obs.set_request_recorder(previous_recorder)
        obs.set_registry(previous_registry)
        obs.set_slo_monitor(previous_monitor)


def _measure_plain(scorer, features, repeats: int) -> list[float]:
    """Best-of-N wall times of unsharded scoring (list for ``min``)."""
    import time as _time

    times = []
    for _ in range(repeats):
        start = _time.perf_counter()
        scorer.score(features)
        times.append(_time.perf_counter() - start)
    return times


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distilled neural networks for efficient learning to rank",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable tracing; print the span tree and drift report "
        "after the command",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="structured DEBUG-level log output",
    )
    verbosity.add_argument(
        "--quiet", action="store_true", help="warnings and errors only"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic LtR collection")
    p.add_argument("output")
    p.add_argument("--flavour", choices=("msn30k", "istella"), default="msn30k")
    p.add_argument("--queries", type=int, default=200)
    p.add_argument("--docs", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("train-forest", help="train a LambdaMART ensemble")
    p.add_argument("data")
    p.add_argument("output")
    p.add_argument("--trees", type=int, default=60)
    p.add_argument("--leaves", type=int, default=64)
    p.add_argument("--learning-rate", type=float, default=0.12)
    p.add_argument("--min-data-in-leaf", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train_forest)

    p = sub.add_parser("distill", help="distill a student MLP from a forest")
    p.add_argument("data")
    p.add_argument("forest")
    p.add_argument("output")
    p.add_argument(
        "--architecture", type=_parse_hidden, default=(200, 100, 100, 50)
    )
    p.add_argument("--epochs", type=int, default=25)
    p.add_argument("--learning-rate", type=float, default=0.003)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_distill)

    p = sub.add_parser("prune", help="first-layer prune + fine-tune a student")
    p.add_argument("data")
    p.add_argument("forest")
    p.add_argument("network")
    p.add_argument("output")
    p.add_argument("--sensitivity", type=float, default=2.0)
    p.add_argument("--epochs-prune", type=int, default=10)
    p.add_argument("--epochs-finetune", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_prune)

    p = sub.add_parser("score", help="score an SVMLight file with a model")
    p.add_argument("data")
    p.add_argument("output")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--forest")
    group.add_argument("--network")
    p.set_defaults(func=cmd_score)

    p = sub.add_parser("calibrate", help="measure + save the time predictors")
    p.add_argument("output")
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("verify", help="check the cost-model calibration")
    p.add_argument(
        "--quick",
        action="store_true",
        help="QuickScorer anchors only (skip the GFLOPS sweep)",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("predict-time", help="price an architecture")
    p.add_argument("architecture", type=_parse_hidden)
    p.add_argument("--features", type=int, default=136)
    p.add_argument("--sparsity", type=float, default=0.987)
    p.add_argument("--predictor", help="saved predictor JSON (repro calibrate)")
    p.add_argument(
        "--compare-forest",
        nargs=2,
        type=int,
        metavar=("TREES", "LEAVES"),
        help="also print the QuickScorer time of this forest shape",
    )
    p.set_defaults(func=cmd_predict_time)

    p = sub.add_parser(
        "stats", help="serve a probe workload; report spans + drift"
    )
    p.add_argument("--queries", type=int, default=24)
    p.add_argument("--docs", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", help="also write the trace+metrics JSON here")
    p.add_argument(
        "--prometheus", help="also write the Prometheus text snapshot here"
    )
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "resilience",
        help="fault-inject a backend; report degradation + breaker states",
    )
    p.add_argument(
        "--backend",
        choices=("quickscorer", "dense-network", "sparse-network"),
        default="quickscorer",
        help="primary backend to fault-inject",
    )
    p.add_argument(
        "--fault-every",
        type=int,
        default=3,
        help="inject a fault on every Nth request",
    )
    p.add_argument(
        "--fault-kind",
        choices=("error", "stall", "nan"),
        default="error",
        help="what the injected fault does",
    )
    p.add_argument(
        "--stall-seconds",
        type=float,
        default=0.01,
        help="stall duration when --fault-kind stall",
    )
    p.add_argument(
        "--attempts",
        type=int,
        default=1,
        help="attempts per tier before degrading (1 = fail fast)",
    )
    p.add_argument(
        "--deadline-us",
        type=float,
        default=None,
        help="per-request deadline in microseconds",
    )
    p.add_argument("--queries", type=int, default=24)
    p.add_argument("--docs", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_resilience)

    p = sub.add_parser(
        "compile",
        help="compile a network into an inference plan and probe it",
    )
    p.add_argument(
        "--network", help="saved student model to compile (repro distill)"
    )
    p.add_argument(
        "--architecture",
        type=_parse_hidden,
        default=(400, 200, 200, 100),
        help="hidden widths of the synthetic network (e.g. 400x200x100)",
    )
    p.add_argument("--features", type=int, default=136)
    p.add_argument(
        "--sparsity",
        type=float,
        default=0.9,
        help="first-layer pruning level of the synthetic network",
    )
    p.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="plan execution dtype (float32 = the paper's kernels)",
    )
    p.add_argument(
        "--stable",
        action="store_true",
        help="compile the serving-grade chunk-invariant plan",
    )
    p.add_argument(
        "--pruner",
        choices=("level", "column-block"),
        default="level",
        help="synthetic first-layer pruning criterion (column-block "
        "leaves the dense tiles block-spmm vectorizes over)",
    )
    p.add_argument(
        "--quantize",
        choices=("none", "int8", "int16", "auto"),
        default="none",
        help="per-layer weight quantization (auto = calibrated mix)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        help="score-tolerance budget for quantized plans",
    )
    p.add_argument(
        "--block-sparse",
        action="store_true",
        help="regroup pruned layers into block-CSR tiles when fill allows",
    )
    p.add_argument(
        "--block-shape",
        type=_parse_block_shape,
        default=(64, 8),
        help="block tile shape as RxC (default 64x8)",
    )
    p.add_argument("--batch", type=int, default=256)
    p.add_argument(
        "--repeats", type=int, default=20, help="best-of-N timing repeats"
    )
    p.add_argument("--predictor", help="saved predictor JSON (repro calibrate)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "cascade",
        help="probe a budgeted ranking pipeline against single-stage "
        "baselines",
    )
    p.add_argument(
        "--keep",
        type=float,
        nargs="+",
        default=[0.4, 0.5],
        help="survivor keep fractions of the non-final stages",
    )
    p.add_argument(
        "--budget-us",
        type=float,
        default=None,
        help="per-query predicted-spend budget in microseconds",
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    p.add_argument("--queries", type=int, default=24)
    p.add_argument("--docs", type=int, default=48)
    p.add_argument(
        "--json", help="also write the probe rows + pipeline config here"
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_cascade)

    p = sub.add_parser(
        "throughput",
        help="sweep workers x shard size over the sharded scorer",
    )
    p.add_argument(
        "--backend",
        choices=("quickscorer", "dense-network", "sparse-network"),
        default="dense-network",
        help="backend to shard",
    )
    p.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to sweep",
    )
    p.add_argument(
        "--shard-rows",
        type=int,
        nargs="+",
        default=[0, 64, 256],
        metavar="ROWS",
        help="max rows per shard to sweep (0 = even split across workers)",
    )
    p.add_argument(
        "--cache-entries",
        type=int,
        default=0,
        help="score-cache capacity (0 disables; >0 adds a warm pass "
        "and reports the hit ratio)",
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    p.add_argument("--queries", type=int, default=24)
    p.add_argument("--docs", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser(
        "serve",
        help="answer concurrent probe requests via the asyncio front-end",
    )
    p.add_argument(
        "--backend",
        choices=(
            "quickscorer", "dense-network", "sparse-network",
            "compiled-network",
        ),
        default="dense-network",
        help="backend to serve through the front-end",
    )
    p.add_argument(
        "--max-wait-us",
        type=float,
        default=2000.0,
        help="linger window: how long the batcher waits to coalesce "
        "more requests (0 = dispatch immediately)",
    )
    p.add_argument("--queries", type=int, default=24)
    p.add_argument("--docs", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadtest",
        help="replay a seeded multi-tenant load scenario; report "
        "shed/SLO/latency per tenant",
    )
    p.add_argument(
        "--backend",
        choices=(
            "quickscorer", "dense-network", "sparse-network",
            "compiled-network",
        ),
        default="dense-network",
    )
    p.add_argument(
        "--spec", help="LoadSpec JSON file (overrides the flags below)"
    )
    p.add_argument("--mode", choices=("open", "closed"), default="open")
    p.add_argument(
        "--duration", type=float, default=0.5,
        help="open mode: seconds of schedule to offer",
    )
    p.add_argument(
        "--rate", type=float, default=400.0,
        help="open mode: base arrival rate (req/s)",
    )
    p.add_argument(
        "--burst-factor", type=float, default=1.0,
        help="open mode: rate multiplier during the burst half-period",
    )
    p.add_argument(
        "--burst-period", type=float, default=0.25,
        help="open mode: seconds per burst on/off cycle",
    )
    p.add_argument(
        "--workers", type=int, default=8,
        help="closed mode: concurrent simulated users",
    )
    p.add_argument(
        "--requests-per-worker", type=int, default=25,
        help="closed mode: requests each user issues",
    )
    p.add_argument(
        "--think-time", type=float, default=0.0,
        help="closed mode: seconds between a user's requests",
    )
    p.add_argument(
        "--users", type=int, default=10_000,
        help="simulated user population (Zipfian popularity)",
    )
    p.add_argument(
        "--distinct-queries", type=int, default=64,
        help="distinct candidate lists the population maps onto",
    )
    p.add_argument(
        "--docs", type=int, default=10, help="documents per candidate list"
    )
    p.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf exponent of user popularity (0 = uniform)",
    )
    p.add_argument(
        "--time-scale", type=float, default=1.0,
        help="compress schedule sleeps (0.1 = replay 10x faster)",
    )
    p.add_argument(
        "--tenant",
        action="append",
        metavar="NAME=WEIGHT[:RATE[:PRIO[:DEADLINE_US]]]",
        help="add a tenant to the mix and its admission contract "
        "(repeatable; default: one unlimited 'default' tenant)",
    )
    p.add_argument(
        "--max-wait-us", type=float, default=500.0,
        help="front-end linger window",
    )
    p.add_argument(
        "--slo-us", type=float, default=None,
        help="default enqueue->response SLO for tenants without a "
        "deadline of their own",
    )
    p.add_argument(
        "--swap-at", type=float, default=None, metavar="FRACTION",
        help="force a zero-downtime hot swap to a perturbed candidate "
        "after this fraction of offered requests; the report records "
        "the swap timing and per-version served counts",
    )
    p.add_argument(
        "--json", help="also write the load report + metrics snapshot here"
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "swap",
        help="probe the versioned lifecycle: shadow-gated hot swap, "
        "promotion gate, automatic rollback",
    )
    p.add_argument("--queries", type=int, default=8)
    p.add_argument("--docs", type=int, default=12)
    p.add_argument(
        "--requests", type=int, default=16,
        help="requests served during each shadow phase",
    )
    p.add_argument(
        "--shadow-fraction", type=float, default=1.0,
        help="fraction of live traffic mirrored to the candidate",
    )
    p.add_argument(
        "--shadow-min", type=int, default=8,
        help="comparisons required before the gate decides",
    )
    p.add_argument(
        "--regressed", action="store_true",
        help="also swap in a regressed candidate to demonstrate the "
        "automatic rollback",
    )
    p.add_argument("--json", help="write the lifecycle summary here")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_swap)

    p = sub.add_parser(
        "trace",
        help="print per-request stage timelines from a traced load or "
        "a flight dump",
    )
    p.add_argument(
        "trace_id",
        nargs="?",
        help="trace-id prefix to look up (default: show the slowest)",
    )
    p.add_argument(
        "--flight",
        help="read records from a JSON dump instead of running a load",
    )
    p.add_argument(
        "--slowest", type=int, default=3,
        help="how many of the slowest traces to render (no trace id)",
    )
    p.add_argument(
        "--backend",
        choices=(
            "quickscorer", "dense-network", "sparse-network",
            "compiled-network",
        ),
        default="dense-network",
    )
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--requests-per-worker", type=int, default=8)
    p.add_argument("--docs", type=int, default=10)
    p.add_argument(
        "--slo-us", type=float, default=5_000.0,
        help="enqueue->response SLO the traced load is judged against",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "top",
        help="live text dashboard over a replayed load: serving table, "
        "SLO burn rates, flight-recorder tail",
    )
    p.add_argument(
        "--backend",
        choices=(
            "quickscorer", "dense-network", "sparse-network",
            "compiled-network",
        ),
        default="dense-network",
    )
    p.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of open-loop load to replay",
    )
    p.add_argument(
        "--rate", type=float, default=300.0, help="offered req/s"
    )
    p.add_argument("--docs", type=int, default=10)
    p.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between dashboard frames",
    )
    p.add_argument(
        "--frames", type=int, default=10,
        help="at most this many frames before the final one",
    )
    p.add_argument(
        "--slo-us", type=float, default=5_000.0,
        help="enqueue->response SLO for the burn-rate table",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_top)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(verbose=args.verbose, quiet=args.quiet)
    if args.trace:
        obs.enable_tracing()
    try:
        return args.func(args)
    finally:
        if args.trace:
            log.info("")
            log.info("Span tree (--trace):")
            log.info("%s", obs.render_trace_tree())
            report = obs.drift_report()
            if report.rows:
                log.info("")
                log.info("%s", report.render())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
