"""Gradual sparsity schedules.

Section 2.3: "Han et al. show that the gradual increase of the target
sparsity, interleaved with a number of steps of re-training, can improve
the accuracy of the final model."  This module implements the two
standard schedules for driving a :class:`LevelPruner` across epochs:

* :class:`LinearSchedule` — sparsity ramps linearly from
  ``initial_sparsity`` to ``final_sparsity`` over the pruning epochs;
* :class:`PolynomialSchedule` — Zhu & Gupta's automated gradual pruning
  (AGP) cubic ramp, which prunes aggressively early (while the network
  is plastic) and gently near the target:

      s_t = s_f + (s_i - s_f) * (1 - t/T)^power
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PruningError


@dataclass(frozen=True)
class LinearSchedule:
    """Linear sparsity ramp over ``n_epochs``."""

    final_sparsity: float
    n_epochs: int
    initial_sparsity: float = 0.0

    def __post_init__(self) -> None:
        _validate(self.initial_sparsity, self.final_sparsity, self.n_epochs)

    def sparsity_at(self, epoch: int) -> float:
        """Target sparsity after ``epoch`` (0-based) pruning steps."""
        if epoch < 0:
            raise PruningError(f"epoch must be >= 0, got {epoch}")
        if epoch >= self.n_epochs - 1:
            return self.final_sparsity
        t = (epoch + 1) / self.n_epochs
        return self.initial_sparsity + t * (
            self.final_sparsity - self.initial_sparsity
        )


@dataclass(frozen=True)
class PolynomialSchedule:
    """Zhu & Gupta's AGP ramp: fast early, gentle near the target."""

    final_sparsity: float
    n_epochs: int
    initial_sparsity: float = 0.0
    power: float = 3.0

    def __post_init__(self) -> None:
        _validate(self.initial_sparsity, self.final_sparsity, self.n_epochs)
        if self.power <= 0:
            raise PruningError(f"power must be positive, got {self.power}")

    def sparsity_at(self, epoch: int) -> float:
        """Target sparsity after ``epoch`` (0-based) pruning steps."""
        if epoch < 0:
            raise PruningError(f"epoch must be >= 0, got {epoch}")
        if epoch >= self.n_epochs - 1:
            return self.final_sparsity
        t = (epoch + 1) / self.n_epochs
        return self.final_sparsity + (
            self.initial_sparsity - self.final_sparsity
        ) * (1.0 - t) ** self.power


def _validate(initial: float, final: float, n_epochs: int) -> None:
    if not 0.0 <= initial <= final < 1.0:
        raise PruningError(
            f"need 0 <= initial <= final < 1, got {initial}, {final}"
        )
    if n_epochs <= 0:
        raise PruningError(f"n_epochs must be positive, got {n_epochs}")
