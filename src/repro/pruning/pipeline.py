"""Early-layers efficiency-oriented pruning (Section 5.2).

The pipeline the paper builds its headline results on (Table 8):

1. start from a distilled dense student;
2. aggressively prune *only the first layer* with fixed-threshold
   magnitude pruning — the first layer dominates execution time
   (Table 7) and is the layer where dynamic sensitivity shows pruning
   acting as a regularizer (Fig. 10 right);
3. for ``epochs_prune`` epochs, interleave mask tightening with
   fine-tuning of the surviving first-layer entries *and* all other
   weights, against the same teacher-score targets (distillation
   batches);
4. fine-tune for ``epochs_finetune`` more epochs with the mask frozen
   (Han et al.'s prune/retrain schedule; Table 9's E_p and E_ft).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import LtrDataset
from repro.distill.distiller import make_distillation_provider
from repro.distill.student import DistilledStudent
from repro.distill.teacher import TreeEnsembleTeacher
from repro.forest.ensemble import TreeEnsemble
from repro.nn.training import Trainer, TrainingConfig
from repro.pruning.magnitude import LevelPruner, ThresholdPruner
from repro.pruning.schedule import LinearSchedule, PolynomialSchedule
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class FirstLayerPruningConfig:
    """Hyper-parameters of the prune/fine-tune phase.

    Defaults mirror the paper's MSN30K pruning settings (Table 9):
    E_p = 80 pruning/fine-tuning epochs, E_ft = 20 fine-tuning-only
    epochs, Adam lr 0.001 decayed by 0.1 at epochs {50, 80}.
    ``sensitivity`` is the ``s`` of the ``t = s * sigma`` threshold;
    larger values prune more aggressively (the paper's final model
    reaches 98.7% first-layer sparsity).
    """

    #: Pruning criterion: "threshold" (Distiller-style fixed t = s*sigma,
    #: the paper's choice), or a gradual level schedule — "agp"
    #: (polynomial, Zhu & Gupta) or "linear" — driven to
    #: ``target_sparsity``.
    method: str = "threshold"
    target_sparsity: float = 0.987
    sensitivity: float = 2.2
    max_sparsity: float = 0.99
    epochs_prune: int = 80
    epochs_finetune: int = 20
    batch_size: int = 256
    learning_rate: float = 0.001
    lr_gamma: float = 0.1
    lr_milestones: tuple[int, ...] = (50, 80)
    augmented_fraction: float = 0.5
    steps_per_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.method not in ("threshold", "agp", "linear"):
            raise ValueError(
                f"method must be 'threshold', 'agp' or 'linear', got "
                f"{self.method!r}"
            )
        if not 0.0 < self.target_sparsity < 1.0:
            raise ValueError(
                f"target_sparsity must be in (0, 1), got {self.target_sparsity}"
            )
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be > 0, got {self.sensitivity}")
        if self.epochs_prune <= 0 or self.epochs_finetune < 0:
            raise ValueError("epochs_prune must be > 0, epochs_finetune >= 0")


@dataclass
class PruningTrace:
    """Per-epoch sparsity and loss during the prune/fine-tune run."""

    sparsity: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)


class FirstLayerPruner:
    """Runs the efficiency-oriented pruning pipeline on a student."""

    def __init__(
        self,
        config: FirstLayerPruningConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config or FirstLayerPruningConfig()
        self._rng = ensure_rng(seed)
        self.trace_: PruningTrace | None = None

    def prune(
        self,
        student: DistilledStudent,
        teacher: TreeEnsemble | TreeEnsembleTeacher,
        train: LtrDataset,
    ) -> DistilledStudent:
        """Return a pruned copy of ``student`` (the input is untouched)."""
        if isinstance(teacher, TreeEnsemble):
            teacher = TreeEnsembleTeacher(teacher)
        cfg = self.config

        pruned = student.clone()
        network = pruned.network
        first = network.first_layer
        apply_pruner = self._make_pruner(first)
        provider = make_distillation_provider(
            teacher,
            train,
            pruned.normalizer,
            augmented_fraction=cfg.augmented_fraction,
        )
        steps = cfg.steps_per_epoch or max(1, train.n_docs // cfg.batch_size)
        trace = PruningTrace()

        total_epochs = cfg.epochs_prune + cfg.epochs_finetune
        trainer = Trainer(
            network,
            TrainingConfig(
                epochs=total_epochs,
                batch_size=cfg.batch_size,
                learning_rate=cfg.learning_rate,
                lr_gamma=cfg.lr_gamma,
                lr_milestones=cfg.lr_milestones,
            ),
            seed=self._rng,
        )

        def on_epoch_end(epoch: int, loss: float) -> None:
            # Tighten the mask only during the pruning phase; fine-tuning
            # keeps pulling surviving weights toward zero, so sparsity
            # ratchets upward under either criterion.
            if epoch < cfg.epochs_prune:
                apply_pruner(epoch + 1)
            trace.sparsity.append(first.sparsity())
            trace.train_loss.append(loss)

        # Initial cut before any fine-tuning (Han et al. prune first).
        apply_pruner(0)
        trainer.fit(
            batch_provider=provider,
            steps_per_epoch=steps,
            on_epoch_end=on_epoch_end,
        )
        self.trace_ = trace
        return pruned

    def _make_pruner(self, first):
        """Return ``apply(epoch)`` for the configured pruning criterion."""
        cfg = self.config
        if cfg.method == "threshold":
            pruner = ThresholdPruner(
                cfg.sensitivity, max_sparsity=cfg.max_sparsity
            )

            def apply(epoch: int) -> None:
                del epoch  # the fixed threshold is epoch-independent
                pruner.apply(first)

            return apply

        schedule_cls = (
            PolynomialSchedule if cfg.method == "agp" else LinearSchedule
        )
        schedule = schedule_cls(
            final_sparsity=cfg.target_sparsity, n_epochs=cfg.epochs_prune
        )

        def apply(epoch: int) -> None:
            LevelPruner(schedule.sparsity_at(epoch)).apply(first)

        return apply

    @property
    def final_sparsity(self) -> float:
        """First-layer sparsity after the last epoch."""
        if self.trace_ is None or not self.trace_.sparsity:
            raise RuntimeError("prune() has not been run")
        return self.trace_.sparsity[-1]
