"""Per-layer pruning sensitivity analysis (Section 5.2, Fig. 10).

Both procedures prune a growing fraction of weights in *one layer at a
time* and evaluate the partially-pruned model on the validation set:

* **static** — no retraining after pruning: measures how much the raw
  model relies on each layer's small weights (the paper finds early
  layers most sensitive);
* **dynamic** — fine-tune the surviving weights (all layers) after each
  pruning step: the trend inverts, and high first-layer sparsity can even
  *beat* the dense model (pruning as a regularizer) — the observation the
  efficiency-oriented pipeline exploits.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.distill.student import DistilledStudent
from repro.pruning.magnitude import LevelPruner

#: Evaluates a (cloned, possibly pruned) student; higher is better.
EvalFn = Callable[[DistilledStudent], float]
#: Fine-tunes a student in place (dynamic analysis only).
FinetuneFn = Callable[[DistilledStudent], None]

DEFAULT_SPARSITIES = (0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.98)


@dataclass
class SensitivityResult:
    """Metric per (layer, sparsity) grid point."""

    sparsities: tuple[float, ...]
    #: layer index (0-based over linear layers) -> metric per sparsity.
    curves: dict[int, list[float]] = field(default_factory=dict)
    baseline: float = float("nan")

    def layer_curve(self, layer: int) -> list[tuple[float, float]]:
        """(sparsity, metric) pairs for one layer."""
        return list(zip(self.sparsities, self.curves[layer]))

    def most_sensitive_layer(self) -> int:
        """Layer whose metric drops most at the highest sparsity."""
        return min(self.curves, key=lambda l: self.curves[l][-1])

    def most_robust_layer(self) -> int:
        """Layer whose metric stays highest at the highest sparsity."""
        return max(self.curves, key=lambda l: self.curves[l][-1])


def _run(
    student: DistilledStudent,
    eval_fn: EvalFn,
    sparsities: Sequence[float],
    layers: Sequence[int] | None,
    finetune_fn: FinetuneFn | None,
) -> SensitivityResult:
    n_prunable = len(student.network.linears) - 1  # never prune the head
    layer_ids = list(range(n_prunable)) if layers is None else list(layers)
    result = SensitivityResult(sparsities=tuple(float(s) for s in sparsities))
    result.baseline = float(eval_fn(student))
    for layer in layer_ids:
        curve: list[float] = []
        for sparsity in sparsities:
            probe = student.clone()
            if sparsity > 0.0:
                LevelPruner(float(sparsity)).apply(probe.network.linears[layer])
                if finetune_fn is not None:
                    finetune_fn(probe)
            curve.append(float(eval_fn(probe)))
        result.curves[layer] = curve
    return result


def static_sensitivity(
    student: DistilledStudent,
    eval_fn: EvalFn,
    *,
    sparsities: Sequence[float] = DEFAULT_SPARSITIES,
    layers: Sequence[int] | None = None,
) -> SensitivityResult:
    """Prune one layer at a time, no retraining (Fig. 10 left)."""
    return _run(student, eval_fn, sparsities, layers, None)


def dynamic_sensitivity(
    student: DistilledStudent,
    eval_fn: EvalFn,
    finetune_fn: FinetuneFn,
    *,
    sparsities: Sequence[float] = DEFAULT_SPARSITIES,
    layers: Sequence[int] | None = None,
) -> SensitivityResult:
    """Prune one layer at a time with retraining (Fig. 10 right)."""
    return _run(student, eval_fn, sparsities, layers, finetune_fn)
