"""Binary pruning-mask construction.

Masks have the weight's shape with 1.0 for surviving entries and 0.0 for
pruned ones.  Three magnitude criteria are provided (Section 2.3):

* *level*: zero the smallest-|w| entries until a target sparsity holds;
* *threshold*: zero every ``|w| < t`` with ``t = s * sigma(w)`` — the
  statistically-derived threshold of Han et al. / the Distiller
  framework.  For normally-distributed weights, ``s = 1`` prunes ~68%;
* *column-block*: zero whole aligned groups of input columns by
  aggregate magnitude, so the survivors regroup into fully-dense tiles
  (fill 1.0) for the block-CSR kernels of
  :mod:`repro.matmul.blocks` — the paper's observation (Section 4.3)
  that pruning pays off only when it leaves hardware-friendly structure.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PruningError


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of zeros in a mask."""
    m = np.asarray(mask)
    if m.size == 0:
        raise PruningError("mask is empty")
    return float(np.mean(m == 0.0))


def level_mask(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Mask keeping the largest-|w| ``(1 - sparsity)`` fraction of entries.

    Ties at the cut magnitude are broken by flat index, so the resulting
    sparsity is exact.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise PruningError(f"sparsity must be in [0, 1], got {sparsity}")
    w = np.asarray(weights, dtype=np.float64)
    n_prune = int(round(sparsity * w.size))
    mask = np.ones(w.size, dtype=np.float64)
    if n_prune > 0:
        order = np.argsort(np.abs(w).ravel(), kind="stable")
        mask[order[:n_prune]] = 0.0
    return mask.reshape(w.shape)


def column_block_mask(
    weights: np.ndarray, sparsity: float, block_cols: int = 8
) -> np.ndarray:
    """Mask pruning whole aligned column groups of width ``block_cols``.

    Columns are grouped as ``[0, block_cols)``, ``[block_cols,
    2*block_cols)``, ... (the last group may be narrower); groups are
    ranked by the sum of |w| over the group and the weakest are zeroed
    entirely.  As many whole groups are pruned as fit within the
    ``round(sparsity * size)`` entry budget — the achieved sparsity
    never exceeds the target — and at least one group always survives.
    Ties are broken by group index, so the mask is deterministic.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise PruningError(f"sparsity must be in [0, 1], got {sparsity}")
    if block_cols < 1:
        raise PruningError(f"block_cols must be >= 1, got {block_cols}")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise PruningError(f"weights must be 2-d, got shape {w.shape}")
    m, k = w.shape
    n_groups = -(-k // block_cols)
    bounds = [(g * block_cols, min((g + 1) * block_cols, k)) for g in range(n_groups)]
    scores = np.array([np.abs(w[:, lo:hi]).sum() for lo, hi in bounds])
    budget = int(round(sparsity * w.size))
    mask = np.ones((m, k), dtype=np.float64)
    pruned_entries = 0
    order = np.argsort(scores, kind="stable")
    for g in order[: n_groups - 1]:  # at least one group survives
        lo, hi = bounds[g]
        entries = m * (hi - lo)
        if pruned_entries + entries > budget:
            break
        mask[:, lo:hi] = 0.0
        pruned_entries += entries
    return mask


def threshold_from_sigma(weights: np.ndarray, sensitivity: float) -> float:
    """Han et al.'s layer threshold ``t = s * std(weights)``.

    The standard deviation is computed over the *currently surviving*
    (non-zero) entries so iterated pruning keeps tightening.
    """
    if sensitivity < 0:
        raise PruningError(f"sensitivity must be >= 0, got {sensitivity}")
    w = np.asarray(weights, dtype=np.float64)
    alive = w[w != 0.0]
    if alive.size == 0:
        return 0.0
    return float(sensitivity * alive.std())


def threshold_mask(weights: np.ndarray, threshold: float) -> np.ndarray:
    """Mask keeping entries with ``|w| >= threshold``."""
    if threshold < 0:
        raise PruningError(f"threshold must be >= 0, got {threshold}")
    w = np.asarray(weights, dtype=np.float64)
    return (np.abs(w) >= threshold).astype(np.float64)
