"""Magnitude pruning of neural rankers.

Implements the element-wise pruning machinery of Sections 2.3 and 5.2:

* :mod:`repro.pruning.masks` — binary-mask construction (level- and
  threshold-based magnitude criteria).
* :mod:`repro.pruning.magnitude` — the two pruner families: *level*
  pruning (explicit sparsity target) and Distiller-style *threshold*
  pruning (``t = s * sigma`` with the threshold held fixed while
  fine-tuning pulls surviving weights toward the centre of the
  distribution).
* :mod:`repro.pruning.sensitivity` — static and dynamic per-layer
  sensitivity analysis (Fig. 10).
* :mod:`repro.pruning.pipeline` — the paper's early-layers
  efficiency-oriented pruning: aggressively sparsify the *first* layer
  (the dominant cost, and the layer where pruning regularizes) while
  fine-tuning everything against the teacher.
"""

from repro.pruning.masks import (
    column_block_mask,
    level_mask,
    mask_sparsity,
    threshold_from_sigma,
    threshold_mask,
)
from repro.pruning.magnitude import ColumnBlockPruner, LevelPruner, ThresholdPruner
from repro.pruning.schedule import LinearSchedule, PolynomialSchedule
from repro.pruning.sensitivity import (
    SensitivityResult,
    dynamic_sensitivity,
    static_sensitivity,
)
from repro.pruning.pipeline import FirstLayerPruningConfig, FirstLayerPruner

__all__ = [
    "column_block_mask",
    "level_mask",
    "threshold_mask",
    "threshold_from_sigma",
    "mask_sparsity",
    "ColumnBlockPruner",
    "LevelPruner",
    "ThresholdPruner",
    "LinearSchedule",
    "PolynomialSchedule",
    "SensitivityResult",
    "static_sensitivity",
    "dynamic_sensitivity",
    "FirstLayerPruningConfig",
    "FirstLayerPruner",
]
