"""Magnitude pruners operating on :class:`Linear` layers.

Both pruners update the layer's binary mask in place; masks are
*cumulative* — an entry pruned once never returns (Han et al.'s
train-prune-retrain procedure trains only the surviving connections).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PruningError
from repro.nn.layers import Linear
from repro.pruning.masks import (
    column_block_mask,
    level_mask,
    threshold_from_sigma,
    threshold_mask,
)


class LevelPruner:
    """Explicit-sparsity magnitude pruning.

    ``apply(layer)`` prunes ``layer`` to the target sparsity; with
    ``schedule`` steps the target can be reached gradually (Han et al.
    report that ramping sparsity with interleaved retraining beats
    one-shot pruning).
    """

    def __init__(self, target_sparsity: float) -> None:
        if not 0.0 <= target_sparsity < 1.0:
            raise PruningError(
                f"target_sparsity must be in [0, 1), got {target_sparsity}"
            )
        self.target_sparsity = target_sparsity

    def apply(self, layer: Linear, fraction_of_target: float = 1.0) -> float:
        """Prune to ``fraction_of_target * target``; returns the sparsity."""
        if not 0.0 < fraction_of_target <= 1.0:
            raise PruningError(
                f"fraction_of_target must be in (0, 1], got {fraction_of_target}"
            )
        sparsity = self.target_sparsity * fraction_of_target
        mask = level_mask(layer.weight.data, sparsity)
        if layer.mask is not None:
            mask = mask * layer.mask  # cumulative
        layer.set_mask(mask)
        return layer.sparsity()


class ColumnBlockPruner:
    """Structured magnitude pruning of whole aligned column groups.

    Unstructured level pruning leaves scattered singletons that scalar
    CSR must gather one at a time; this pruner zeroes entire aligned
    groups of ``block_cols`` input columns (weakest aggregate |w|
    first), so the survivors regroup into fully-dense ``r x
    block_cols`` tiles (fill 1.0) for the block-CSR kernels — the
    structure the paper's LIBXSMM micro-kernels need to vectorize
    (Section 4.3).  Because whole groups are pruned, the achieved
    sparsity is the largest multiple of a group's entry share not
    exceeding the target.
    """

    def __init__(self, target_sparsity: float, block_cols: int = 8) -> None:
        if not 0.0 <= target_sparsity < 1.0:
            raise PruningError(
                f"target_sparsity must be in [0, 1), got {target_sparsity}"
            )
        if block_cols < 1:
            raise PruningError(f"block_cols must be >= 1, got {block_cols}")
        self.target_sparsity = target_sparsity
        self.block_cols = block_cols

    def apply(self, layer: Linear, fraction_of_target: float = 1.0) -> float:
        """Prune to ``fraction_of_target * target``; returns the sparsity."""
        if not 0.0 < fraction_of_target <= 1.0:
            raise PruningError(
                f"fraction_of_target must be in (0, 1], got {fraction_of_target}"
            )
        sparsity = self.target_sparsity * fraction_of_target
        mask = column_block_mask(layer.weight.data, sparsity, self.block_cols)
        if layer.mask is not None:
            mask = mask * layer.mask  # cumulative
        layer.set_mask(mask)
        return layer.sparsity()


class ThresholdPruner:
    """Distiller-style fixed-threshold magnitude pruning.

    The threshold ``t = s * sigma`` is computed once from the initial
    weight distribution and then *held fixed*: as fine-tuning pulls the
    surviving weights toward the centre of the distribution, more of them
    cross the threshold on subsequent :meth:`apply` calls, gradually
    raising sparsity (exactly the Distiller behaviour the paper adopts,
    Section 2.3).
    """

    def __init__(self, sensitivity: float, max_sparsity: float = 0.995) -> None:
        if sensitivity <= 0:
            raise PruningError(f"sensitivity must be > 0, got {sensitivity}")
        if not 0.0 < max_sparsity <= 1.0:
            raise PruningError(
                f"max_sparsity must be in (0, 1], got {max_sparsity}"
            )
        self.sensitivity = sensitivity
        self.max_sparsity = max_sparsity
        self.threshold_: float | None = None

    def apply(self, layer: Linear) -> float:
        """Prune ``layer`` below the (fixed) threshold; returns sparsity.

        Sparsity is capped at ``max_sparsity``: when fine-tuning pulls so
        many weights under the threshold that the layer would die, the
        largest-magnitude survivors are kept instead (the paper's final
        model keeps ~1.3% of first-layer weights alive).
        """
        if self.threshold_ is None:
            self.threshold_ = threshold_from_sigma(
                layer.weight.data, self.sensitivity
            )
        mask = threshold_mask(layer.weight.data, self.threshold_)
        if layer.mask is not None:
            mask = mask * layer.mask
        if float(np.mean(mask == 0.0)) > self.max_sparsity:
            floor_mask = level_mask(layer.weight.data, self.max_sparsity)
            mask = np.maximum(mask, floor_mask)
            if layer.mask is not None:
                mask = mask * layer.mask
        layer.set_mask(mask)
        return layer.sparsity()

    def expected_one_step_sparsity(self, layer: Linear) -> float:
        """Gaussian estimate: P(|w| < s*sigma), ~68% at s = 1."""
        from scipy.stats import norm

        return float(2.0 * norm.cdf(self.sensitivity) - 1.0)
