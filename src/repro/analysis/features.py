"""Feature-selection analysis of pruned first layers.

The first layer of a pruned student is an ``l_1 x f`` matrix with ~1% of
its entries alive; each surviving weight connects one input feature to
one hidden unit.  Counting survivors per input column gives the
network's implicit feature selection, which Section 5.2 argues matches
"the essential combinations of input features" — i.e. the features the
teacher forest splits on most.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.distill.student import DistilledStudent
from repro.forest.ensemble import TreeEnsemble
from repro.nn.network import FeedForwardNetwork


def first_layer_feature_usage(
    model: DistilledStudent | FeedForwardNetwork,
) -> np.ndarray:
    """Surviving first-layer weights per input feature.

    Returns an ``(n_features,)`` count vector; for an unpruned layer every
    feature is used by every hidden unit.
    """
    network = model.network if isinstance(model, DistilledStudent) else model
    weights = network.first_layer.weight.data
    return (weights != 0.0).sum(axis=0).astype(np.float64)


def feature_selection_agreement(
    student: DistilledStudent | FeedForwardNetwork,
    forest: TreeEnsemble,
) -> float:
    """Spearman correlation between student usage and forest importance.

    A strongly positive value confirms the paper's claim that the pruned
    first layer keeps exactly the features the tree ensemble relies on.
    Returns ``nan`` when either signal is constant (e.g. an unpruned
    layer uses all features equally).
    """
    usage = first_layer_feature_usage(student)
    importance = forest.feature_importance()
    if len(usage) != len(importance):
        raise ValueError(
            f"student has {len(usage)} input features, forest has "
            f"{len(importance)}"
        )
    if np.all(usage == usage[0]) or np.all(importance == importance[0]):
        return float("nan")
    rho, _ = stats.spearmanr(usage, importance)
    return float(rho)


def top_feature_overlap(
    student: DistilledStudent | FeedForwardNetwork,
    forest: TreeEnsemble,
    k: int = 20,
) -> float:
    """Fraction of the forest's top-k features kept by the pruned layer.

    "Kept" means at least one surviving first-layer weight touches the
    feature.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    usage = first_layer_feature_usage(student)
    importance = forest.feature_importance()
    top = np.argsort(-importance)[:k]
    return float(np.mean(usage[top] > 0))
