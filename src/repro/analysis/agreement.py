"""Per-query ranking agreement between two scorers.

Distillation quality is usually tracked through NDCG, but the directly
optimized quantity is agreement with the teacher's *ordering*; this
module measures it with Kendall's tau averaged over queries — a useful
diagnostic for how much of a student's quality gap is approximation
error versus metric noise.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.datasets.base import LtrDataset
from repro.utils.validation import check_array_1d


def score_agreement(
    dataset: LtrDataset,
    scores_a,
    scores_b,
) -> float:
    """Mean per-query Kendall's tau between two score vectors.

    Queries with fewer than two documents (where tau is undefined) are
    skipped; returns ``nan`` if no query qualifies.
    """
    a = check_array_1d(scores_a, "scores_a")
    b = check_array_1d(scores_b, "scores_b")
    if len(a) != dataset.n_docs or len(b) != dataset.n_docs:
        raise ValueError("score vectors must cover every dataset row")
    taus = []
    for qi in range(dataset.n_queries):
        sl = dataset.query_slice(qi)
        if sl.stop - sl.start < 2:
            continue
        tau, _ = stats.kendalltau(a[sl], b[sl])
        if not np.isnan(tau):
            taus.append(tau)
    return float(np.mean(taus)) if taus else float("nan")
