"""Model introspection and cross-family analysis.

Tools for studying *what* the compressed models learned, centred on the
paper's Section 5.2 observation that first-layer sparsification "selects
just the essential combinations of input features":

* :func:`first_layer_feature_usage` — how many surviving first-layer
  weights touch each input feature;
* :func:`feature_selection_agreement` — rank agreement between the
  pruned student's feature usage and the teacher forest's split-based
  feature importance;
* :func:`score_agreement` — per-query Kendall-style agreement between
  two rankers' orderings.
"""

from repro.analysis.features import (
    feature_selection_agreement,
    first_layer_feature_usage,
    top_feature_overlap,
)
from repro.analysis.agreement import score_agreement

__all__ = [
    "first_layer_feature_usage",
    "feature_selection_agreement",
    "top_feature_overlap",
    "score_agreement",
]
