"""Loss functions.

Distillation by scores approximation uses the mean squared error between
the student's predictions and the teacher's scores (Section 3); only MSE
is needed by the paper's pipeline.
"""

from __future__ import annotations

import numpy as np


class MseLoss:
    """Mean squared error ``mean((pred - target)^2)``."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        diff = predictions - targets
        self._diff = diff
        return float(np.mean(diff * diff))

    def backward(self) -> np.ndarray:
        """Gradient of the loss w.r.t. the predictions."""
        if not hasattr(self, "_diff"):
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
