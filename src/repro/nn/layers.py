"""Neural-network layers with explicit forward/backward passes.

Every layer implements ``forward(x, training)`` and ``backward(grad)``;
parameterized layers expose :class:`Parameter` objects whose ``grad`` is
accumulated by ``backward`` and consumed by an optimizer.

:class:`Linear` additionally supports a binary ``mask`` on its weight —
the hook used by magnitude pruning: masked entries are zeroed after every
forward re-application, and their gradient contribution is discarded, so
fine-tuning trains only the surviving weights (Han et al.).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class Parameter:
    """A trainable tensor and its accumulated gradient."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


class Layer:
    """Base layer protocol."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []


class Linear(Layer):
    """Fully-connected layer ``y = x @ W.T + b``.

    Weight shape is ``(out_features, in_features)`` — the ``m x k`` weight
    matrix of the paper's timing analysis.  Initialization is Kaiming
    uniform, appropriate for the ReLU-family activations used.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got {in_features}, {out_features}"
            )
        rng = ensure_rng(seed)
        bound = float(np.sqrt(6.0 / in_features))
        self.weight = Parameter(
            rng.uniform(-bound, bound, size=(out_features, in_features))
        )
        self.bias = Parameter(np.zeros(out_features))
        self.mask: np.ndarray | None = None
        self._input: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    # ------------------------------------------------------------------
    def set_mask(self, mask: np.ndarray | None) -> None:
        """Install (or clear) a binary pruning mask and apply it."""
        if mask is None:
            self.mask = None
            return
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != self.weight.shape:
            raise ValueError(
                f"mask shape {mask.shape} != weight shape {self.weight.shape}"
            )
        self.mask = mask
        self.apply_mask()

    def apply_mask(self) -> None:
        """Re-zero masked weights (after an optimizer step)."""
        if self.mask is not None:
            self.weight.data *= self.mask

    def sparsity(self) -> float:
        """Fraction of exactly-zero weights."""
        return float(np.mean(self.weight.data == 0.0))

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input = x if training else None
        return x @ self.weight.data.T + self.bias.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called without a training forward")
        gw = grad.T @ self._input
        if self.mask is not None:
            gw *= self.mask
        self.weight.grad += gw
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._active: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.maximum(x, 0.0)
        self._active = (x > 0.0) if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._active is None:
            raise RuntimeError("backward called without a training forward")
        return grad * self._active


class ReLU6(Layer):
    """Clipped rectifier ``min(max(x, 0), 6)`` (the paper's activation)."""

    def __init__(self) -> None:
        self._active: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.minimum(np.maximum(x, 0.0), 6.0)
        self._active = ((x > 0.0) & (x < 6.0)) if training else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._active is None:
            raise RuntimeError("backward called without a training forward")
        return grad * self._active


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    The paper applies dropout (rate 0.1 on Istella-S) only after the
    first layer.
    """

    def __init__(
        self, rate: float, seed: int | np.random.Generator | None = None
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = ensure_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
