"""Learning-rate schedules.

The paper scales the learning rate by ``gamma`` at fixed epochs
(``gamma_step``): 0.1 at epochs {50, 80} on MSN30K, 0.5 at
{90, 130, 180} on Istella-S (Table 9).  :class:`MultiStepLr` implements
exactly this schedule.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.nn.optim import Optimizer


class MultiStepLr:
    """Multiply the optimizer's lr by ``gamma`` at each milestone epoch."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float
    ) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        ms = sorted(int(m) for m in milestones)
        if any(m <= 0 for m in ms):
            raise ValueError(f"milestones must be positive epochs, got {milestones}")
        self.optimizer = optimizer
        self.milestones = ms
        self.gamma = gamma
        self._epoch = 0

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr

    def step(self) -> None:
        """Advance one epoch; apply the decay if a milestone is crossed."""
        self._epoch += 1
        if self._epoch in self.milestones:
            self.optimizer.lr *= self.gamma
