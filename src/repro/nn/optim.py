"""Gradient-descent optimizers.

The paper trains and prunes with Adam (lr 0.001, no weight decay,
Section 6.1); plain SGD with momentum is included as a baseline.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class Sgd(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        b1, b2 = betas
        if not 0.0 <= b1 < 1.0 or not 0.0 <= b2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
