"""Post-training weight quantization (the paper's stated future work).

Section 7: "As future work, we intend to apply different compression
methods such as quantization ... to further improve the efficiency of
our neural models."  This module implements the standard symmetric
per-layer int8 scheme as that extension:

* each linear layer's weights are quantized to ``q = round(w / scale)``
  with ``scale = max|w| / 127`` (symmetric, zero-point 0, so sparsity is
  preserved: pruned zeros stay exactly zero);
* inference dequantizes on the fly (numpy has no int8 GEMM), so the
  quality impact of the precision loss is measured faithfully while the
  *time* benefit is modeled: int8 operands quarter the memory traffic
  and double the SIMD lane count, which the time-predictor helper
  accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.network import FeedForwardNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.distill.student import DistilledStudent


@dataclass(frozen=True)
class QuantizedTensor:
    """Symmetric integer quantization of one weight matrix."""

    values: np.ndarray  # int8 (bits <= 8) or int16
    scale: float

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def nbytes(self) -> int:
        return self.values.size * self.values.itemsize

    def sparsity(self) -> float:
        """Fraction of exact zeros (pruning survives quantization)."""
        return float(np.mean(self.values == 0))


def quantize_tensor(weights: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric per-tensor quantization to ``bits`` (2..16) bits.

    Up to 8 bits the codes are stored as int8; 9..16 bits store int16
    (the accuracy-sensitive-layer width the compiled int16 kernel uses).
    """
    if not 2 <= bits <= 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    w = np.asarray(weights, dtype=np.float64)
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.abs(w).max())
    scale = max_abs / qmax if max_abs > 0 else 1.0
    store = np.int8 if bits <= 8 else np.int16
    q = np.clip(np.round(w / scale), -qmax, qmax).astype(store)
    return QuantizedTensor(values=q, scale=scale)


def quantization_error(weights: np.ndarray, bits: int = 8) -> float:
    """RMS relative error introduced by quantizing ``weights``."""
    w = np.asarray(weights, dtype=np.float64)
    back = quantize_tensor(w, bits).dequantize()
    denom = float(np.sqrt(np.mean(w * w))) or 1.0
    return float(np.sqrt(np.mean((w - back) ** 2)) / denom)


def quantize_network(
    network: FeedForwardNetwork, bits: int = 8
) -> FeedForwardNetwork:
    """Return a copy of ``network`` with fake-quantized weights.

    Weights are replaced by their dequantized int8 representation
    ("fake quantization"), so standard inference measures exactly the
    accuracy an int8 engine would see.  Biases stay in full precision,
    as deployed int8 engines keep them in int32/fp32.
    """
    twin = network.clone()
    for linear in twin.linears:
        q = quantize_tensor(linear.weight.data, bits)
        linear.weight.data = q.dequantize()
        linear.apply_mask()
    return twin


def quantize_student(student: "DistilledStudent", bits: int = 8) -> "DistilledStudent":
    """Quantized copy of a distilled student (normalizer shared)."""
    from repro.distill.student import DistilledStudent

    return DistilledStudent(
        quantize_network(student.network, bits),
        student.normalizer,
        teacher_description=student.teacher_description + f" (int{bits})",
    )


def quantized_speedup_estimate(
    network: FeedForwardNetwork | None = None,
    *,
    simd_bits: int = 256,
    fp_bits: int = 32,
    int_bits: int = 8,
    bits_per_layer=None,
) -> float:
    """Upper-bound kernel speed-up from wider integer SIMD lanes.

    Without a network this is the raw lane ratio (an AVX2 register
    holds 4x more int8 lanes than fp32 lanes).  With a ``network`` the
    ceiling is weighted by the *actual per-layer scale* of the model:
    each linear layer contributes its dense FLOPs at its own lane ratio,
    so a model whose wide or accuracy-sensitive layers run int16 (or
    stay float — pass the compiled plan's per-layer ``bits``, with
    ``None``/``0`` for float layers, as ``bits_per_layer``) no longer
    inherits the uniform global estimate.  Real engines see a fraction
    of this because of quantize/dequantize overhead, so the estimate is
    a *ceiling* on measured kernel speed-ups (regression-tested against
    the compiled int8 kernels).
    """
    if fp_bits % int_bits != 0:
        raise ValueError("fp_bits must be a multiple of int_bits")
    del simd_bits  # lane ratio is independent of the register width
    if network is None:
        return fp_bits / int_bits
    layers = network.linears
    if bits_per_layer is None:
        bits_list = [int_bits] * len(layers)
    else:
        bits_list = list(bits_per_layer)
        if len(bits_list) != len(layers):
            raise ValueError(
                f"bits_per_layer has {len(bits_list)} entries for a "
                f"{len(layers)}-layer network"
            )
    fp_cost = 0.0
    int_cost = 0.0
    for linear, bits in zip(layers, bits_list):
        flops = 2.0 * linear.in_features * linear.out_features
        fp_cost += flops
        ratio = fp_bits / bits if bits else 1.0
        int_cost += flops / ratio
    if int_cost <= 0.0:
        return 1.0
    return fp_cost / int_cost
