"""Mini-batch training loop.

A :class:`Trainer` runs epochs of MSE regression over a feature/target
pair, with a pluggable ``batch_provider`` so the distillation step can
compose every batch half from real documents and half from augmented
split-point samples (Section 3).  After every optimizer step the
network's pruning masks are re-applied, so pruned weights stay at zero
during fine-tuning (Han et al.).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.nn.losses import MseLoss
from repro.nn.network import FeedForwardNetwork
from repro.nn.optim import Adam, Optimizer
from repro.nn.schedulers import MultiStepLr
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array_1d, check_array_2d

#: Returns one (features, targets) batch.
BatchProvider = Callable[[np.random.Generator, int], tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class TrainingConfig:
    """Epochs, batch size and LR schedule of one training phase."""

    epochs: int = 100
    batch_size: int = 256
    learning_rate: float = 0.001
    lr_gamma: float = 0.1
    lr_milestones: tuple[int, ...] = ()
    #: Global gradient-norm clip; stabilizes wide first layers against
    #: the occasional extreme augmented sample.  None disables.
    grad_clip_norm: float | None = 10.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.grad_clip_norm is not None and self.grad_clip_norm <= 0:
            raise ValueError(
                f"grad_clip_norm must be positive or None, got "
                f"{self.grad_clip_norm}"
            )


@dataclass
class FitHistory:
    """Per-epoch loss trace (and optional validation metric)."""

    train_loss: list[float] = field(default_factory=list)
    valid_metric: list[float] = field(default_factory=list)


class Trainer:
    """Mini-batch MSE trainer with mask re-application.

    Parameters
    ----------
    network:
        The model to train.
    config:
        Epochs / batch size / LR schedule.
    optimizer:
        Defaults to Adam with the configured learning rate, matching the
        paper (Adam, lr 0.001, no weight decay).
    """

    def __init__(
        self,
        network: FeedForwardNetwork,
        config: TrainingConfig,
        optimizer: Optimizer | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.network = network
        self.config = config
        self.optimizer = optimizer or Adam(
            network.parameters(), lr=config.learning_rate
        )
        self.scheduler = (
            MultiStepLr(self.optimizer, config.lr_milestones, config.lr_gamma)
            if config.lr_milestones
            else None
        )
        self.loss = MseLoss()
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray | None = None,
        targets: np.ndarray | None = None,
        *,
        batch_provider: BatchProvider | None = None,
        steps_per_epoch: int | None = None,
        on_epoch_end: Callable[[int, float], None] | None = None,
        valid_fn: Callable[[], float] | None = None,
    ) -> FitHistory:
        """Train the network.

        Either ``(features, targets)`` or a ``batch_provider`` must be
        given.  ``valid_fn`` (if provided) is evaluated after each epoch
        and recorded in the history.
        """
        if batch_provider is None:
            if features is None or targets is None:
                raise ValueError(
                    "either (features, targets) or batch_provider is required"
                )
            x = check_array_2d(features, "features")
            y = check_array_1d(targets, "targets")
            if len(x) != len(y):
                raise ValueError("features and targets must have equal length")
            batch_provider = self._array_provider(x, y)
            default_steps = max(1, len(x) // self.config.batch_size)
        else:
            default_steps = 100
        steps = steps_per_epoch or default_steps

        history = FitHistory()
        # Resolved once so the per-epoch accounting in the loop is two
        # attribute calls, not registry lookups.
        arch = self.network.describe()
        epochs_total = obs.counter("nn.epochs", arch=arch)
        loss_gauge = obs.gauge("nn.train_loss", arch=arch)
        with obs.span(
            "nn.fit", arch=arch, epochs=self.config.epochs, steps=steps
        ):
            for epoch in range(self.config.epochs):
                epoch_loss = 0.0
                for _ in range(steps):
                    xb, yb = batch_provider(self._rng, self.config.batch_size)
                    epoch_loss += self._train_step(xb, yb)
                epoch_loss /= steps
                history.train_loss.append(epoch_loss)
                epochs_total.inc()
                loss_gauge.set(epoch_loss)
                if self.scheduler is not None:
                    self.scheduler.step()
                if valid_fn is not None:
                    history.valid_metric.append(float(valid_fn()))
                if on_epoch_end is not None:
                    on_epoch_end(epoch, epoch_loss)
        return history

    def _train_step(self, xb: np.ndarray, yb: np.ndarray) -> float:
        net = self.network
        net.zero_grad()
        pred = net.forward(xb, training=True)
        loss = self.loss.forward(pred, yb)
        net.backward(self.loss.backward())
        self._clip_gradients()
        self.optimizer.step()
        net.apply_masks()
        return loss

    def _clip_gradients(self) -> None:
        max_norm = self.config.grad_clip_norm
        if max_norm is None:
            return
        params = self.network.parameters()
        total = float(
            np.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in params))
        )
        if total > max_norm:
            scale = max_norm / total
            for p in params:
                p.grad *= scale

    @staticmethod
    def _array_provider(x: np.ndarray, y: np.ndarray) -> BatchProvider:
        def provider(
            rng: np.random.Generator, batch_size: int
        ) -> tuple[np.ndarray, np.ndarray]:
            idx = rng.integers(0, len(x), size=min(batch_size, len(x)))
            return x[idx], y[idx]

        return provider
