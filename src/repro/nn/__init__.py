"""Feed-forward neural networks in pure numpy.

Replaces the PyTorch dependency of the paper with an explicit
forward/backward stack sufficient for its models: fully-connected layers,
ReLU / ReLU6 activations (the paper uses ReLU6 after every linear layer
except the last), dropout after the first layer, MSE loss, the Adam
optimizer with multi-step learning-rate decay, and a mini-batch trainer
whose batch composition is pluggable (the distillation step mixes real
and augmented samples every batch).
"""

from repro.nn.layers import Dropout, Linear, Parameter, ReLU, ReLU6
from repro.nn.network import FeedForwardNetwork
from repro.nn.losses import MseLoss
from repro.nn.optim import Adam, Sgd
from repro.nn.schedulers import MultiStepLr
from repro.nn.training import Trainer, TrainingConfig
from repro.nn.quantization import (
    QuantizedTensor,
    quantization_error,
    quantize_network,
    quantize_student,
    quantize_tensor,
)

__all__ = [
    "Parameter",
    "Linear",
    "ReLU",
    "ReLU6",
    "Dropout",
    "FeedForwardNetwork",
    "MseLoss",
    "Adam",
    "Sgd",
    "MultiStepLr",
    "Trainer",
    "TrainingConfig",
    "QuantizedTensor",
    "quantize_tensor",
    "quantize_network",
    "quantize_student",
    "quantization_error",
]
