"""The feed-forward ranking network.

Architecture follows the paper exactly: for hidden widths
``l_1 x l_2 x ... x l_d`` (the paper's ``400x200x200x100`` notation), the
network is

    input(f) -> Linear(f, l_1) -> [Dropout] -> ReLU6
             -> Linear(l_1, l_2) -> ReLU6 -> ...
             -> Linear(l_{d-1}, l_d) -> ReLU6
             -> Linear(l_d, 1)                      (scoring head)

with ReLU6 after every linear layer except the last, and dropout (if
enabled) only after the first layer (Section 6.1).
"""

from __future__ import annotations

import json

import numpy as np

from repro.exceptions import ArchitectureError
from repro.nn.layers import Dropout, Layer, Linear, Parameter, ReLU6
from repro.utils.rng import ensure_rng, spawn
from repro.utils.validation import check_array_2d


class FeedForwardNetwork:
    """An MLP document scorer in the paper's configuration.

    Parameters
    ----------
    input_dim:
        Number of input features ``f``.
    hidden:
        Hidden-layer widths, e.g. ``(400, 200, 200, 100)``.
    dropout:
        Dropout rate after the first layer; 0 disables it.
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        input_dim: int,
        hidden,
        *,
        dropout: float = 0.0,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        hidden = tuple(int(h) for h in hidden)
        if input_dim <= 0:
            raise ArchitectureError(f"input_dim must be positive, got {input_dim}")
        if not hidden or any(h <= 0 for h in hidden):
            raise ArchitectureError(
                f"hidden widths must be positive and non-empty, got {hidden}"
            )
        self.input_dim = input_dim
        self.hidden = hidden
        self.dropout_rate = dropout

        rng = ensure_rng(seed)
        seeds = spawn(rng, len(hidden) + 2)
        self.layers: list[Layer] = []
        self.linears: list[Linear] = []
        dims = (input_dim,) + hidden + (1,)
        for i in range(len(dims) - 1):
            linear = Linear(dims[i], dims[i + 1], seed=seeds[i])
            self.layers.append(linear)
            self.linears.append(linear)
            is_last = i == len(dims) - 2
            if not is_last:
                if i == 0 and dropout > 0.0:
                    self.layers.append(Dropout(dropout, seed=seeds[-1]))
                self.layers.append(ReLU6())
        #: Reusable chunk staging buffer for :meth:`predict` (shape-keyed
        #: scratch, never weight data).
        self._chunk_buffer: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def first_layer(self) -> Linear:
        """The ``l_1 x f`` layer targeted by efficiency-oriented pruning."""
        return self.linears[0]

    @property
    def n_layers(self) -> int:
        """Number of linear layers, including the scoring head."""
        return len(self.linears)

    def describe(self) -> str:
        """Architecture in the paper's ``a x b x c`` notation."""
        return "x".join(str(h) for h in self.hidden)

    def n_parameters(self) -> int:
        """Total trainable parameter count (weights + biases)."""
        return sum(p.data.size for p in self.parameters())

    def flops_per_doc(self, *, count_sparse_as_zero: bool = False) -> int:
        """Multiply-add FLOPs of one forward pass (Eq. 3's operation count).

        With ``count_sparse_as_zero`` the pruned (masked-out) weights are
        excluded — the reduced count ``2 * nnz`` the sparse kernel
        actually performs.
        """
        total = 0
        for linear in self.linears:
            if count_sparse_as_zero:
                total += 2 * int(np.count_nonzero(linear.weight.data))
            else:
                total += 2 * linear.weight.data.size
        return total

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def apply_masks(self) -> None:
        """Re-apply all pruning masks (after an optimizer step)."""
        for linear in self.linears:
            linear.apply_mask()

    def layer_sparsities(self) -> list[float]:
        """Fraction of zero weights per linear layer."""
        return [linear.sparsity() for linear in self.linears]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass; returns raw scores of shape ``(n,)``."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out[:, 0]

    def backward(self, grad_scores: np.ndarray) -> None:
        """Backpropagate ``dLoss/dscore`` through the network."""
        grad = grad_scores[:, None]
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def predict(self, features, batch_size: int = 4096) -> np.ndarray:
        """Inference over a (possibly large) feature matrix.

        Chunks are staged through one preallocated C-contiguous buffer,
        reused across chunks *and* across calls with the same
        ``batch_size`` — repeated fixed-batch predicts are
        allocation-stable apart from the returned score vector.  The
        buffer holds feature copies only (never weights), so mutating
        the network between calls — the training loop's access pattern —
        stays safe.
        """
        x = check_array_2d(features, "features")
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {x.shape[1]}"
            )
        rows = min(len(x), batch_size)
        if (
            self._chunk_buffer is None
            or self._chunk_buffer.shape[0] < rows
            or self._chunk_buffer.shape[1] != self.input_dim
        ):
            self._chunk_buffer = np.empty(
                (rows, self.input_dim), dtype=np.float64
            )
        out = np.empty(len(x), dtype=np.float64)
        for start in range(0, len(x), batch_size):
            n = min(batch_size, len(x) - start)
            chunk = self._chunk_buffer[:n]
            np.copyto(chunk, x[start : start + n])
            scores = self.forward(chunk, training=False)
            if scores.dtype != np.float64:
                raise TypeError(
                    f"forward produced {scores.dtype}, expected float64 — "
                    "a layer dropped precision"
                )
            out[start : start + n] = scores
        return out

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copies of all linear weights/biases (for snapshots)."""
        return [
            {"weight": l.weight.data.copy(), "bias": l.bias.data.copy()}
            for l in self.linears
        ]

    def set_weights(self, state: list[dict[str, np.ndarray]]) -> None:
        """Restore weights captured by :meth:`get_weights`."""
        if len(state) != len(self.linears):
            raise ValueError(
                f"state has {len(state)} layers, network has {len(self.linears)}"
            )
        for linear, entry in zip(self.linears, state):
            if entry["weight"].shape != linear.weight.shape:
                raise ValueError("weight shape mismatch in set_weights")
            linear.weight.data = entry["weight"].copy()
            linear.bias.data = entry["bias"].copy()

    def clone(self) -> "FeedForwardNetwork":
        """Deep copy with the same architecture, weights and masks."""
        twin = FeedForwardNetwork(
            self.input_dim, self.hidden, dropout=self.dropout_rate, seed=0
        )
        twin.set_weights(self.get_weights())
        for src, dst in zip(self.linears, twin.linears):
            dst.set_mask(None if src.mask is None else src.mask.copy())
        return twin

    def save(self, path) -> None:
        """Persist architecture + weights as JSON."""
        payload = {
            "input_dim": self.input_dim,
            "hidden": list(self.hidden),
            "dropout": self.dropout_rate,
            "layers": [
                {
                    "weight": l.weight.data.tolist(),
                    "bias": l.bias.data.tolist(),
                    "mask": None if l.mask is None else l.mask.tolist(),
                }
                for l in self.linears
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path) -> "FeedForwardNetwork":
        """Load a network written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        net = cls(
            payload["input_dim"],
            payload["hidden"],
            dropout=payload.get("dropout", 0.0),
            seed=0,
        )
        for linear, entry in zip(net.linears, payload["layers"]):
            linear.weight.data = np.asarray(entry["weight"], dtype=np.float64)
            linear.bias.data = np.asarray(entry["bias"], dtype=np.float64)
            if entry.get("mask") is not None:
                linear.set_mask(np.asarray(entry["mask"]))
        return net
