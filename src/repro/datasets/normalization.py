"""Z-normalization of feature matrices.

Cohen et al. (and the paper, Section 3) normalize every feature to zero
mean and unit variance before feeding it to the network — one of the two
ingredients (with data augmentation) that make plain MLPs competitive on
handcrafted LtR features.  Statistics are always fitted on the training
partition and then applied unchanged to validation/test data.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import NotFittedError
from repro.utils.validation import check_array_2d


class ZNormalizer:
    """Per-feature standardization ``(x - mean) / std``.

    Constant features (zero variance on the fit data) are passed through
    centred but unscaled, so no division by zero occurs.

    Parameters
    ----------
    clip_sigma:
        Optional symmetric clamp (in standard deviations) applied after
        standardization.  Web-search features are heavy-tailed, and the
        augmentation step can emit extreme split-point midpoints; a clamp
        of e.g. 10 keeps such outliers from saturating ReLU6 units
        without touching the bulk of the distribution.  ``None`` (the
        default, matching the paper) disables clipping.
    """

    def __init__(self, clip_sigma: float | None = None) -> None:
        if clip_sigma is not None and clip_sigma <= 0:
            raise ValueError(f"clip_sigma must be positive, got {clip_sigma}")
        self.clip_sigma = clip_sigma
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, features) -> "ZNormalizer":
        """Estimate per-feature mean and standard deviation."""
        x = check_array_2d(features, "features")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.std_ = std
        return self

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def transform(self, features) -> np.ndarray:
        """Standardize ``features`` with the fitted statistics."""
        if not self.is_fitted:
            raise NotFittedError("ZNormalizer.transform called before fit")
        x = check_array_2d(features, "features")
        if x.shape[1] != len(self.mean_):
            raise ValueError(
                f"expected {len(self.mean_)} features, got {x.shape[1]}"
            )
        z = (x - self.mean_) / self.std_
        if self.clip_sigma is not None:
            np.clip(z, -self.clip_sigma, self.clip_sigma, out=z)
        return z

    def fit_transform(self, features) -> np.ndarray:
        """Fit on ``features`` and return their standardized version."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features) -> np.ndarray:
        """Undo the standardization."""
        if not self.is_fitted:
            raise NotFittedError("ZNormalizer.inverse_transform called before fit")
        x = check_array_2d(features, "features")
        return x * self.std_ + self.mean_

    def transform_dataset(self, dataset: LtrDataset) -> LtrDataset:
        """Return ``dataset`` with its feature matrix standardized."""
        return dataset.with_features(self.transform(dataset.features))
