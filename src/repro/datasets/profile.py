"""Dataset profiling.

Summarizes an :class:`LtrDataset` the way an LtR practitioner inspects a
new collection: query-size distribution, grade marginals, per-feature
statistics (range, variance, cardinality, heavy-tailedness) and simple
hygiene checks (constant features, extreme outliers).  The profile is
what motivates the paper's preprocessing choices — Z-normalization for
nets, quantile binning for trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LtrDataset
from repro.utils.tables import format_table


@dataclass(frozen=True)
class FeatureProfile:
    """Summary statistics of one feature column."""

    index: int
    minimum: float
    maximum: float
    mean: float
    std: float
    n_unique: int
    skewness: float

    @property
    def is_constant(self) -> bool:
        return self.n_unique <= 1

    @property
    def looks_heavy_tailed(self) -> bool:
        """Rule of thumb: |skewness| > 2 suggests a long tail."""
        return abs(self.skewness) > 2.0


@dataclass(frozen=True)
class DatasetProfile:
    """Full profile of a collection."""

    name: str
    n_queries: int
    n_docs: int
    query_sizes_min: int
    query_sizes_mean: float
    query_sizes_max: int
    grade_fractions: tuple[float, ...]
    features: tuple[FeatureProfile, ...]

    @property
    def constant_features(self) -> list[int]:
        return [f.index for f in self.features if f.is_constant]

    @property
    def heavy_tailed_features(self) -> list[int]:
        return [f.index for f in self.features if f.looks_heavy_tailed]

    def render(self, *, max_features: int = 10) -> str:
        """Human-readable multi-section summary."""
        lines = [
            f"Dataset profile: {self.name}",
            f"  queries: {self.n_queries}  docs: {self.n_docs} "
            f"(per query {self.query_sizes_min}/"
            f"{self.query_sizes_mean:.1f}/{self.query_sizes_max})",
            "  grades: "
            + ", ".join(
                f"{g}: {f:.1%}" for g, f in enumerate(self.grade_fractions)
            ),
            f"  constant features: {len(self.constant_features)}",
            f"  heavy-tailed features: {len(self.heavy_tailed_features)}",
            "",
        ]
        shown = self.features[:max_features]
        table = format_table(
            ["feature", "min", "max", "mean", "std", "unique", "skew"],
            [
                (
                    f.index,
                    round(f.minimum, 3),
                    round(f.maximum, 3),
                    round(f.mean, 3),
                    round(f.std, 3),
                    f.n_unique,
                    round(f.skewness, 2),
                )
                for f in shown
            ],
            title=f"First {len(shown)} features",
        )
        return "\n".join(lines) + table


def profile_dataset(dataset: LtrDataset) -> DatasetProfile:
    """Compute the full profile of ``dataset``."""
    x = dataset.features
    sizes = dataset.query_sizes()
    max_grade = dataset.max_label
    counts = np.bincount(dataset.labels, minlength=max_grade + 1)
    fractions = tuple(float(c) / dataset.n_docs for c in counts)

    features = []
    for j in range(dataset.n_features):
        col = x[:, j]
        std = float(col.std())
        if std > 0:
            skew = float(np.mean(((col - col.mean()) / std) ** 3))
        else:
            skew = 0.0
        features.append(
            FeatureProfile(
                index=j,
                minimum=float(col.min()),
                maximum=float(col.max()),
                mean=float(col.mean()),
                std=std,
                n_unique=int(len(np.unique(col))),
                skewness=skew,
            )
        )
    return DatasetProfile(
        name=dataset.name,
        n_queries=dataset.n_queries,
        n_docs=dataset.n_docs,
        query_sizes_min=int(sizes.min()),
        query_sizes_mean=float(sizes.mean()),
        query_sizes_max=int(sizes.max()),
        grade_fractions=fractions,
        features=tuple(features),
    )
