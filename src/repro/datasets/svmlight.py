"""SVMLight / LETOR interchange format.

MSLR-WEB30K and Istella-S ship as plain-text files with one
(query, document) pair per line::

    <label> qid:<qid> <fid>:<value> <fid>:<value> ... # optional comment

Feature ids are 1-based and may be sparse (missing ids read as 0).  The
writer always emits every feature so that round-trips are lossless.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import DatasetFormatError


def _parse_line(line: str, line_no: int) -> tuple[int, int, list[tuple[int, float]]]:
    comment = line.find("#")
    if comment != -1:
        line = line[:comment]
    tokens = line.split()
    if not tokens:
        raise DatasetFormatError(f"line {line_no}: empty data line")
    try:
        label = int(float(tokens[0]))
    except ValueError as exc:
        raise DatasetFormatError(
            f"line {line_no}: invalid label {tokens[0]!r}"
        ) from exc
    if len(tokens) < 2 or not tokens[1].startswith("qid:"):
        raise DatasetFormatError(f"line {line_no}: missing 'qid:' token")
    try:
        qid = int(tokens[1][4:])
    except ValueError as exc:
        raise DatasetFormatError(
            f"line {line_no}: invalid qid {tokens[1]!r}"
        ) from exc
    pairs: list[tuple[int, float]] = []
    for tok in tokens[2:]:
        fid_str, _, val_str = tok.partition(":")
        if not val_str:
            raise DatasetFormatError(
                f"line {line_no}: malformed feature token {tok!r}"
            )
        try:
            fid = int(fid_str)
            val = float(val_str)
        except ValueError as exc:
            raise DatasetFormatError(
                f"line {line_no}: malformed feature token {tok!r}"
            ) from exc
        if fid < 1:
            raise DatasetFormatError(
                f"line {line_no}: feature ids are 1-based, got {fid}"
            )
        pairs.append((fid, val))
    return label, qid, pairs


def load_svmlight(
    path_or_file, *, n_features: int | None = None, name: str | None = None
) -> LtrDataset:
    """Load a LETOR/SVMLight ranking file into an :class:`LtrDataset`.

    Parameters
    ----------
    path_or_file:
        Filesystem path or an open text file object.
    n_features:
        Total feature count; inferred from the largest feature id when
        omitted.
    name:
        Dataset name; defaults to the file basename.
    """
    close = False
    if isinstance(path_or_file, (str, os.PathLike)):
        handle = open(path_or_file, "r", encoding="utf-8")
        close = True
        default_name = os.path.basename(os.fspath(path_or_file))
    else:
        handle = path_or_file
        default_name = getattr(path_or_file, "name", "svmlight")

    labels: list[int] = []
    qids: list[int] = []
    rows: list[list[tuple[int, float]]] = []
    max_fid = 0
    try:
        for line_no, raw in enumerate(handle, start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            label, qid, pairs = _parse_line(stripped, line_no)
            labels.append(label)
            qids.append(qid)
            rows.append(pairs)
            if pairs:
                max_fid = max(max_fid, max(fid for fid, _ in pairs))
    finally:
        if close:
            handle.close()

    if not rows:
        raise DatasetFormatError("file contains no data lines")
    if n_features is None:
        n_features = max_fid
    elif max_fid > n_features:
        raise DatasetFormatError(
            f"file contains feature id {max_fid} > n_features={n_features}"
        )

    x = np.zeros((len(rows), n_features), dtype=np.float64)
    for i, pairs in enumerate(rows):
        for fid, val in pairs:
            x[i, fid - 1] = val
    return LtrDataset(
        features=x,
        labels=np.asarray(labels, dtype=np.int64),
        qids=np.asarray(qids),
        name=name or str(default_name),
    )


def save_svmlight(dataset: LtrDataset, path_or_file) -> None:
    """Write ``dataset`` in LETOR/SVMLight format (all features emitted)."""
    close = False
    if isinstance(path_or_file, (str, os.PathLike)):
        handle = open(path_or_file, "w", encoding="utf-8")
        close = True
    else:
        handle = path_or_file
    try:
        _write_rows(dataset, handle)
    finally:
        if close:
            handle.close()


def _write_rows(dataset: LtrDataset, handle: io.TextIOBase) -> None:
    for i in range(dataset.n_docs):
        feats = " ".join(
            f"{j + 1}:{dataset.features[i, j]:.6g}"
            for j in range(dataset.n_features)
        )
        handle.write(f"{int(dataset.labels[i])} qid:{dataset.qids[i]} {feats}\n")
