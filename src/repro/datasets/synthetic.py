"""Synthetic learning-to-rank datasets.

The real MSLR-WEB30K ("MSN30K") and Istella-S collections are not
downloadable in this environment, so this module generates seeded
surrogates that preserve the structural properties the paper's methods
rely on:

* rows grouped by query, with a realistic spread of documents per query;
* 5-graded relevance labels with the heavy skew towards grade 0 typical of
  web collections;
* a *piecewise-constant* latent relevance function: the ground truth is a
  sum of random threshold stumps over a subset of informative features, so
  that ensembles of regression trees are a strong model family for it and a
  distilled network must genuinely approximate a tree-like function — the
  regime the paper studies;
* handcrafted-feature statistics: a mix of uniform, heavy-tailed and count
  features, some informative, some noise.

Absolute metric values on these surrogates differ from the published ones;
the benchmark harness reproduces the *relationships* between models (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LtrDataset
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic LtR collection.

    Attributes
    ----------
    n_queries, docs_per_query:
        Collection size; the per-query document count is sampled around
        ``docs_per_query`` (Poisson, clipped to at least 8).
    n_features, n_informative:
        Feature-space width and how many features carry relevance signal.
    n_stumps:
        Number of random threshold stumps composing the latent relevance
        function (more stumps = more complex piecewise-constant truth).
    label_fractions:
        Target marginal distribution over grades 0..4, most-common first.
    noise:
        Standard deviation of Gaussian noise added to the latent score
        before discretisation into grades.
    query_shift:
        Scale of per-query shifts applied to informative features; makes
        rankings query-dependent, as in real collections.
    """

    n_queries: int = 1000
    docs_per_query: int = 40
    n_features: int = 136
    n_informative: int = 40
    n_stumps: int = 60
    stump_weight: float = 0.5
    smooth_weight: float = 1.0
    smooth_units: int = 8
    label_fractions: tuple[float, ...] = (0.52, 0.32, 0.13, 0.02, 0.01)
    noise: float = 0.25
    query_shift: float = 0.4
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.n_queries <= 0 or self.docs_per_query <= 0:
            raise ValueError("n_queries and docs_per_query must be positive")
        if not 0 < self.n_informative <= self.n_features:
            raise ValueError(
                "n_informative must be in (0, n_features], got "
                f"{self.n_informative} / {self.n_features}"
            )
        if self.n_stumps <= 0:
            raise ValueError("n_stumps must be positive")
        if self.stump_weight < 0 or self.smooth_weight < 0:
            raise ValueError("stump_weight and smooth_weight must be >= 0")
        if self.stump_weight == 0 and self.smooth_weight == 0:
            raise ValueError("at least one latent component must be active")
        if self.smooth_units <= 0:
            raise ValueError("smooth_units must be positive")
        total = sum(self.label_fractions)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"label_fractions must sum to 1, got {total}")
        if any(f < 0 for f in self.label_fractions):
            raise ValueError("label_fractions must be non-negative")


@dataclass
class _LatentOracle:
    """The ground-truth scoring function.

    A mix of a *piecewise-constant* part (random threshold stumps — the
    regime where tree ensembles excel) and a *smooth* part (a small tanh
    network over the informative features — approximable by both model
    families).  The mix keeps the tree-vs-net quality gap in the paper's
    regime: trees slightly ahead, nets close behind.
    """

    stump_features: np.ndarray
    stump_thresholds: np.ndarray
    stump_weights: np.ndarray
    linear_weights: np.ndarray
    linear_features: np.ndarray
    smooth_in: np.ndarray  # (n_informative, smooth_units)
    smooth_out: np.ndarray  # (smooth_units,)
    stump_weight: float = 0.5
    smooth_weight: float = 1.0

    def score(self, x: np.ndarray) -> np.ndarray:
        above = x[:, self.stump_features] > self.stump_thresholds
        score = self.stump_weight * (above @ self.stump_weights)
        score += x[:, self.linear_features] @ self.linear_weights
        n_informative = self.smooth_in.shape[0]
        hidden = np.tanh(x[:, :n_informative] @ self.smooth_in)
        score += self.smooth_weight * (hidden @ self.smooth_out)
        return score


def _make_oracle(config: SyntheticConfig, rng: np.random.Generator) -> _LatentOracle:
    informative = np.arange(config.n_informative)
    stump_features = rng.choice(informative, size=config.n_stumps, replace=True)
    # Thresholds inside the bulk of the feature distribution so stumps split
    # real mass rather than tails.
    stump_thresholds = rng.uniform(0.15, 0.85, size=config.n_stumps)
    stump_weights = rng.normal(0.0, 1.0, size=config.n_stumps)
    n_linear = max(1, config.n_informative // 4)
    linear_features = rng.choice(informative, size=n_linear, replace=False)
    linear_weights = rng.normal(0.0, 0.3, size=n_linear)
    smooth_in = rng.normal(
        0.0, 1.0, size=(config.n_informative, config.smooth_units)
    ) / np.sqrt(config.n_informative)
    smooth_out = rng.normal(0.0, 1.0, size=config.smooth_units)
    return _LatentOracle(
        stump_features=stump_features,
        stump_thresholds=stump_thresholds,
        stump_weights=stump_weights,
        linear_weights=linear_weights,
        linear_features=linear_features,
        smooth_in=smooth_in,
        smooth_out=smooth_out,
        stump_weight=config.stump_weight,
        smooth_weight=config.smooth_weight,
    )


def _sample_features(
    config: SyntheticConfig, n_docs: int, rng: np.random.Generator
) -> np.ndarray:
    """Mixed-type feature matrix in roughly [0, 1] plus heavy tails."""
    x = rng.uniform(0.0, 1.0, size=(n_docs, config.n_features))
    # A third of the non-informative tail features become heavy-tailed
    # (BM25-like scores) and another chunk become small integer counts, to
    # exercise normalization and binning the way real LtR features do.
    n_noise = config.n_features - config.n_informative
    if n_noise > 0:
        heavy = np.arange(
            config.n_informative, config.n_informative + n_noise // 3
        )
        x[:, heavy] = rng.lognormal(mean=0.0, sigma=1.0, size=(n_docs, len(heavy)))
        counts = np.arange(
            config.n_informative + n_noise // 3,
            config.n_informative + n_noise // 3 + n_noise // 3,
        )
        x[:, counts] = rng.poisson(3.0, size=(n_docs, len(counts))).astype(float)
    return x


def generate_synthetic(
    config: SyntheticConfig, seed: int | np.random.Generator | None = 0
) -> LtrDataset:
    """Generate a synthetic collection according to ``config``.

    The latent document score is ``oracle(x) + query_effect + noise``; the
    grade of each document is obtained by cutting the *global* latent-score
    distribution at the quantiles implied by ``config.label_fractions``, so
    the marginal grade distribution matches the target skew.
    """
    rng = ensure_rng(seed)
    sizes = rng.poisson(config.docs_per_query, size=config.n_queries)
    sizes = np.maximum(sizes, 8)
    n_docs = int(sizes.sum())

    x = _sample_features(config, n_docs, rng)
    oracle = _make_oracle(config, rng)

    qids = np.repeat(np.arange(1, config.n_queries + 1), sizes)
    # Per-query shift on a random subset of informative features: documents
    # of the same query share context, so within-query feature variance is
    # smaller than global variance, as in real query logs.
    shift_features = rng.choice(
        config.n_informative, size=max(1, config.n_informative // 3), replace=False
    )
    query_shifts = rng.normal(
        0.0, config.query_shift, size=(config.n_queries, len(shift_features))
    )
    x[:, shift_features] += np.repeat(query_shifts, sizes, axis=0)

    latent = oracle.score(x)
    latent += rng.normal(0.0, config.noise * latent.std() + 1e-12, size=n_docs)

    # Discretize by global quantiles to match the marginal grade skew.
    fractions = np.asarray(config.label_fractions, dtype=np.float64)
    cut_points = np.quantile(latent, np.cumsum(fractions)[:-1])
    labels = np.searchsorted(cut_points, latent, side="right").astype(np.int64)

    return LtrDataset(features=x, labels=labels, qids=qids, name=config.name)


def make_msn30k_like(
    n_queries: int = 1000,
    docs_per_query: int = 40,
    seed: int | np.random.Generator | None = 0,
) -> LtrDataset:
    """Scaled surrogate of MSLR-WEB30K Fold 1 (136 features, 5 grades).

    The real collection has ~31k queries with ~120 documents each; default
    sizes here are scaled down so the full train/distill/prune pipeline
    runs in CI time.  Pass larger values to approach the original scale.
    """
    config = SyntheticConfig(
        n_queries=n_queries,
        docs_per_query=docs_per_query,
        n_features=136,
        n_informative=40,
        n_stumps=60,
        label_fractions=(0.52, 0.32, 0.13, 0.02, 0.01),
        name="msn30k-like",
    )
    return generate_synthetic(config, seed)


def make_istella_s_like(
    n_queries: int = 1000,
    docs_per_query: int = 30,
    seed: int | np.random.Generator | None = 1,
) -> LtrDataset:
    """Scaled surrogate of Istella-S (220 features, heavier grade-0 skew).

    Istella-S has ~33k queries with ~103 documents each and a much larger
    fraction of irrelevant documents than MSLR; the label skew and a more
    complex latent function (more stumps) reflect the paper's observation
    that this dataset is harder for neural approximators.
    """
    config = SyntheticConfig(
        n_queries=n_queries,
        docs_per_query=docs_per_query,
        n_features=220,
        n_informative=60,
        n_stumps=120,
        # A heavier piecewise-constant share keeps trees ahead of nets on
        # this surrogate, mirroring the paper's finding that Istella-S is
        # "troublesome for neural models".
        stump_weight=0.8,
        smooth_weight=0.8,
        label_fractions=(0.82, 0.10, 0.05, 0.02, 0.01),
        noise=0.3,
        name="istella-s-like",
    )
    return generate_synthetic(config, seed)
