"""Per-query negative subsampling.

Web collections are dominated by irrelevant documents (Istella-S is ~82%
grade 0); a standard LtR preprocessing step keeps every relevant document
but caps the negatives per query, which shrinks training cost with little
quality impact.  This module implements that cap, preserving query
grouping and determinism.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng


def subsample_negatives(
    dataset: LtrDataset,
    max_negatives_per_query: int,
    *,
    relevance_threshold: int = 1,
    seed: int | np.random.Generator | None = 0,
) -> LtrDataset:
    """Cap the number of below-threshold documents in every query.

    All documents with ``label >= relevance_threshold`` are kept; at most
    ``max_negatives_per_query`` of the others survive, sampled uniformly.
    Queries never end up empty (a query of only negatives keeps the cap's
    worth of them, at least one).
    """
    if max_negatives_per_query < 1:
        raise DatasetError(
            f"max_negatives_per_query must be >= 1, got "
            f"{max_negatives_per_query}"
        )
    rng = ensure_rng(seed)
    keep_rows: list[np.ndarray] = []
    for qi in range(dataset.n_queries):
        sl = dataset.query_slice(qi)
        rows = np.arange(sl.start, sl.stop)
        labels = dataset.labels[sl]
        positives = rows[labels >= relevance_threshold]
        negatives = rows[labels < relevance_threshold]
        if len(negatives) > max_negatives_per_query:
            picked = rng.choice(
                negatives, size=max_negatives_per_query, replace=False
            )
            negatives = np.sort(picked)
        keep_rows.append(np.sort(np.concatenate([positives, negatives])))

    rows = np.concatenate(keep_rows)
    out = LtrDataset(
        features=dataset.features[rows],
        labels=dataset.labels[rows],
        qids=dataset.qids[rows],
        name=f"{dataset.name}/neg{max_negatives_per_query}",
    )
    return out
