"""Query-wise dataset splitting.

Both evaluation datasets in the paper are split 60/20/20 into train,
validation and test *by query*: all documents of a query land in the same
partition, since ranking metrics are computed per query.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng


def train_validation_test_split(
    dataset: LtrDataset,
    *,
    train: float = 0.6,
    validation: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    shuffle: bool = True,
) -> tuple[LtrDataset, LtrDataset, LtrDataset]:
    """Split ``dataset`` by query into (train, validation, test).

    Parameters
    ----------
    train, validation:
        Fractions of *queries* for the first two partitions; the remainder
        becomes the test set.  Defaults follow the paper's 60/20/20.
    seed:
        Controls the query permutation when ``shuffle`` is true.
    """
    if not 0 < train < 1 or not 0 < validation < 1:
        raise DatasetError("train and validation fractions must be in (0, 1)")
    if train + validation >= 1.0:
        raise DatasetError(
            f"train + validation must be < 1, got {train + validation}"
        )
    n = dataset.n_queries
    if n < 3:
        raise DatasetError(f"need at least 3 queries to split, got {n}")

    indices = np.arange(n)
    if shuffle:
        ensure_rng(seed).shuffle(indices)

    n_train = max(1, int(round(train * n)))
    n_vali = max(1, int(round(validation * n)))
    if n_train + n_vali >= n:
        n_train = max(1, n - 2)
        n_vali = 1

    train_set = dataset.select_queries(indices[:n_train])
    vali_set = dataset.select_queries(indices[n_train : n_train + n_vali])
    test_set = dataset.select_queries(indices[n_train + n_vali :])
    for part, suffix in ((train_set, "train"), (vali_set, "vali"), (test_set, "test")):
        part.name = f"{dataset.name}/{suffix}"
    return train_set, vali_set, test_set
