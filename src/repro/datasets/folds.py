"""K-fold query partitioning.

MSLR-WEB30K ships as five folds, each a rotation of the same query
partition into train/validation/test; the paper evaluates on Fold 1.
This module reproduces that arrangement for any :class:`LtrDataset`:
queries are split into ``k`` groups, and fold ``i`` uses groups
``i..i+k-3`` for training, ``i+k-2`` for validation and ``i+k-1`` for
test (the LETOR rotation scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class Fold:
    """One train/validation/test rotation."""

    index: int
    train: LtrDataset
    validation: LtrDataset
    test: LtrDataset


def k_fold_splits(
    dataset: LtrDataset,
    k: int = 5,
    *,
    seed: int | np.random.Generator | None = 0,
    shuffle: bool = True,
) -> list[Fold]:
    """All ``k`` LETOR-style fold rotations of ``dataset``.

    Each query appears in exactly one test partition across the folds,
    and every fold trains on ``k - 2`` groups.
    """
    if k < 3:
        raise DatasetError(f"k must be >= 3 (train/vali/test rotation), got {k}")
    if dataset.n_queries < k:
        raise DatasetError(
            f"need at least {k} queries for {k} folds, got {dataset.n_queries}"
        )
    indices = np.arange(dataset.n_queries)
    if shuffle:
        ensure_rng(seed).shuffle(indices)
    groups = np.array_split(indices, k)

    folds = []
    for i in range(k):
        train_groups = [groups[(i + j) % k] for j in range(k - 2)]
        vali_group = groups[(i + k - 2) % k]
        test_group = groups[(i + k - 1) % k]
        train = dataset.select_queries(np.concatenate(train_groups))
        vali = dataset.select_queries(vali_group)
        test = dataset.select_queries(test_group)
        train.name = f"{dataset.name}/fold{i + 1}-train"
        vali.name = f"{dataset.name}/fold{i + 1}-vali"
        test.name = f"{dataset.name}/fold{i + 1}-test"
        folds.append(Fold(index=i + 1, train=train, validation=vali, test=test))
    return folds


def cross_validated_metric(
    folds: list[Fold],
    fit_fn,
    metric_fn,
) -> tuple[float, list[float]]:
    """Mean and per-fold values of a metric across fold rotations.

    Parameters
    ----------
    fit_fn:
        ``fit_fn(train, validation) -> model`` with a ``predict`` method.
    metric_fn:
        ``metric_fn(test_dataset, scores) -> float``.
    """
    if not folds:
        raise DatasetError("no folds given")
    values = []
    for fold in folds:
        model = fit_fn(fold.train, fold.validation)
        scores = model.predict(fold.test.features)
        values.append(float(metric_fn(fold.test, scores)))
    return float(np.mean(values)), values
