"""Learning-to-rank datasets.

The paper evaluates on MSLR-WEB30K Fold 1 ("MSN30K", 136 features, ~30k
queries) and Istella-S (220 features, ~33k queries), both with 5-graded
relevance labels and 60/20/20 train/validation/test splits.  Those datasets
cannot be downloaded in this environment, so :mod:`repro.datasets.synthetic`
generates seeded surrogates with the same schema, and
:mod:`repro.datasets.svmlight` reads/writes the standard LETOR interchange
format so real data can be dropped in when available.
"""

from repro.datasets.base import LtrDataset
from repro.datasets.svmlight import load_svmlight, save_svmlight
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_synthetic,
    make_istella_s_like,
    make_msn30k_like,
)
from repro.datasets.splits import train_validation_test_split
from repro.datasets.folds import Fold, cross_validated_metric, k_fold_splits
from repro.datasets.normalization import ZNormalizer
from repro.datasets.profile import DatasetProfile, profile_dataset
from repro.datasets.sampling import subsample_negatives

__all__ = [
    "LtrDataset",
    "load_svmlight",
    "save_svmlight",
    "SyntheticConfig",
    "generate_synthetic",
    "make_msn30k_like",
    "make_istella_s_like",
    "train_validation_test_split",
    "Fold",
    "k_fold_splits",
    "cross_validated_metric",
    "ZNormalizer",
    "DatasetProfile",
    "profile_dataset",
    "subsample_negatives",
]
