"""The :class:`LtrDataset` container.

A learning-to-rank dataset is a matrix of per-(query, document) feature
vectors, an integer relevance label per row, and a query identifier per row.
Rows belonging to the same query must be contiguous; the container keeps a
CSR-style ``query_ptr`` so that per-query slices are O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.validation import check_array_1d, check_array_2d


@dataclass
class LtrDataset:
    """Feature matrix, graded labels and query grouping for LtR.

    Parameters
    ----------
    features:
        ``(n_docs, n_features)`` float matrix.
    labels:
        ``(n_docs,)`` integer relevance grades (0 = irrelevant).
    qids:
        ``(n_docs,)`` query identifiers; rows of a query must be contiguous.
    name:
        Optional human-readable dataset name.
    """

    features: np.ndarray
    labels: np.ndarray
    qids: np.ndarray
    name: str = "ltr-dataset"
    query_ptr: np.ndarray = field(init=False, repr=False)
    unique_qids: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.features = check_array_2d(self.features, "features")
        self.labels = check_array_1d(self.labels, "labels", dtype=np.int64)
        self.qids = np.asarray(self.qids)
        if self.qids.ndim != 1:
            raise DatasetError(f"qids must be 1-D, got shape {self.qids.shape}")
        n = self.features.shape[0]
        if len(self.labels) != n or len(self.qids) != n:
            raise DatasetError(
                "features, labels and qids must have the same number of rows: "
                f"{n}, {len(self.labels)}, {len(self.qids)}"
            )
        if np.any(self.labels < 0):
            raise DatasetError("relevance labels must be non-negative")
        self._build_query_index()

    def _build_query_index(self) -> None:
        qids = self.qids
        # Boundaries where the qid changes; rows of one query must be
        # contiguous, which also means a qid may not reappear later.
        change = np.flatnonzero(qids[1:] != qids[:-1]) + 1
        starts = np.concatenate(([0], change, [len(qids)]))
        uniq = qids[starts[:-1]]
        if len(np.unique(uniq)) != len(uniq):
            raise DatasetError(
                "rows of each query must be contiguous (a qid reappears "
                "after a different qid)"
            )
        self.query_ptr = starts.astype(np.intp)
        self.unique_qids = uniq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_docs(self) -> int:
        """Total number of (query, document) rows."""
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        """Number of features per row."""
        return self.features.shape[1]

    @property
    def n_queries(self) -> int:
        """Number of distinct queries."""
        return len(self.unique_qids)

    @property
    def max_label(self) -> int:
        """Largest relevance grade present."""
        return int(self.labels.max()) if self.n_docs else 0

    def query_sizes(self) -> np.ndarray:
        """Number of documents per query, in dataset order."""
        return np.diff(self.query_ptr)

    def query_slice(self, query_index: int) -> slice:
        """Row slice of the ``query_index``-th query."""
        if not 0 <= query_index < self.n_queries:
            raise IndexError(
                f"query_index {query_index} out of range [0, {self.n_queries})"
            )
        return slice(
            int(self.query_ptr[query_index]), int(self.query_ptr[query_index + 1])
        )

    def iter_queries(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(features, labels)`` per query, in dataset order."""
        for i in range(self.n_queries):
            sl = self.query_slice(i)
            yield self.features[sl], self.labels[sl]

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def select_queries(self, query_indices) -> "LtrDataset":
        """New dataset containing only the given query indices (reordered)."""
        query_indices = np.asarray(query_indices, dtype=np.intp)
        if query_indices.size == 0:
            raise DatasetError("cannot select an empty set of queries")
        rows = np.concatenate(
            [np.arange(self.query_ptr[i], self.query_ptr[i + 1]) for i in query_indices]
        )
        return LtrDataset(
            features=self.features[rows],
            labels=self.labels[rows],
            qids=self.qids[rows],
            name=self.name,
        )

    def with_features(self, features: np.ndarray) -> "LtrDataset":
        """Copy of the dataset with a transformed feature matrix."""
        return LtrDataset(
            features=features, labels=self.labels, qids=self.qids, name=self.name
        )

    def feature_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-feature (min, max) over the whole dataset.

        Used by the distillation data-augmentation step, which extends each
        feature's split-point list with its training-set minimum and maximum
        (Section 3 of the paper).
        """
        return self.features.min(axis=0), self.features.max(axis=0)

    def __len__(self) -> int:
        return self.n_docs

    def summary(self) -> str:
        """One-line description used in logs and benchmark headers."""
        sizes = self.query_sizes()
        return (
            f"{self.name}: {self.n_queries} queries, {self.n_docs} docs "
            f"({sizes.mean():.1f}/query), {self.n_features} features, "
            f"labels 0..{self.max_label}"
        )
