"""CPU specification used by the simulated-time executors.

All simulated times in the library are expressed in nanoseconds and derive
from a :class:`CpuSpec`.  The default instance, :data:`I9_9900K`, mirrors
the experimental platform of the paper (Section 6.1): an Intel i9-9900K
with AVX2 (256-bit SIMD), single-thread execution.

The per-event costs (packing bandwidth, vector load/store, FMA issue) are
*calibrated* so that the dense executor reproduces the paper's measured
GFLOPS zones (Fig. 6: ~90 / ~110 / ~130 GFLOPS for k < 128, 128 <= k < 512,
k >= 512 at n = 1000) and the sparse executor reproduces Table 4's
microsecond measurements.  Calibration constants are documented next to
each field.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    latency_ns: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache size must be positive, got {self.size_bytes}")
        if self.line_bytes <= 0:
            raise ValueError(f"line size must be positive, got {self.line_bytes}")
        if self.latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")

    @property
    def lines(self) -> int:
        """Number of cache lines this level can hold."""
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class CpuSpec:
    """Micro-architectural parameters of the simulated CPU.

    Attributes
    ----------
    frequency_ghz:
        Sustained single-core clock under AVX2 load.
    simd_bits:
        SIMD register width; AVX2 = 256 bits = 8 fp32 lanes.
    fma_ports:
        Number of FMA execution ports (2 on Skylake-class cores).
    peak_gflops_calibrated:
        The asymptotic dense GEMM throughput the Goto executor converges to
        for large, well-shaped operands.  The theoretical peak of the
        i9-9900K is ``freq * lanes * 2 (fma) * 2 (ports)`` ~= 150 GFLOPS at
        4.7 GHz; the paper measures ~130 sustained, so the executor is
        calibrated to saturate near that value.
    """

    name: str = "Intel i9-9900K (simulated)"
    frequency_ghz: float = 4.7
    simd_bits: int = 256
    fma_ports: int = 2
    l1: CacheLevel = field(
        default_factory=lambda: CacheLevel("L1d", 32 * 1024, 64, 1.0)
    )
    l2: CacheLevel = field(
        default_factory=lambda: CacheLevel("L2", 256 * 1024, 64, 3.0)
    )
    l3: CacheLevel = field(
        default_factory=lambda: CacheLevel("L3", 16 * 1024 * 1024, 64, 10.0)
    )
    ram_latency_ns: float = 60.0
    tlb_entries: int = 1536
    page_bytes: int = 4096
    peak_gflops_calibrated: float = 146.0

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.simd_bits % 32 != 0 or self.simd_bits <= 0:
            raise ValueError("simd_bits must be a positive multiple of 32")
        if self.fma_ports <= 0:
            raise ValueError("fma_ports must be positive")

    @property
    def simd_lanes_f32(self) -> int:
        """Number of fp32 values per SIMD register (8 for AVX2)."""
        return self.simd_bits // 32

    @property
    def cycle_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    @property
    def theoretical_peak_gflops(self) -> float:
        """Theoretical fp32 peak: lanes * 2 FLOPs/FMA * ports * frequency."""
        return self.simd_lanes_f32 * 2 * self.fma_ports * self.frequency_ghz

    @property
    def flop_time_ns(self) -> float:
        """Calibrated time per floating-point operation at saturation."""
        return 1.0 / self.peak_gflops_calibrated


#: Default simulated platform matching the paper's testbed.
I9_9900K = CpuSpec()
