"""Simulated CPU hardware model.

The paper measures everything on an Intel i9-9900K (AVX2, 3.6 GHz base /
5.0 GHz turbo, 32 KiB L1d, 256 KiB L2, 16 MiB shared L3).  That machine is
not available here, so this package models it: a :class:`CpuSpec` captures
the micro-architectural parameters that the Goto-algorithm and LIBXSMM
executors charge their simulated time against, and :class:`CacheHierarchy`
tracks which memory level a given access hits.
"""

from repro.hardware.cpu import CacheLevel, CpuSpec, I9_9900K
from repro.hardware.cache import CacheHierarchy, CacheSimulator

__all__ = [
    "CacheLevel",
    "CpuSpec",
    "I9_9900K",
    "CacheHierarchy",
    "CacheSimulator",
]
