"""Cache-hierarchy simulation.

Two abstractions live here:

* :class:`CacheHierarchy` — a *capacity* model: answers "does a working set
  of this many bytes fit in L1/L2/L3?" and returns the access latency of the
  first level that holds it.  The blocked-GEMM executor uses it to decide
  where each packed panel resides, exactly as the Goto algorithm reasons
  about its block sizes (Section 4.1 of the paper).

* :class:`CacheSimulator` — a *behavioural* model: an LRU set of cache lines
  that the sparse executor queries per access, so that the reuse pattern of
  the B operand (rows touched once stay cached, Section 4.4) emerges from
  the actual non-zero structure rather than being assumed.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.hardware.cpu import CpuSpec, I9_9900K


class CacheHierarchy:
    """Capacity-based cost model over the three cache levels of a CPU."""

    def __init__(self, cpu: CpuSpec = I9_9900K) -> None:
        self.cpu = cpu
        self._levels = [cpu.l1, cpu.l2, cpu.l3]

    def residency(self, working_set_bytes: int) -> str:
        """Name of the smallest level that can hold ``working_set_bytes``.

        Returns ``"RAM"`` when the set exceeds L3.
        """
        if working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        for level in self._levels:
            if working_set_bytes <= level.size_bytes:
                return level.name
        return "RAM"

    def access_latency_ns(self, working_set_bytes: int) -> float:
        """Latency of one access to a working set of the given footprint."""
        for level in self._levels:
            if working_set_bytes <= level.size_bytes:
                return level.latency_ns
        return self.cpu.ram_latency_ns

    def fits(self, working_set_bytes: int, level_name: str) -> bool:
        """Whether a working set fits entirely within the named level."""
        for level in self._levels:
            if level.name == level_name:
                return working_set_bytes <= level.size_bytes
        raise ValueError(f"unknown cache level {level_name!r}")


class CacheSimulator:
    """A single-level LRU cache of line-granular addresses.

    The sparse-GEMM executor registers each B-row access through
    :meth:`access`; the simulator reports whether it hit (the row was
    already resident) or missed (it had to be brought in from the next
    level).  Only line tags are tracked, not data.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        *,
        hit_latency_ns: float = 1.0,
        miss_latency_ns: float = 10.0,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ValueError("capacity and line size must be positive")
        if capacity_bytes < line_bytes:
            raise ValueError("capacity must hold at least one line")
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self.hit_latency_ns = hit_latency_ns
        self.miss_latency_ns = miss_latency_ns
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, address: int, size_bytes: int = 4) -> float:
        """Touch ``size_bytes`` starting at ``address``; return latency in ns.

        All lines spanned by the access are brought in; the returned latency
        is the worst (miss) latency if any spanned line missed.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        first = address // self.line_bytes
        last = (address + size_bytes - 1) // self.line_bytes
        missed = False
        for line in range(first, last + 1):
            if line in self._lines:
                self._lines.move_to_end(line)
                self.hits += 1
            else:
                missed = True
                self.misses += 1
                self._lines[line] = None
                while len(self._lines) > self.capacity_lines:
                    self._lines.popitem(last=False)
        return self.miss_latency_ns if missed else self.hit_latency_ns

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently resident."""
        return (address // self.line_bytes) in self._lines

    def reset(self) -> None:
        """Empty the cache and zero the hit/miss counters."""
        self._lines.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 when nothing was accessed."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
