"""Fisher's randomization test for paired per-query metrics.

The paper marks improvements that are statistically significant "according
to the Fisher's randomization test, p < 0.05" (Tables 1, 5, 8).  Given the
per-query metric values of two systems on the same query set, the test
randomly swaps the two systems' values on each query and measures how often
the absolute mean difference of a randomized assignment reaches the
observed one (two-sided).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array_1d, check_same_length


@dataclass(frozen=True)
class RandomizationResult:
    """Outcome of a paired randomization test."""

    mean_a: float
    mean_b: float
    observed_difference: float
    p_value: float
    n_permutations: int
    n_queries: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def fisher_randomization_test(
    per_query_a,
    per_query_b,
    *,
    n_permutations: int = 10_000,
    seed: int | np.random.Generator | None = 0,
) -> RandomizationResult:
    """Two-sided paired randomization test on per-query metric values.

    Queries where either system produced ``nan`` (e.g. no relevant
    documents) are dropped pairwise before testing.

    Parameters
    ----------
    per_query_a, per_query_b:
        Metric value per query for the two systems, aligned on queries.
    n_permutations:
        Number of random sign assignments; 10k gives a p-value resolution
        of 1e-4, ample for the paper's alpha = 0.05.
    """
    a = check_array_1d(per_query_a, "per_query_a")
    b = check_array_1d(per_query_b, "per_query_b")
    check_same_length(a, b, "per_query_a", "per_query_b")
    if n_permutations <= 0:
        raise ValueError(f"n_permutations must be positive, got {n_permutations}")

    keep = ~(np.isnan(a) | np.isnan(b))
    a, b = a[keep], b[keep]
    n = len(a)
    if n == 0:
        raise ValueError("no queries with valid metric values in both systems")

    diff = a - b
    observed = float(diff.mean())
    rng = ensure_rng(seed)

    # Randomly flipping the sign of each paired difference is equivalent to
    # swapping the two systems' values on that query.  Count permutations
    # whose |mean| reaches |observed|; the +1 correction keeps p > 0.
    count = 0
    chunk = max(1, min(n_permutations, 4_000_000 // max(n, 1)))
    done = 0
    threshold = abs(observed) - 1e-12
    while done < n_permutations:
        size = min(chunk, n_permutations - done)
        signs = rng.integers(0, 2, size=(size, n)) * 2 - 1
        perm_means = (signs * diff).mean(axis=1)
        count += int(np.sum(np.abs(perm_means) >= threshold))
        done += size

    p_value = (count + 1) / (n_permutations + 1)
    return RandomizationResult(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        observed_difference=observed,
        p_value=float(p_value),
        n_permutations=n_permutations,
        n_queries=n,
    )
