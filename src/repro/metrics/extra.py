"""Additional ranking metrics: Precision@k, Recall@k and ERR.

The paper reports NDCG and MAP; these companions are standard in LtR
evaluations (ERR in particular shares NDCG's graded-gain model) and are
provided for downstream users comparing against other systems.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.metrics.ranking import per_query_metric
from repro.utils.validation import check_array_1d, check_same_length


def _ranked(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    order = np.argsort(-scores, kind="stable")
    return labels[order]


def precision_at_k(
    scores, labels, k: int, *, relevance_threshold: int = 1
) -> float:
    """Fraction of the top-k documents that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = check_array_1d(scores, "scores")
    labels = check_array_1d(labels, "labels", dtype=np.float64)
    check_same_length(scores, labels, "scores", "labels")
    top = _ranked(scores, labels)[:k]
    return float(np.mean(top >= relevance_threshold))


def recall_at_k(
    scores, labels, k: int, *, relevance_threshold: int = 1
) -> float:
    """Fraction of the relevant documents retrieved in the top k.

    ``nan`` when the query has no relevant documents.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    scores = check_array_1d(scores, "scores")
    labels = check_array_1d(labels, "labels", dtype=np.float64)
    check_same_length(scores, labels, "scores", "labels")
    relevant_total = float(np.sum(labels >= relevance_threshold))
    if relevant_total == 0:
        return float("nan")
    top = _ranked(scores, labels)[:k]
    return float(np.sum(top >= relevance_threshold) / relevant_total)


def err(scores, labels, *, max_grade: int = 4, k: int | None = None) -> float:
    """Expected Reciprocal Rank (Chapelle et al.).

    Models a cascading user: the probability of being satisfied by a
    document of grade ``g`` is ``(2^g - 1) / 2^max_grade``; ERR is the
    expected reciprocal rank of the satisfying document.
    """
    scores = check_array_1d(scores, "scores")
    labels = check_array_1d(labels, "labels", dtype=np.float64)
    check_same_length(scores, labels, "scores", "labels")
    if max_grade <= 0:
        raise ValueError(f"max_grade must be positive, got {max_grade}")
    ranked = _ranked(scores, labels)
    if k is not None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        ranked = ranked[:k]
    satisfied = (np.exp2(ranked) - 1.0) / (2.0**max_grade)
    value = 0.0
    not_satisfied_yet = 1.0
    for rank, p in enumerate(satisfied, start=1):
        value += not_satisfied_yet * p / rank
        not_satisfied_yet *= 1.0 - p
    return float(value)


def mean_err(
    dataset: LtrDataset, scores, *, max_grade: int | None = None,
    k: int | None = None,
) -> float:
    """Mean ERR over the dataset's queries."""
    grade = dataset.max_label if max_grade is None else max_grade
    grade = max(grade, 1)
    values = per_query_metric(
        dataset, scores, lambda s, l: err(s, l, max_grade=grade, k=k)
    )
    return float(np.nanmean(values))


def mean_precision_at_k(
    dataset: LtrDataset, scores, k: int, *, relevance_threshold: int = 1
) -> float:
    """Mean Precision@k over queries."""
    values = per_query_metric(
        dataset,
        scores,
        lambda s, l: precision_at_k(
            s, l, k, relevance_threshold=relevance_threshold
        ),
    )
    return float(np.nanmean(values))
