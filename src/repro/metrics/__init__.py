"""Ranking-quality metrics and statistical significance testing.

Implements the three quality metrics the paper reports — NDCG@10, NDCG
(no cutoff) and MAP — plus the paired Fisher randomization test used for
the significance symbols in Tables 1, 5 and 8.
"""

from repro.metrics.ranking import (
    average_precision,
    dcg,
    mean_average_precision,
    mean_ndcg,
    ndcg,
    per_query_metric,
)
from repro.metrics.extra import (
    err,
    mean_err,
    mean_precision_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.metrics.significance import fisher_randomization_test

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "err",
    "mean_err",
    "mean_precision_at_k",
    "dcg",
    "ndcg",
    "mean_ndcg",
    "average_precision",
    "mean_average_precision",
    "per_query_metric",
    "fisher_randomization_test",
]
