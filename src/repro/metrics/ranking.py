"""Per-query and aggregate ranking metrics.

Conventions follow the LETOR evaluation scripts used by the paper's
datasets:

* DCG uses exponential gain ``2^rel - 1`` and discount ``1 / log2(r + 1)``
  for the document at 1-based rank ``r`` (Jarvelin & Kekalainen).
* NDCG@k divides by the ideal DCG@k of the query.  Queries whose ideal DCG
  is zero (no relevant documents) carry no ranking signal and are excluded
  from aggregate means.
* MAP binarizes graded labels as ``rel >= 1``.

Ties in scores are broken by original document order, matching the
deterministic behaviour of sort-based rankers.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datasets.base import LtrDataset
from repro.utils.validation import check_array_1d, check_same_length


def _ranked_labels(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Labels reordered by decreasing score (stable for ties)."""
    order = np.argsort(-scores, kind="stable")
    return labels[order]


def dcg(labels_in_rank_order, k: int | None = None) -> float:
    """Discounted cumulative gain of an already-ranked label list."""
    rels = check_array_1d(labels_in_rank_order, "labels", dtype=np.float64)
    if k is not None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        rels = rels[:k]
    if rels.size == 0:
        return 0.0
    gains = np.exp2(rels) - 1.0
    discounts = 1.0 / np.log2(np.arange(2, rels.size + 2))
    return float(gains @ discounts)


def ndcg(scores, labels, k: int | None = None) -> float:
    """NDCG@k of one query; ``nan`` when the query has no relevant docs."""
    scores = check_array_1d(scores, "scores")
    labels = check_array_1d(labels, "labels", dtype=np.float64)
    check_same_length(scores, labels, "scores", "labels")
    ideal = dcg(np.sort(labels)[::-1], k)
    if ideal == 0.0:
        return float("nan")
    return dcg(_ranked_labels(scores, labels), k) / ideal


def average_precision(scores, labels, *, relevance_threshold: int = 1) -> float:
    """Average precision of one query with binarized labels.

    Returns ``nan`` when the query has no relevant document.
    """
    scores = check_array_1d(scores, "scores")
    labels = check_array_1d(labels, "labels", dtype=np.float64)
    check_same_length(scores, labels, "scores", "labels")
    relevant = (_ranked_labels(scores, labels) >= relevance_threshold).astype(
        np.float64
    )
    n_rel = relevant.sum()
    if n_rel == 0:
        return float("nan")
    cum_rel = np.cumsum(relevant)
    precision_at_hits = cum_rel / np.arange(1, len(relevant) + 1)
    return float((precision_at_hits * relevant).sum() / n_rel)


def per_query_metric(
    dataset: LtrDataset,
    scores,
    metric: Callable[[np.ndarray, np.ndarray], float],
) -> np.ndarray:
    """Evaluate ``metric(scores_q, labels_q)`` for every query.

    Returns one value per query (possibly ``nan`` for queries the metric
    cannot score); the paired values feed the Fisher randomization test.
    """
    scores = check_array_1d(scores, "scores")
    if len(scores) != dataset.n_docs:
        raise ValueError(
            f"scores has {len(scores)} rows but dataset has {dataset.n_docs}"
        )
    values = np.empty(dataset.n_queries, dtype=np.float64)
    for i in range(dataset.n_queries):
        sl = dataset.query_slice(i)
        values[i] = metric(scores[sl], dataset.labels[sl])
    return values


def mean_ndcg(dataset: LtrDataset, scores, k: int | None = None) -> float:
    """Mean NDCG@k over queries with at least one relevant document."""
    values = per_query_metric(dataset, scores, lambda s, l: ndcg(s, l, k))
    return float(np.nanmean(values))


def mean_average_precision(
    dataset: LtrDataset, scores, *, relevance_threshold: int = 1
) -> float:
    """MAP over queries with at least one relevant document."""
    values = per_query_metric(
        dataset,
        scores,
        lambda s, l: average_precision(
            s, l, relevance_threshold=relevance_threshold
        ),
    )
    return float(np.nanmean(values))
