"""Plan-compilation metric series and the compile report.

:func:`repro.runtime.compile.compile_network` folds every compilation
into the default :class:`~repro.obs.metrics.MetricsRegistry`, mirroring
the ``parallel.*`` series:

* ``compile.plans`` (counter, label ``dtype``) — plans compiled;
* ``compile.layers`` (counter, labels ``dtype``, ``kernel``) — layers
  frozen per kernel choice (``dense-gemm`` / ``csr-spmm`` /
  ``block-spmm`` / ``int8-gemm`` / ``int16-gemm``);
* ``compile.buffer_bytes`` (gauge, label ``dtype``) — the last plan's
  ping-pong + transpose arena footprint;
* ``compile.compile_us`` (gauge, label ``dtype``) — the last plan's
  wall compile time.

:func:`compile_report` reads the series back into one row per dtype —
the ahead-of-time counterpart of :func:`repro.obs.parallel.
parallel_report`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry


def record_compile(
    *,
    dtype: str,
    buffer_bytes: int,
    compile_us: float,
    kernel_counts: dict[str, int] | None = None,
    dense_layers: int = 0,
    sparse_layers: int = 0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one plan compilation into the ``compile.*`` series.

    ``kernel_counts`` is the plan's ``kernel_counts()`` mapping (any
    kernel name); the ``dense_layers`` / ``sparse_layers`` pair is the
    pre-quantization spelling, kept for callers recording only the
    two scalar kernels.
    """
    registry = registry or get_registry()
    registry.counter("compile.plans", dtype=dtype).inc()
    counts = dict(kernel_counts) if kernel_counts else {}
    if dense_layers:
        counts["dense-gemm"] = counts.get("dense-gemm", 0) + dense_layers
    if sparse_layers:
        counts["csr-spmm"] = counts.get("csr-spmm", 0) + sparse_layers
    for kernel, layers in counts.items():
        if layers:
            registry.counter(
                "compile.layers", dtype=dtype, kernel=kernel
            ).inc(layers)
    registry.gauge("compile.buffer_bytes", dtype=dtype).set(buffer_bytes)
    registry.gauge("compile.compile_us", dtype=dtype).set(compile_us)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompileRow:
    """One execution dtype's compilation position."""

    dtype: str
    plans: int
    dense_layers: int
    sparse_layers: int
    buffer_bytes: int
    compile_us: float
    block_layers: int = 0
    int8_layers: int = 0
    int16_layers: int = 0

    @property
    def sparse_share(self) -> float:
        total = self.dense_layers + self.sparse_layers
        return self.sparse_layers / total if total else 0.0

    def describe(self) -> str:
        text = (
            f"{self.dtype}: {self.plans} plans, "
            f"{self.dense_layers} dense / {self.sparse_layers} sparse "
            f"layers, {self.buffer_bytes / 1024:.0f} KiB buffers"
        )
        extras = [
            f"{n} {name}"
            for name, n in (
                ("block", self.block_layers),
                ("int8", self.int8_layers),
                ("int16", self.int16_layers),
            )
            if n
        ]
        if extras:
            text += " (+ " + ", ".join(extras) + ")"
        return text


@dataclass(frozen=True)
class CompileReport:
    """Per-dtype compilation rows plus a rendering."""

    rows: tuple[CompileRow, ...]

    def dtype(self, name: str) -> CompileRow | None:
        for row in self.rows:
            if row.dtype == name:
                return row
        return None

    def render(self) -> str:
        if not self.rows:
            return "(no plan compilations recorded)"
        header = (
            f"{'dtype':<9} {'plans':>6} {'dense':>6} {'sparse':>7} "
            f"{'block':>6} {'int8':>5} {'int16':>6} "
            f"{'buffers':>10} {'compile':>10}"
        )
        lines = ["Compiled plans", header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.dtype:<9} {row.plans:>6d} {row.dense_layers:>6d} "
                f"{row.sparse_layers:>7d} "
                f"{row.block_layers:>6d} {row.int8_layers:>5d} "
                f"{row.int16_layers:>6d} "
                f"{row.buffer_bytes / 1024:>6.0f} KiB "
                f"{row.compile_us / 1000:>7.1f} ms"
            )
        return "\n".join(lines)


def compile_report(registry: MetricsRegistry | None = None) -> CompileReport:
    """Assemble the per-dtype compilation table from the series."""
    registry = registry or get_registry()
    slots: dict[str, dict[str, float]] = {}
    for (name, label_pairs), metric in registry.items():
        if not name.startswith("compile."):
            continue
        labels = dict(label_pairs)
        dtype = labels.get("dtype")
        if dtype is None:
            continue
        slot = slots.setdefault(dtype, {})
        if name == "compile.layers":
            slot[f"layers:{labels.get('kernel')}"] = metric.value
        else:
            slot[name] = metric.value
    rows = tuple(
        CompileRow(
            dtype=dtype,
            plans=int(slot.get("compile.plans", 0)),
            dense_layers=int(slot.get("layers:dense-gemm", 0)),
            sparse_layers=int(slot.get("layers:csr-spmm", 0)),
            buffer_bytes=int(slot.get("compile.buffer_bytes", 0)),
            compile_us=slot.get("compile.compile_us", 0.0),
            block_layers=int(slot.get("layers:block-spmm", 0)),
            int8_layers=int(slot.get("layers:int8-gemm", 0)),
            int16_layers=int(slot.get("layers:int16-gemm", 0)),
        )
        for dtype, slot in sorted(slots.items())
    )
    return CompileReport(rows=rows)
