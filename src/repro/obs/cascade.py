"""Cascade metric series and the per-stage funnel report.

The cascade adapter (:class:`~repro.runtime.adapters.CascadeScorer`)
folds every query it scores into the default
:class:`~repro.obs.metrics.MetricsRegistry`, the same way the sharded
scorer feeds the ``parallel.*`` series:

* ``cascade.queries`` (counter, label ``pipeline``) — queries scored;
* ``cascade.early_exits`` (counter, label ``pipeline``) — queries the
  per-query budget stopped before the last stage;
* ``cascade.predicted_spend_us`` (histogram, label ``pipeline``) — the
  calibrated-price-predicted spend per query, the number the budget is
  enforced against;
* ``cascade.stage_queries`` (counter, labels ``pipeline``, ``stage``,
  ``level``) — queries that *reached* the stage;
* ``cascade.stage_docs`` (counter, same labels) — documents the stage
  scored;
* ``cascade.stage_us`` (counter, same labels) — measured stage wall
  microseconds, summed.

:func:`cascade_report` reads the series back into one row per stage —
the survivor funnel (docs/query entering each level), measured µs/doc,
and each pipeline's query/early-exit totals — the staged counterpart of
:func:`repro.obs.parallel.parallel_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.obs.metrics import MetricsRegistry, get_registry


def record_cascade_query(
    pipeline: str,
    *,
    stage_names: Sequence[str],
    stage_docs: Sequence[int],
    stage_us: Sequence[float],
    predicted_spend_us: float,
    exited_early: bool,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one scored query into the ``cascade.*`` series.

    ``stage_names``/``stage_docs``/``stage_us`` are aligned over the
    stages the query *executed* (a budget exit shortens them).
    Zero-doc queries should not be recorded — the engine treats them as
    no-ops and so does this layer.
    """
    registry = registry or get_registry()
    registry.counter("cascade.queries", pipeline=pipeline).inc()
    if exited_early:
        registry.counter("cascade.early_exits", pipeline=pipeline).inc()
    if math.isfinite(predicted_spend_us):
        registry.histogram(
            "cascade.predicted_spend_us", pipeline=pipeline
        ).add(predicted_spend_us)
    for level, (name, docs, us) in enumerate(
        zip(stage_names, stage_docs, stage_us)
    ):
        labels = {"pipeline": pipeline, "stage": name, "level": str(level)}
        registry.counter("cascade.stage_queries", **labels).inc()
        if docs:
            registry.counter("cascade.stage_docs", **labels).inc(int(docs))
        if math.isfinite(us) and us > 0:
            registry.counter("cascade.stage_us", **labels).inc(us)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CascadeStageRow:
    """One pipeline stage's position in the survivor funnel."""

    pipeline: str
    stage: str
    level: int
    queries: int
    docs: int
    total_us: float

    @property
    def docs_per_query(self) -> float:
        """Mean documents entering this stage per query that reached it."""
        return self.docs / self.queries if self.queries else 0.0

    @property
    def us_per_doc(self) -> float:
        """Measured mean stage cost per scored document."""
        return self.total_us / self.docs if self.docs else float("nan")

    def describe(self) -> str:
        return (
            f"{self.pipeline}[{self.level}] {self.stage}: "
            f"{self.queries} queries, {self.docs_per_query:.1f} docs/query, "
            f"{self.us_per_doc:.2f} us/doc"
        )


@dataclass(frozen=True)
class CascadeReport:
    """Per-stage funnel rows plus per-pipeline totals and a rendering."""

    rows: tuple[CascadeStageRow, ...]
    queries: dict[str, int]
    early_exits: dict[str, int]
    mean_predicted_spend_us: dict[str, float]

    def pipeline(self, name: str) -> tuple[CascadeStageRow, ...]:
        """The funnel rows of one pipeline, in stage order."""
        return tuple(row for row in self.rows if row.pipeline == name)

    def render(self) -> str:
        if not self.rows:
            return "(no cascade queries recorded)"
        header = (
            f"{'pipeline':<14} {'lvl':>3} {'stage':<22} {'queries':>8} "
            f"{'docs/query':>11} {'us/doc':>8}"
        )
        lines = ["Cascade funnel", header, "-" * len(header)]
        for row in self.rows:
            us = (
                f"{row.us_per_doc:>8.2f}"
                if math.isfinite(row.us_per_doc)
                else f"{'-':>8}"
            )
            lines.append(
                f"{row.pipeline:<14} {row.level:>3d} {row.stage:<22} "
                f"{row.queries:>8d} {row.docs_per_query:>11.1f} {us}"
            )
        for name in sorted(self.queries):
            total = self.queries[name]
            exits = self.early_exits.get(name, 0)
            spend = self.mean_predicted_spend_us.get(name, float("nan"))
            spend_txt = (
                f"{spend:.1f} us/query predicted"
                if math.isfinite(spend)
                else "unpriced"
            )
            lines.append(
                f"{name}: {total} queries, {exits} budget early-exits "
                f"({exits / total:.1%}), {spend_txt}"
            )
        return "\n".join(lines)


def cascade_report(
    registry: MetricsRegistry | None = None,
) -> CascadeReport:
    """Assemble the per-stage funnel table from the ``cascade.*`` series."""
    registry = registry or get_registry()
    stages: dict[tuple[str, int, str], dict[str, float]] = {}
    queries: dict[str, int] = {}
    early_exits: dict[str, int] = {}
    spend: dict[str, float] = {}
    for (name, label_pairs), metric in registry.items():
        labels = dict(label_pairs)
        pipeline = labels.get("pipeline")
        if pipeline is None:
            continue
        if name == "cascade.queries":
            queries[pipeline] = int(metric.value)
        elif name == "cascade.early_exits":
            early_exits[pipeline] = int(metric.value)
        elif name == "cascade.predicted_spend_us":
            snap = metric.snapshot()
            spend[pipeline] = (
                snap["sum"] / snap["count"] if snap["count"] else float("nan")
            )
        elif name in (
            "cascade.stage_queries",
            "cascade.stage_docs",
            "cascade.stage_us",
        ):
            stage = labels.get("stage")
            try:
                level = int(labels.get("level", "0"))
            except ValueError:
                continue
            if stage is None:
                continue
            stages.setdefault((pipeline, level, stage), {})[name] = (
                metric.value
            )
    rows = tuple(
        CascadeStageRow(
            pipeline=pipeline,
            stage=stage,
            level=level,
            queries=int(slot.get("cascade.stage_queries", 0)),
            docs=int(slot.get("cascade.stage_docs", 0)),
            total_us=slot.get("cascade.stage_us", 0.0),
        )
        for (pipeline, level, stage), slot in sorted(stages.items())
    )
    return CascadeReport(
        rows=rows,
        queries=queries,
        early_exits=early_exits,
        mean_predicted_spend_us=spend,
    )
