"""Per-request tracing: trace ids and stage timelines across the stack.

The PR 2 tracer keeps *thread-local* span stacks, which is the right
shape for synchronous call trees and exactly the wrong shape for the
async front-end: a request is born on the event-loop thread, waits in
a queue, is drained by the batcher task, scored on the engine executor
thread (possibly fanning out over the ``ShardedScorer`` pool) and
resolved back on the loop.  No thread-local survives that journey.

:class:`RequestContext` does: one object per request carrying a trace
id and an append-only list of :class:`StageEvent` timings
(``admission`` → ``queue-wait`` → ``coalesce`` → ``kernel`` →
``respond``).  The front-end owns the object and stamps stages with
its own clock at each hop, so the four post-enqueue stages **tile** the
enqueue→response interval exactly — each stage starts where the
previous ended (``last_stage_end``) — which is what makes the
trace-smoke's "stage sum ≈ wall time" acceptance check hold by
construction rather than by luck.

Propagation into the engine thread uses :mod:`contextvars` set *inside*
the executor thread (``loop.run_in_executor`` does not copy the loop's
context, but a ``ContextVar.set`` in the worker thread binds in that
thread's own implicit context): :func:`activate_batch` installs the
coalesced batch's contexts around the kernel call, and deep layers —
``ShardedScorer``, ``InferencePlan`` — call :func:`annotate_requests`
to attach attributes (shards, plan fingerprints) to whichever requests
are live, without any parameter threading.

The :class:`RequestRecorder` is the lifecycle owner: ``begin`` mints a
context (or returns ``None`` while disabled — the true-no-op contract),
``finish`` files the finished record into its
:class:`~repro.obs.flight.FlightRecorder` and exemplar store.  The
process-wide default recorder starts disabled; ``begin`` then costs one
attribute check and allocates nothing.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.exceptions import ReproError
from repro.obs.flight import ExemplarStore, FlightRecorder, render_record

#: Canonical stage order; ``admission`` precedes the enqueue timestamp
#: and is excluded from the enqueue→response timeline sum.
STAGE_ORDER: tuple[str, ...] = (
    "admission",
    "queue-wait",
    "coalesce",
    "kernel",
    "respond",
)


class StageEvent:
    """One timed stage of a request's journey through the stack."""

    __slots__ = ("name", "start_s", "end_s", "attrs")

    def __init__(
        self, name: str, start_s: float, end_s: float, **attrs: Any
    ) -> None:
        self.name = name
        self.start_s = float(start_s)
        self.end_s = max(float(end_s), self.start_s)
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        """Stage length in microseconds."""
        return (self.end_s - self.start_s) * 1e6

    def to_dict(self, origin_s: float) -> dict[str, Any]:
        """JSON-ready form with ``start_us`` relative to ``origin_s``."""
        return {
            "name": self.name,
            "start_us": round((self.start_s - origin_s) * 1e6, 3),
            "duration_us": round(self.duration_us, 3),
            "attrs": dict(self.attrs),
        }


class RequestContext:
    """Trace id + stage timeline for one request.

    Mutated only by the owning front-end's loop/batcher/engine path —
    stages are stamped in order, never concurrently for one request —
    so the object itself needs no lock.  ``annotate`` may race only
    with itself across engine layers on the same thread.
    """

    __slots__ = (
        "trace_id",
        "tenant",
        "n_docs",
        "created_s",
        "enqueued_s",
        "finished_s",
        "batch_id",
        "status",
        "slo_us",
        "slo_miss",
        "stages",
        "attrs",
    )

    def __init__(
        self,
        tenant: str,
        *,
        n_docs: int,
        created_s: float,
        trace_id: str | None = None,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.tenant = tenant
        self.n_docs = int(n_docs)
        self.created_s = float(created_s)
        self.enqueued_s: float | None = None
        self.finished_s: float | None = None
        self.batch_id: int | None = None
        self.status = "open"
        self.slo_us: float | None = None
        self.slo_miss = False
        self.stages: list[StageEvent] = []
        self.attrs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def stage(
        self, name: str, start_s: float, end_s: float, **attrs: Any
    ) -> StageEvent:
        """Record one stage ``[start_s, end_s]``; returns the event."""
        event = StageEvent(name, start_s, end_s, **attrs)
        self.stages.append(event)
        return event

    def annotate(self, **attrs: Any) -> "RequestContext":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def last_stage_end(self, default: float) -> float:
        """Where the previous stage ended (``default`` with no stages).

        The stage-tiling anchor: starting each new stage here guarantees
        the timeline has no gaps or overlaps.
        """
        return self.stages[-1].end_s if self.stages else default

    # ------------------------------------------------------------------
    @property
    def origin_s(self) -> float:
        """The timeline origin: enqueue time (arrival for shed requests)."""
        return self.enqueued_s if self.enqueued_s is not None else self.created_s

    @property
    def wall_us(self) -> float:
        """Enqueue→finish wall microseconds (0.0 while unfinished)."""
        if self.finished_s is None:
            return 0.0
        return max(self.finished_s - self.origin_s, 0.0) * 1e6

    @property
    def timeline_us(self) -> float:
        """Sum of post-enqueue *canonical* stage durations.

        Only the :data:`STAGE_ORDER` stages count (minus ``admission``):
        they tile the enqueue→response interval by construction.  Detail
        stages — e.g. the per-stage ``cascade:<name>`` spans a
        :class:`~repro.runtime.ranking.RankingPipeline` stamps *inside*
        the kernel window — overlap the canonical ones and would
        double-count.
        """
        return sum(
            s.duration_us
            for s in self.stages
            if s.name in STAGE_ORDER and s.name != "admission"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record (stage starts relative to the enqueue time)."""
        origin = self.origin_s
        return {
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "status": self.status,
            "n_docs": self.n_docs,
            "batch_id": self.batch_id,
            "wall_us": round(self.wall_us, 3),
            "timeline_us": round(self.timeline_us, 3),
            "slo_us": self.slo_us,
            "slo_miss": self.slo_miss,
            "attrs": dict(self.attrs),
            "stages": [s.to_dict(origin) for s in self.stages],
        }

    def render(self) -> str:
        """ASCII timeline of this request."""
        return render_record(self.to_dict())


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------
_CURRENT: ContextVar[RequestContext | None] = ContextVar(
    "repro_request", default=None
)
_ACTIVE_BATCH: ContextVar[tuple[RequestContext, ...]] = ContextVar(
    "repro_request_batch", default=()
)


def current_request() -> RequestContext | None:
    """The single request bound to the calling context, if any."""
    return _CURRENT.get()


def active_requests() -> tuple[RequestContext, ...]:
    """Every request live in the calling context (batch, else current).

    Inside a coalesced engine call this is the whole batch; inside a
    single-request scope it is a 1-tuple; elsewhere it is empty.
    """
    batch = _ACTIVE_BATCH.get()
    if batch:
        return batch
    ctx = _CURRENT.get()
    return (ctx,) if ctx is not None else ()


@contextmanager
def activate(ctx: RequestContext) -> Iterator[RequestContext]:
    """Bind one request to the calling context for the ``with`` body."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


@contextmanager
def activate_batch(
    contexts: tuple[RequestContext, ...]
) -> Iterator[tuple[RequestContext, ...]]:
    """Bind a coalesced batch's requests to the calling context.

    Called *inside* the engine executor thread (a ``ContextVar.set`` in
    a worker thread binds in that thread's own implicit context), which
    is how request identity crosses the ``run_in_executor`` boundary
    that thread-locals and the loop's context cannot.
    """
    token = _ACTIVE_BATCH.set(tuple(contexts))
    try:
        yield _ACTIVE_BATCH.get()
    finally:
        _ACTIVE_BATCH.reset(token)


def annotate_requests(**attrs: Any) -> int:
    """Attach attributes to every request live in the calling context.

    The deep-layer hook (sharded scorer, compiled plans): costs two
    ``ContextVar`` reads and is a no-op when no request is active, so
    it can sit unconditionally in hot paths.  Returns how many requests
    were annotated.
    """
    contexts = active_requests()
    for ctx in contexts:
        ctx.annotate(**attrs)
    return len(contexts)


# ----------------------------------------------------------------------
# Recorder (lifecycle owner)
# ----------------------------------------------------------------------
class RequestRecorder:
    """Mints request contexts and retains finished ones.

    While ``enabled`` is false, :meth:`begin` returns ``None`` without
    allocating — the front-end then skips every per-request tracing
    branch, keeping the disabled path a true no-op (guard-tested, same
    contract as the disabled tracer).
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        flight: FlightRecorder | None = None,
        exemplars: ExemplarStore | None = None,
    ) -> None:
        self.enabled = enabled
        self.flight = flight if flight is not None else FlightRecorder()
        self.exemplars = (
            exemplars if exemplars is not None else ExemplarStore()
        )
        self._lock = threading.Lock()
        self._begun = 0
        self._finished = 0

    # ------------------------------------------------------------------
    def begin(
        self,
        tenant: str,
        *,
        n_docs: int,
        now_s: float,
        trace_id: str | None = None,
    ) -> RequestContext | None:
        """Mint a context for an arriving request (``None`` if disabled)."""
        if not self.enabled:
            return None
        ctx = RequestContext(
            tenant, n_docs=n_docs, created_s=now_s, trace_id=trace_id
        )
        with self._lock:
            self._begun += 1
        return ctx

    def finish(
        self,
        ctx: RequestContext,
        *,
        status: str,
        now_s: float,
        slo_us: float | None = None,
        slo_miss: bool = False,
    ) -> None:
        """Close a context and retain it (flight + exemplars).

        ``status`` is ``"ok"`` / ``"shed"`` / ``"error"``; only served
        requests feed the exemplar store (shed/error records have no
        meaningful latency).
        """
        if status not in ("ok", "shed", "error"):
            raise ReproError(f"unknown request status {status!r}")
        ctx.status = status
        ctx.finished_s = float(now_s)
        ctx.slo_us = slo_us
        ctx.slo_miss = bool(slo_miss)
        self.flight.retain(ctx)
        if status == "ok":
            self.exemplars.observe(ctx.tenant, ctx.wall_us, ctx.trace_id)
        with self._lock:
            self._finished += 1

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Begun/finished totals plus the flight recorder's store sizes."""
        with self._lock:
            counts = {"begun": self._begun, "finished": self._finished}
        counts.update(self.flight.counts())
        return counts

    def reset(self) -> None:
        """Drop retained records, exemplars and lifecycle counters."""
        self.flight.clear()
        self.exemplars.clear()
        with self._lock:
            self._begun = 0
            self._finished = 0


# ----------------------------------------------------------------------
# Process-wide default recorder (disabled until someone opts in)
# ----------------------------------------------------------------------
_default_recorder = RequestRecorder(enabled=False)


def get_request_recorder() -> RequestRecorder:
    """The process-wide default request recorder."""
    return _default_recorder


def set_request_recorder(recorder: RequestRecorder) -> RequestRecorder:
    """Replace the default request recorder; returns the previous one."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def enable_request_tracing(enabled: bool = True) -> None:
    """Switch the default request recorder on (or off)."""
    _default_recorder.enabled = enabled


def request_tracing_enabled() -> bool:
    """Whether the default request recorder is currently enabled."""
    return _default_recorder.enabled
