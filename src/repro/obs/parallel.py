"""Parallel-scoring metric series and the shard/cache report.

The sharded scorer (:mod:`repro.runtime.parallel`) folds every request
into the default :class:`~repro.obs.metrics.MetricsRegistry`, the same
way the batch engine feeds the drift series:

* ``parallel.requests`` (counter, label ``backend``) — requests served
  through a :class:`~repro.runtime.parallel.ShardedScorer`;
* ``parallel.shards`` (counter, label ``backend``) — shards executed;
* ``parallel.shard_balance`` (gauge, label ``backend``) — the last
  request's largest shard over its mean shard size (1.0 = even);
* ``parallel.pool_utilization`` (gauge, label ``backend``) — the last
  request's busy-time over ``lanes x wall`` (1.0 = no idle workers);
* ``parallel.cache_hits`` / ``parallel.cache_misses`` (counters, label
  ``backend``) — score-cache outcomes per document;
* ``parallel.cache_evictions`` / ``parallel.cache_invalidations``
  (unlabeled counters) — entries dropped by LRU pressure and entries
  dropped explicitly by fingerprint
  (:meth:`~repro.runtime.parallel.ScoreCache.invalidate`, the hot-swap
  hook), fed by the cache itself.

:func:`parallel_report` reads the series back into one row per backend —
mean shards per request, last balance/utilization, and the cache hit
ratio — the shard-level counterpart of
:func:`repro.obs.drift.drift_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry


def record_parallel_request(
    backend: str,
    *,
    n_shards: int,
    balance: float,
    utilization: float,
    cache_hits: int = 0,
    cache_misses: int = 0,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one sharded request into the ``parallel.*`` series.

    NaN ``balance``/``utilization`` (a fully cache-served request runs
    no shards) leave the gauges untouched rather than poisoning them.
    """
    registry = registry or get_registry()
    registry.counter("parallel.requests", backend=backend).inc()
    if n_shards:
        registry.counter("parallel.shards", backend=backend).inc(n_shards)
    if math.isfinite(balance):
        registry.gauge("parallel.shard_balance", backend=backend).set(balance)
    if math.isfinite(utilization):
        registry.gauge(
            "parallel.pool_utilization", backend=backend
        ).set(utilization)
    if cache_hits:
        registry.counter("parallel.cache_hits", backend=backend).inc(
            cache_hits
        )
    if cache_misses:
        registry.counter("parallel.cache_misses", backend=backend).inc(
            cache_misses
        )


def record_cache_eviction(
    n: int = 1, *, registry: MetricsRegistry | None = None
) -> None:
    """Count ``n`` score-cache entries evicted under LRU pressure."""
    registry = registry or get_registry()
    registry.counter("parallel.cache_evictions").inc(n)


def record_cache_invalidation(
    n: int = 1, *, registry: MetricsRegistry | None = None
) -> None:
    """Count ``n`` score-cache entries dropped by explicit fingerprint
    invalidation (a model version swapped out from under the cache)."""
    registry = registry or get_registry()
    registry.counter("parallel.cache_invalidations").inc(n)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelRow:
    """One backend's shard and cache position."""

    backend: str
    requests: int
    shards: int
    shard_balance: float
    pool_utilization: float
    cache_hits: int
    cache_misses: int

    @property
    def mean_shards_per_request(self) -> float:
        return self.shards / self.requests if self.requests else 0.0

    @property
    def cache_hit_ratio(self) -> float:
        """Hits over all cache lookups (``nan`` without a cache)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else float("nan")

    def describe(self) -> str:
        return (
            f"{self.backend}: {self.requests} requests, "
            f"{self.mean_shards_per_request:.1f} shards/req, "
            f"utilization {self.pool_utilization:.0%}, "
            f"cache hit ratio {self.cache_hit_ratio:.1%}"
        )


@dataclass(frozen=True)
class ParallelReport:
    """Per-backend shard/cache rows plus a rendering.

    ``cache_evictions`` / ``cache_invalidations`` are cache-wide (a
    :class:`~repro.runtime.parallel.ScoreCache` may be shared across
    backends and model versions), so they ride on the report rather
    than on a backend row.
    """

    rows: tuple[ParallelRow, ...]
    cache_evictions: int = 0
    cache_invalidations: int = 0

    def backend(self, name: str) -> ParallelRow | None:
        for row in self.rows:
            if row.backend == name:
                return row
        return None

    def render(self) -> str:
        if not self.rows:
            return "(no parallel scoring recorded)"
        header = (
            f"{'backend':<22} {'requests':>9} {'shards/req':>11} "
            f"{'balance':>8} {'util':>6} {'hit ratio':>10}"
        )
        lines = ["Parallel scoring", header, "-" * len(header)]
        for row in self.rows:
            hit_ratio = (
                f"{row.cache_hit_ratio:>9.1%}"
                if math.isfinite(row.cache_hit_ratio)
                else f"{'-':>9}"
            )
            balance = (
                f"{row.shard_balance:>8.2f}"
                if math.isfinite(row.shard_balance)
                else f"{'-':>8}"
            )
            util = (
                f"{row.pool_utilization:>5.0%}"
                if math.isfinite(row.pool_utilization)
                else f"{'-':>5}"
            )
            lines.append(
                f"{row.backend:<22} {row.requests:>9d} "
                f"{row.mean_shards_per_request:>11.1f} {balance} {util} "
                f"{hit_ratio}"
            )
        if self.cache_evictions or self.cache_invalidations:
            lines.append(
                f"cache: {self.cache_evictions} evicted, "
                f"{self.cache_invalidations} invalidated"
            )
        return "\n".join(lines)


def parallel_report(
    registry: MetricsRegistry | None = None,
) -> ParallelReport:
    """Assemble the per-backend shard/cache table from the series."""
    registry = registry or get_registry()
    slots: dict[str, dict[str, float]] = {}
    wanted = {
        "parallel.requests",
        "parallel.shards",
        "parallel.shard_balance",
        "parallel.pool_utilization",
        "parallel.cache_hits",
        "parallel.cache_misses",
    }
    evictions = 0
    invalidations = 0
    for (name, label_pairs), metric in registry.items():
        if name == "parallel.cache_evictions":
            evictions = int(metric.value)
            continue
        if name == "parallel.cache_invalidations":
            invalidations = int(metric.value)
            continue
        if name not in wanted:
            continue
        backend = dict(label_pairs).get("backend")
        if backend is None:
            continue
        slots.setdefault(backend, {})[name] = metric.value
    rows = tuple(
        ParallelRow(
            backend=backend,
            requests=int(slot.get("parallel.requests", 0)),
            shards=int(slot.get("parallel.shards", 0)),
            shard_balance=slot.get("parallel.shard_balance", float("nan")),
            pool_utilization=slot.get(
                "parallel.pool_utilization", float("nan")
            ),
            cache_hits=int(slot.get("parallel.cache_hits", 0)),
            cache_misses=int(slot.get("parallel.cache_misses", 0)),
        )
        for backend, slot in sorted(slots.items())
    )
    return ParallelReport(
        rows=rows,
        cache_evictions=evictions,
        cache_invalidations=invalidations,
    )
