"""Predicted-vs-measured scoring-cost drift.

The paper's central discipline is *pricing before training*: analytic
cost models decide which architectures are worth fitting.  This module
audits those predictions at the other end of the lifecycle — while the
model serves traffic — by folding every request the
:class:`~repro.runtime.batching.BatchEngine` executes into per-backend
series in the default :class:`~repro.obs.metrics.MetricsRegistry`:

* ``scoring.predicted_us_per_doc`` (gauge) — the calibrated price;
* ``scoring.measured_us_per_doc`` (gauge) — running measured mean;
* ``scoring.drift_pct`` (gauge) — ``(measured - predicted) / predicted``
  as a percentage, positive when the model runs *slower* than priced;
* ``scoring.request_us_per_doc`` (histogram) — per-request unit costs;
* ``scoring.requests`` / ``scoring.documents`` (counters).

:func:`drift_report` reads those series back into a table, one row per
backend — the deployment-time answer to "did the paper's predictor get
it right on this hardware?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry


def record_request(
    *,
    backend: str,
    n_docs: int,
    seconds: float,
    predicted_us_per_doc: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one executed request into the per-backend drift series."""
    registry = registry or get_registry()
    registry.counter("scoring.requests", backend=backend).inc()
    registry.counter("scoring.documents", backend=backend).inc(n_docs)
    seconds_total = registry.counter("scoring.wall_seconds", backend=backend)
    seconds_total.inc(seconds)
    docs_total = registry.counter("scoring.documents", backend=backend)

    measured_us = seconds * 1e6 / n_docs
    registry.histogram("scoring.request_us_per_doc", backend=backend).add(
        measured_us
    )
    mean_us = seconds_total.value * 1e6 / docs_total.value
    registry.gauge("scoring.measured_us_per_doc", backend=backend).set(mean_us)
    if math.isfinite(predicted_us_per_doc) and predicted_us_per_doc > 0:
        registry.gauge(
            "scoring.predicted_us_per_doc", backend=backend
        ).set(predicted_us_per_doc)
        registry.gauge("scoring.drift_pct", backend=backend).set(
            (mean_us - predicted_us_per_doc) / predicted_us_per_doc * 100.0
        )


@dataclass(frozen=True)
class DriftRow:
    """One backend's predicted-vs-measured position."""

    backend: str
    requests: int
    documents: int
    predicted_us_per_doc: float
    measured_us_per_doc: float
    drift_pct: float

    def describe(self) -> str:
        sign = "+" if self.drift_pct >= 0 else ""
        return (
            f"{self.backend}: predicted {self.predicted_us_per_doc:.2f} "
            f"us/doc, measured {self.measured_us_per_doc:.2f} us/doc "
            f"({sign}{self.drift_pct:.1f}%)"
        )


@dataclass(frozen=True)
class DriftReport:
    """Per-backend drift rows plus an ASCII rendering."""

    rows: tuple[DriftRow, ...]

    def row(self, backend: str) -> DriftRow | None:
        for row in self.rows:
            if row.backend == backend:
                return row
        return None

    def render(self) -> str:
        if not self.rows:
            return "(no scoring traffic recorded)"
        header = (
            f"{'backend':<20} {'requests':>9} {'docs':>9} "
            f"{'predicted':>12} {'measured':>12} {'drift':>8}"
        )
        lines = [
            "Predicted vs measured scoring cost (us/doc)",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            sign = "+" if row.drift_pct >= 0 else ""
            lines.append(
                f"{row.backend:<20} {row.requests:>9d} {row.documents:>9d} "
                f"{row.predicted_us_per_doc:>12.2f} "
                f"{row.measured_us_per_doc:>12.2f} "
                f"{sign}{row.drift_pct:>6.1f}%"
            )
        return "\n".join(lines)


def drift_report(registry: MetricsRegistry | None = None) -> DriftReport:
    """Assemble the per-backend drift table from the recorded series."""
    registry = registry or get_registry()
    backends: dict[str, dict[str, float]] = {}
    for (name, label_pairs), metric in registry.items():
        if not name.startswith("scoring."):
            continue
        labels = dict(label_pairs)
        backend = labels.get("backend")
        if backend is None:
            continue
        slot = backends.setdefault(backend, {})
        if name in ("scoring.requests", "scoring.documents"):
            slot[name] = metric.value
        elif name in (
            "scoring.predicted_us_per_doc",
            "scoring.measured_us_per_doc",
            "scoring.drift_pct",
        ):
            slot[name] = metric.value
    rows = []
    for backend in sorted(backends):
        slot = backends[backend]
        rows.append(
            DriftRow(
                backend=backend,
                requests=int(slot.get("scoring.requests", 0)),
                documents=int(slot.get("scoring.documents", 0)),
                predicted_us_per_doc=slot.get(
                    "scoring.predicted_us_per_doc", float("nan")
                ),
                measured_us_per_doc=slot.get(
                    "scoring.measured_us_per_doc", float("nan")
                ),
                drift_pct=slot.get("scoring.drift_pct", float("nan")),
            )
        )
    return DriftReport(rows=tuple(rows))
