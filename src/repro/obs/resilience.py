"""Resilience metric series and the per-backend resilience report.

The resilience layer (:mod:`repro.runtime.resilience`) folds every
retry, failure, breaker transition and fallback into the default
:class:`~repro.obs.metrics.MetricsRegistry`, the same way the batch
engine feeds the drift series:

* ``resilience.retries`` (counter, label ``backend``) — re-attempts
  after a failed scorer call;
* ``resilience.failures`` (counter, labels ``backend``/``kind``) —
  failed attempts, by exception class;
* ``resilience.breaker_state`` (gauge, label ``backend``) — 0 closed,
  1 half-open, 2 open;
* ``resilience.breaker_transitions`` (counter, labels ``backend``/
  ``to``) — state changes, by destination state;
* ``resilience.served`` (counter, labels ``primary``/``tier``) —
  requests answered by each tier of a fallback chain;
* ``resilience.fallbacks`` (counter, labels ``primary``/``tier``) —
  the subset a *non-primary* tier had to answer.

:func:`resilience_report` reads the series back into two tables — one
row per fallback chain (requests, fallbacks, fallback ratio) and one row
per backend (retries, failures, current breaker state) — the serving
counterpart of :func:`repro.obs.drift.drift_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry

#: Gauge encoding of the breaker state machine.
BREAKER_STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}
_STATE_NAMES = {v: k for k, v in BREAKER_STATE_VALUES.items()}


def record_retry(backend: str, *, registry: MetricsRegistry | None = None) -> None:
    """Count one re-attempt against ``backend``."""
    registry = registry or get_registry()
    registry.counter("resilience.retries", backend=backend).inc()


def record_failure(
    backend: str, kind: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one failed attempt against ``backend``, by failure kind."""
    registry = registry or get_registry()
    registry.counter("resilience.failures", backend=backend, kind=kind).inc()


def record_breaker_state(
    backend: str,
    state,
    *,
    transition: bool = True,
    registry: MetricsRegistry | None = None,
) -> None:
    """Publish a breaker's current state (and optionally the transition).

    ``state`` may be a :class:`~repro.runtime.resilience.BreakerState`
    or its string value.  ``transition=False`` sets the gauge without
    counting a transition (used when a breaker is first constructed).
    """
    name = str(getattr(state, "value", state))
    try:
        value = BREAKER_STATE_VALUES[name]
    except KeyError:
        raise ValueError(
            f"unknown breaker state {name!r}; "
            f"expected one of {', '.join(BREAKER_STATE_VALUES)}"
        ) from None
    registry = registry or get_registry()
    registry.gauge("resilience.breaker_state", backend=backend).set(value)
    if transition:
        registry.counter(
            "resilience.breaker_transitions", backend=backend, to=name
        ).inc()


def record_served(
    primary: str, tier: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one request of chain ``primary`` answered by ``tier``."""
    registry = registry or get_registry()
    registry.counter("resilience.served", primary=primary, tier=tier).inc()


def record_fallback(
    primary: str, tier: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one request of chain ``primary`` degraded to ``tier``."""
    registry = registry or get_registry()
    registry.counter("resilience.fallbacks", primary=primary, tier=tier).inc()


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChainRow:
    """One fallback chain's degradation position."""

    primary: str
    requests: int
    fallbacks: int

    @property
    def fallback_ratio(self) -> float:
        """Fraction of requests a non-primary tier answered."""
        return self.fallbacks / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (
            f"{self.primary}: {self.requests} served, "
            f"{self.fallbacks} degraded ({self.fallback_ratio:.1%})"
        )


@dataclass(frozen=True)
class BackendRow:
    """One backend's retry/failure counters and breaker position."""

    backend: str
    retries: int
    failures: int
    breaker_state: str

    def describe(self) -> str:
        return (
            f"{self.backend}: {self.retries} retries, "
            f"{self.failures} failures, breaker {self.breaker_state}"
        )


@dataclass(frozen=True)
class ResilienceReport:
    """Per-chain and per-backend resilience rows plus a rendering."""

    chains: tuple[ChainRow, ...]
    backends: tuple[BackendRow, ...]

    def chain(self, primary: str) -> ChainRow | None:
        for row in self.chains:
            if row.primary == primary:
                return row
        return None

    def backend(self, name: str) -> BackendRow | None:
        for row in self.backends:
            if row.backend == name:
                return row
        return None

    def render(self) -> str:
        if not self.chains and not self.backends:
            return "(no resilience events recorded)"
        lines: list[str] = []
        if self.chains:
            header = (
                f"{'chain (primary)':<22} {'requests':>9} "
                f"{'fallbacks':>10} {'ratio':>7}"
            )
            lines += ["Fallback chains", header, "-" * len(header)]
            for row in self.chains:
                lines.append(
                    f"{row.primary:<22} {row.requests:>9d} "
                    f"{row.fallbacks:>10d} {row.fallback_ratio:>6.1%}"
                )
        if self.backends:
            if lines:
                lines.append("")
            header = (
                f"{'backend':<22} {'retries':>8} {'failures':>9} "
                f"{'breaker':>10}"
            )
            lines += ["Backends", header, "-" * len(header)]
            for row in self.backends:
                lines.append(
                    f"{row.backend:<22} {row.retries:>8d} {row.failures:>9d} "
                    f"{row.breaker_state:>10}"
                )
        return "\n".join(lines)


def resilience_report(
    registry: MetricsRegistry | None = None,
) -> ResilienceReport:
    """Assemble the per-chain / per-backend tables from the series."""
    registry = registry or get_registry()
    chains: dict[str, dict[str, float]] = {}
    backends: dict[str, dict[str, float]] = {}
    for (name, label_pairs), metric in registry.items():
        if not name.startswith("resilience."):
            continue
        labels = dict(label_pairs)
        if name in ("resilience.served", "resilience.fallbacks"):
            primary = labels.get("primary")
            if primary is None:
                continue
            slot = chains.setdefault(primary, {})
            slot[name] = slot.get(name, 0.0) + metric.value
        elif name in (
            "resilience.retries",
            "resilience.failures",
            "resilience.breaker_state",
        ):
            backend = labels.get("backend")
            if backend is None:
                continue
            slot = backends.setdefault(backend, {})
            if name == "resilience.failures":
                slot[name] = slot.get(name, 0.0) + metric.value
            else:
                slot[name] = metric.value
    chain_rows = tuple(
        ChainRow(
            primary=primary,
            requests=int(slot.get("resilience.served", 0)),
            fallbacks=int(slot.get("resilience.fallbacks", 0)),
        )
        for primary, slot in sorted(chains.items())
    )
    backend_rows = []
    for backend, slot in sorted(backends.items()):
        state_value = slot.get("resilience.breaker_state", float("nan"))
        state = (
            _STATE_NAMES.get(state_value, "unknown")
            if math.isfinite(state_value)
            else "untracked"
        )
        backend_rows.append(
            BackendRow(
                backend=backend,
                retries=int(slot.get("resilience.retries", 0)),
                failures=int(slot.get("resilience.failures", 0)),
                breaker_state=state,
            )
        )
    return ResilienceReport(chains=chain_rows, backends=tuple(backend_rows))
