"""Request-tracing smoke gate (``make trace-smoke``).

Deterministic, seconds-fast assertions over the per-request tracing
layer end to end:

1. **Disabled is a true no-op** — with the default (disabled) request
   recorder, a seeded load run retains zero records, and the scores it
   returns are bit-identical to the same run with tracing enabled
   (tracing must never touch a score).
2. **Traced load retains the tail** — with tracing enabled, a seeded
   closed-loop run yields ≥1 retained slow-request record, every
   exemplar resolves to a retrievable trace id, and each served
   record's stage timeline (queue-wait + coalesce + kernel + respond)
   sums to within 5% of its recorded enqueue→response wall time — the
   stage-tiling contract.
3. **Burn monitor sees the traffic** — the SLO burn report carries a
   row for every tenant the run served.

Exits non-zero on the first violated invariant.
"""

from __future__ import annotations

import asyncio
import sys

import numpy as np

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import build_probe_models
from repro.runtime import AsyncConfig, ServiceConfig
from repro.serving import LoadSpec, ScoringService, make_queries
from repro.serving.loadgen import run_load_async

#: Closed-loop scenario: enough concurrency to coalesce, small enough
#: to finish in well under a second.
_SPEC = LoadSpec(
    mode="closed",
    workers=12,
    requests_per_worker=8,
    think_time_s=0.0,
    n_users=5_000,
    n_queries=16,
    docs_per_query=8,
    zipf_s=1.1,
    tenants=(("web", 3.0), ("batch", 1.0)),
    seed=7,
)
_FRONTEND = AsyncConfig(max_wait_us=300.0, slo_us=1_000.0)


def _run_load(service, n_features: int):
    async def _go():
        from repro.serving.frontend import AsyncScoringService

        queries = make_queries(_SPEC, n_features)
        async with AsyncScoringService(service, frontend=_FRONTEND) as front:
            return await run_load_async(front, _SPEC, queries)

    return asyncio.run(_go())


def _score_all(service, queries) -> list[np.ndarray]:
    """Every query scored through the async front-end, in order."""

    async def _go():
        from repro.serving.frontend import AsyncScoringService

        async with AsyncScoringService(service, frontend=_FRONTEND) as front:
            return await asyncio.gather(
                *(front.score(q, tenant="web") for q in queries)
            )

    return asyncio.run(_go())


def _fresh_service():
    models = build_probe_models(n_queries=8, docs_per_query=8, seed=0)
    return (
        ScoringService(
            models["dense-network"], ServiceConfig(backend="dense-network")
        ),
        models["dataset"].features.shape[1],
    )


def check_disabled_noop() -> None:
    """Disabled recorder: zero retained records, bit-identical scores."""
    service, n_features = _fresh_service()
    queries = make_queries(_SPEC, n_features)[:12]

    recorder = obs.RequestRecorder(enabled=False)
    previous = obs.set_request_recorder(recorder)
    try:
        scores_off = _score_all(service, queries)
    finally:
        obs.set_request_recorder(previous)
    counts = recorder.counts()
    assert counts["begun"] == 0, f"disabled recorder minted {counts}"
    assert all(
        counts[k] == 0 for k in ("recent", "slowest", "shed", "errored")
    ), f"disabled recorder retained records: {counts}"

    previous = obs.set_request_recorder(obs.RequestRecorder(enabled=True))
    try:
        scores_on = _score_all(service, queries)
    finally:
        obs.set_request_recorder(previous)
    for off, on in zip(scores_off, scores_on):
        assert np.array_equal(off, on), "tracing changed a score"


def check_traced_load() -> None:
    """Traced run: tail retained, exemplars resolve, timelines tile."""
    service, n_features = _fresh_service()
    recorder = obs.RequestRecorder(enabled=True)
    previous_recorder = obs.set_request_recorder(recorder)
    previous_registry = obs.set_registry(MetricsRegistry())
    previous_monitor = obs.set_slo_monitor(obs.SloMonitor())
    try:
        report = _run_load(service, n_features)
        assert report.errors == 0, f"{report.errors} load errors"
        assert report.served > 0, "load run served nothing"

        slowest = recorder.flight.slowest_records()
        assert len(slowest) >= 1, "no slow-request record retained"
        assert report.trace_sample is not None, "report carries no trace"
        assert (
            report.trace_sample["trace_id"] == slowest[0].trace_id
        ), "trace sample is not the slowest retained record"

        exemplars = recorder.exemplars.items()
        assert exemplars, "no exemplars recorded"
        for ex in exemplars:
            assert (
                recorder.flight.get(ex.trace_id) is not None
            ), f"exemplar trace {ex.trace_id} not retrievable"

        served = [
            r for r in recorder.flight.records() if r.status == "ok"
        ]
        assert served, "no served records retained"
        stage_names = {"queue-wait", "coalesce", "kernel", "respond"}
        for record in served:
            names = {s.name for s in record.stages}
            missing = stage_names - names
            assert not missing, (
                f"trace {record.trace_id} lacks stages {sorted(missing)}"
            )
            drift = abs(record.timeline_us - record.wall_us)
            assert drift <= 0.05 * record.wall_us, (
                f"trace {record.trace_id}: stage sum {record.timeline_us:.1f}"
                f" us vs wall {record.wall_us:.1f} us"
            )
            assert record.batch_id is not None, "served record has no batch"

        burn = obs.slo_burn_report()
        tenants = {row.tenant for row in burn.rows}
        assert set(report.served_by_tenant) <= tenants, (
            f"burn report lacks tenants: {report.served_by_tenant} "
            f"vs {tenants}"
        )
    finally:
        obs.set_request_recorder(previous_recorder)
        obs.set_registry(previous_registry)
        obs.set_slo_monitor(previous_monitor)


def main() -> int:
    """Run every check; non-zero exit on the first failure."""
    checks = [check_disabled_noop, check_traced_load]
    for check in checks:
        check()
        print(f"trace-smoke: {check.__name__} ok")
    print("trace-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
