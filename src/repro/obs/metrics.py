"""Counters, gauges and fixed-memory streaming histograms.

The :class:`MetricsRegistry` is the process's one bag of named metrics;
instrumented code asks for a metric by name + labels and gets the same
instance every time (get-or-create under a lock), so recording is a few
dictionary operations per event.

Histograms are **bounded**: a :class:`StreamingHistogram` keeps a fixed
``capacity``-sized reservoir (Vitter's Algorithm R with a seeded
generator, so runs are reproducible) plus exact count/sum/min/max
accumulators.  Percentiles are exact while ``count <= capacity`` and an
unbiased sample estimate after, at O(capacity) memory regardless of how
many observations stream through — the property ``ServiceStats`` relies
on to stay bounded under unbounded request volume.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

import numpy as np

from repro.exceptions import ReproError


class MetricError(ReproError):
    """A metric was fed an invalid value or queried outside its domain."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counters only go up, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (last write wins).

    Deliberately lock-free: ``set`` is a single float assignment, which
    the GIL makes atomic, and concurrent writers racing a gauge is
    harmless — "last write wins" is the gauge contract even on one
    thread.  Readers may observe any recently written value, never a
    torn one.  (Counters and histograms, whose updates are
    read-modify-write, do take locks — see :class:`Counter` /
    :class:`StreamingHistogram` — so all ``MetricsRegistry`` series are
    safe to update from the asyncio event loop and pool threads
    concurrently.)
    """

    kind = "gauge"

    def __init__(self) -> None:
        self._value = float("nan")

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, float]:
        return {"value": self.value}


class StreamingHistogram:
    """Reservoir-backed distribution sketch with O(capacity) memory."""

    kind = "histogram"

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise MetricError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.empty(self.capacity, dtype=np.float64)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        if not math.isfinite(v):
            raise MetricError(f"histogram values must be finite, got {value}")
        with self._lock:
            if self._count < self.capacity:
                self._reservoir[self._count] = v
            else:
                # Algorithm R: keep each of the n seen values with
                # probability capacity/n — an unbiased fixed-size sample.
                j = int(self._rng.integers(0, self._count + 1))
                if j < self.capacity:
                    self._reservoir[j] = v
            self._count += 1
            self._sum += v
            self._min = min(self._min, v)
            self._max = max(self._max, v)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other``'s distribution into this histogram in place.

        Count / sum / min / max merge exactly.  The reservoirs merge by
        **weighted sampling**: when the pooled streams fit in
        ``capacity`` the merged reservoir is the exact pooled sample,
        otherwise ``capacity`` values are drawn without replacement from
        the two reservoirs, each reservoir value weighted by the number
        of stream observations it represents (``count_i / filled_i``) —
        so a reservoir standing in for a million observations outweighs
        one standing in for a hundred, and merged percentiles track the
        pooled distribution.  Per-worker / per-tenant histograms can
        thereby be combined into fleet-level reports without unbounded
        memory.  Returns ``self``.
        """
        if not isinstance(other, StreamingHistogram):
            raise MetricError(
                f"can only merge StreamingHistogram, got {type(other).__name__}"
            )
        if other is self:
            raise MetricError("cannot merge a histogram into itself")
        # Lock ordering by id() — merge may be called concurrently from
        # both directions on the same pair.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            o_filled = other._reservoir[
                : min(other._count, other.capacity)
            ].copy()
            o_count, o_sum = other._count, other._sum
            o_min, o_max = other._min, other._max
            if not o_count:
                return self
            s_filled = self._reservoir[: min(self._count, self.capacity)]
            pooled = np.concatenate([s_filled, o_filled])
            if self._count + o_count <= self.capacity:
                # Both reservoirs are exact and fit: keep everything.
                self._reservoir[: len(pooled)] = pooled
            else:
                weights = np.concatenate(
                    [
                        np.full(
                            len(s_filled),
                            (self._count / len(s_filled)) if len(s_filled) else 0.0,
                        ),
                        np.full(len(o_filled), o_count / len(o_filled)),
                    ]
                )
                take = min(self.capacity, len(pooled))
                chosen = self._rng.choice(
                    len(pooled),
                    size=take,
                    replace=False,
                    p=weights / weights.sum(),
                )
                self._reservoir[:take] = pooled[chosen]
            self._count += o_count
            self._sum += o_sum
            self._min = min(self._min, o_min)
            self._max = max(self._max, o_max)
        return self

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``) of the stream.

        Exact while at most ``capacity`` values have been seen, a
        reservoir estimate beyond.
        """
        if not 0.0 <= q <= 100.0:
            raise MetricError(
                f"percentile q must be in [0, 100], got {q}"
            )
        if not self._count:
            return float("nan")
        with self._lock:
            filled = self._reservoir[: min(self._count, self.capacity)]
            return float(np.percentile(filled, q))

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


Metric = Counter | Gauge | StreamingHistogram

#: Registry key: metric name plus its sorted label pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _labels_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe name+labels → metric store with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[MetricKey, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, labels: dict) -> Metric:
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = factory()
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        metric = self._get_or_create(name, Counter, labels)
        if not isinstance(metric, Counter):
            raise MetricError(f"{name} is registered as a {metric.kind}")
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        metric = self._get_or_create(name, Gauge, labels)
        if not isinstance(metric, Gauge):
            raise MetricError(f"{name} is registered as a {metric.kind}")
        return metric

    def histogram(
        self, name: str, *, capacity: int = 2048, **labels: Any
    ) -> StreamingHistogram:
        metric = self._get_or_create(
            name, lambda: StreamingHistogram(capacity=capacity), labels
        )
        if not isinstance(metric, StreamingHistogram):
            raise MetricError(f"{name} is registered as a {metric.kind}")
        return metric

    # ------------------------------------------------------------------
    def items(self) -> list[tuple[MetricKey, Metric]]:
        """Snapshot of (key, metric) pairs, sorted by name then labels."""
        with self._lock:
            return sorted(self._metrics.items(), key=lambda kv: kv[0])

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump: one entry per (name, labels) series."""
        series = []
        for (name, labels), metric in self.items():
            series.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "kind": metric.kind,
                    **metric.snapshot(),
                }
            )
        return {"series": series}

    def reset(self) -> None:
        """Forget every metric (instances are discarded)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# Process-wide default registry (always on — recording is cheap)
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def counter(name: str, **labels: Any) -> Counter:
    return _default_registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _default_registry.gauge(name, **labels)


def histogram(name: str, *, capacity: int = 2048, **labels: Any) -> StreamingHistogram:
    return _default_registry.histogram(name, capacity=capacity, **labels)
