"""A tiny three-backend scoring workload that exercises the whole layer.

:func:`run_probe` builds miniature models of the paper's three serving
families — a LambdaMART forest behind QuickScorer, a dense student and a
first-layer-sparse student — routes a stream of per-query requests
through :class:`~repro.serving.ScoringService`, and returns the services
so callers can inspect stats, drift and spans.  It backs both the
``repro stats`` subcommand and the ``make obs-smoke`` gate: small enough
to run in seconds, real enough to touch pricing, batching, tracing and
the drift gauges end to end.

Heavyweight imports stay inside the functions: ``repro.obs`` is imported
*by* the runtime/serving layers, so this module must not drag them in at
package-import time.
"""

from __future__ import annotations

from typing import Any


def build_probe_models(
    *, n_queries: int = 24, docs_per_query: int = 16, seed: int = 0
) -> dict[str, Any]:
    """A tiny dataset plus one model per backend family.

    The students are randomly initialised (drift audits scoring *cost*,
    which is architecture-determined, not quality); the forest is a real
    few-round LambdaMART fit so QuickScorer traverses genuine trees.
    """
    from repro.datasets.normalization import ZNormalizer
    from repro.datasets.synthetic import make_msn30k_like
    from repro.distill.student import DistilledStudent
    from repro.forest.gbdt import GradientBoostingConfig
    from repro.forest.lambdamart import LambdaMartRanker
    from repro.nn.network import FeedForwardNetwork
    from repro.pruning.magnitude import LevelPruner

    dataset = make_msn30k_like(
        n_queries=n_queries, docs_per_query=docs_per_query, seed=seed
    )
    forest = LambdaMartRanker(
        GradientBoostingConfig(n_trees=8, max_leaves=16), seed=seed
    ).fit(dataset, name="probe-forest")

    normalizer = ZNormalizer().fit(dataset.features)
    dense = DistilledStudent(
        FeedForwardNetwork(dataset.n_features, (32, 16), seed=seed),
        normalizer,
        teacher_description="probe (untrained)",
    )
    sparse = dense.clone()
    LevelPruner(0.95).apply(sparse.network.first_layer)
    return {
        "dataset": dataset,
        "quickscorer": forest,
        "dense-network": dense,
        "sparse-network": sparse,
    }


def run_probe(
    *,
    n_queries: int = 24,
    docs_per_query: int = 16,
    seed: int = 0,
    max_batch_size: int | None = 64,
) -> dict[str, Any]:
    """Score every query with every backend; returns the services.

    The result maps backend name to its :class:`ScoringService`, plus
    ``"dataset"`` to the generated collection.
    """
    from repro import obs
    from repro.serving import ScoringService

    models = build_probe_models(
        n_queries=n_queries, docs_per_query=docs_per_query, seed=seed
    )
    dataset = models["dataset"]
    services: dict[str, Any] = {"dataset": dataset}
    for backend in ("quickscorer", "dense-network", "sparse-network"):
        with obs.span("probe.serve", backend=backend):
            service = ScoringService(
                models[backend], backend=backend, max_batch_size=max_batch_size
            )
            for start, stop in zip(
                dataset.query_ptr[:-1], dataset.query_ptr[1:]
            ):
                service.score(dataset.features[start:stop])
        services[backend] = service
    return services
