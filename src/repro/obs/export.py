"""Exporters: trace trees and metrics snapshots as JSON / Prometheus text.

Two render targets cover both consumption modes:

* :func:`render_json` — one machine-readable document with the span
  forest and every metric series, for attaching to benchmark results or
  shipping to a collector;
* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, ``name{label="v"} value`` samples; histograms
  expand into ``_count`` / ``_sum`` and ``quantile``-labelled samples),
  so a scrape endpoint or ``promtool`` can consume the snapshot as-is.

Metric names are sanitised (dots and dashes become underscores) only at
export time; the registry keeps the library's dotted naming convention.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs.metrics import MetricsRegistry, StreamingHistogram, get_registry
from repro.obs.tracer import Tracer, get_tracer

_INVALID_PROM_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A metric name mapped into the Prometheus grammar."""
    sanitised = _INVALID_PROM_CHARS.sub("_", name)
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """A label value escaped per the exposition format.

    Backslash first, then quote and newline — otherwise the escapes
    themselves get re-escaped.
    """
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{prometheus_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry snapshot in Prometheus text exposition format."""
    registry = registry or get_registry()
    lines: list[str] = []
    typed: set[str] = set()
    for (name, label_pairs), metric in registry.items():
        pname = prometheus_name(name)
        labels = dict(label_pairs)
        if pname not in typed:
            prom_kind = "summary" if metric.kind == "histogram" else metric.kind
            lines.append(f"# TYPE {pname} {prom_kind}")
            typed.add(pname)
        if isinstance(metric, StreamingHistogram):
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f"{pname}{_prom_labels(labels, {'quantile': str(q)})} "
                    f"{_prom_value(metric.percentile(q * 100.0))}"
                )
            lines.append(
                f"{pname}_sum{_prom_labels(labels)} {_prom_value(metric.sum)}"
            )
            lines.append(f"{pname}_count{_prom_labels(labels)} {metric.count}")
        else:
            lines.append(
                f"{pname}{_prom_labels(labels)} {_prom_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_dict(
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Span forest + metric series as one JSON-ready dictionary."""
    tracer = tracer or get_tracer()
    registry = registry or get_registry()
    return {
        "trace": [root.to_dict() for root in tracer.root_spans()],
        "metrics": registry.snapshot(),
    }


def render_json(
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    document: dict[str, Any] | None = None,
    indent: int | None = 2,
) -> str:
    """:func:`snapshot_dict` serialised (NaNs mapped to ``null``).

    When ``document`` is given it is serialised instead — with the same
    NaN-to-``null`` treatment — so callers can embed a snapshot inside a
    larger result document (see ``benchmarks/_common.py``).
    """
    doc = (
        document
        if document is not None
        else snapshot_dict(tracer=tracer, registry=registry)
    )

    def _nan_safe(obj):
        if isinstance(obj, dict):
            return {k: _nan_safe(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [_nan_safe(v) for v in obj]
        if isinstance(obj, float) and not math.isfinite(obj):
            return None
        return obj

    return json.dumps(_nan_safe(doc), indent=indent, sort_keys=True)


def render_trace_tree(tracer: Tracer | None = None) -> str:
    """ASCII span tree of the (default) tracer."""
    return (tracer or get_tracer()).render()
