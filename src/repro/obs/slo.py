"""Per-tenant SLO burn-rate monitoring over sliding time windows.

``serving.slo_miss`` is a cumulative counter — fine for a post-hoc
report, useless for paging: a counter cannot say *how fast* the error
budget is burning right now.  :class:`SloMonitor` keeps, per tenant,
served/missed counts in a ring of fixed-width time buckets and derives
the classic SRE **multi-window burn rate**:

    ``burn = (missed / served) / error_budget``

where ``error_budget = 1 - objective`` (objective 99.9% → budget
0.1%).  A burn rate of 1.0 spends exactly the budget over the SLO
period; the standard paging thresholds are *fast* (5-minute window,
threshold 14.4 — budget gone in ~2 days) and *slow* (1-hour window,
threshold 6 — gone in ~5 days).  Requiring the short window keeps
alerts fresh; requiring the long one keeps them from flapping on a
single bad batch.

Memory is O(tenants × bins): each tenant owns one ring of
``policy.bins`` buckets of width ``slow_window_s / bins``; the fast
window reads the newest few buckets of the same ring.  Bucket-edge
granularity means a window's totals can be off by up to one bucket
width of traffic — irrelevant at alerting timescales.

The monitor runs on its own wall-clock (``time.monotonic`` by default,
injectable for tests) rather than the front-end's request clock, and is
fed by :func:`repro.obs.serving.record_response` via
:func:`record_slo_event` whenever a response carries an SLO.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError


@dataclass(frozen=True)
class SloPolicy:
    """Objective + window/threshold configuration for burn alerting."""

    objective: float = 0.999
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    bins: int = 60

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ReproError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ReproError("burn windows must be positive")
        if self.fast_window_s > self.slow_window_s:
            raise ReproError(
                "fast window must not exceed the slow window "
                f"({self.fast_window_s} > {self.slow_window_s})"
            )
        if self.bins < 2:
            raise ReproError(f"bins must be >= 2, got {self.bins}")

    @property
    def error_budget(self) -> float:
        """The tolerated miss ratio: ``1 - objective``."""
        return 1.0 - self.objective

    @property
    def bucket_s(self) -> float:
        """Ring bucket width in seconds."""
        return self.slow_window_s / self.bins


class _WindowCounts:
    """Served/missed counts in a ring of fixed-width time buckets.

    Each slot remembers which bucket *epoch* (``floor(now / bucket_s)``)
    it holds; writing into a slot whose epoch is stale resets it first,
    so the ring never needs a sweeper.
    """

    __slots__ = ("bucket_s", "epochs", "served", "missed")

    def __init__(self, bucket_s: float, n_buckets: int) -> None:
        self.bucket_s = bucket_s
        self.epochs = [-1] * n_buckets
        self.served = [0] * n_buckets
        self.missed = [0] * n_buckets

    def record(self, miss: bool, now: float) -> None:
        epoch = int(now // self.bucket_s)
        idx = epoch % len(self.epochs)
        if self.epochs[idx] != epoch:
            self.epochs[idx] = epoch
            self.served[idx] = 0
            self.missed[idx] = 0
        self.served[idx] += 1
        if miss:
            self.missed[idx] += 1

    def totals(self, window_s: float, now: float) -> tuple[int, int]:
        """(served, missed) across buckets overlapping the last window."""
        current = int(now // self.bucket_s)
        oldest = current - int(math.ceil(window_s / self.bucket_s)) + 1
        served = missed = 0
        for idx, epoch in enumerate(self.epochs):
            if oldest <= epoch <= current:
                served += self.served[idx]
                missed += self.missed[idx]
        return served, missed


@dataclass(frozen=True)
class BurnRow:
    """One tenant's burn position across both alert windows."""

    tenant: str
    fast_served: int
    fast_missed: int
    slow_served: int
    slow_missed: int
    fast_burn: float
    slow_burn: float
    fast_threshold: float
    slow_threshold: float

    @property
    def state(self) -> str:
        """``idle`` / ``ok`` / ``slow-burn`` / ``fast-burn``.

        ``fast-burn`` requires *both* windows over their thresholds —
        the multi-window AND that keeps a single bad batch from paging.
        """
        if not self.slow_served:
            return "idle"
        if (
            self.fast_burn >= self.fast_threshold
            and self.slow_burn >= self.slow_threshold
        ):
            return "fast-burn"
        if self.slow_burn >= self.slow_threshold:
            return "slow-burn"
        return "ok"

    def describe(self) -> str:
        return (
            f"{self.tenant}: fast burn {self.fast_burn:.1f}x "
            f"({self.fast_missed}/{self.fast_served}), "
            f"slow burn {self.slow_burn:.1f}x "
            f"({self.slow_missed}/{self.slow_served}) -> {self.state}"
        )


@dataclass(frozen=True)
class SloBurnReport:
    """Burn rows for every tenant the monitor has seen."""

    policy: SloPolicy
    rows: tuple[BurnRow, ...]

    def tenant(self, name: str) -> BurnRow | None:
        for row in self.rows:
            if row.tenant == name:
                return row
        return None

    @property
    def alerting(self) -> tuple[BurnRow, ...]:
        """Rows currently in ``fast-burn`` or ``slow-burn``."""
        return tuple(r for r in self.rows if r.state.endswith("burn"))

    def to_dict(self) -> dict:
        """JSON-ready report."""
        return {
            "objective": self.policy.objective,
            "rows": [
                {
                    "tenant": r.tenant,
                    "fast_served": r.fast_served,
                    "fast_missed": r.fast_missed,
                    "slow_served": r.slow_served,
                    "slow_missed": r.slow_missed,
                    "fast_burn": round(r.fast_burn, 3),
                    "slow_burn": round(r.slow_burn, 3),
                    "state": r.state,
                }
                for r in self.rows
            ],
        }

    def render(self) -> str:
        """ASCII burn table, one row per tenant."""
        if not self.rows:
            return "(no SLO traffic recorded)"
        header = (
            f"{'tenant':<14} {'fast miss':>12} {'fast burn':>10} "
            f"{'slow miss':>12} {'slow burn':>10} {'state':>10}"
        )
        lines = [
            f"SLO burn (objective {self.policy.objective:.3%}, budget "
            f"{self.policy.error_budget:.3%})",
            header,
            "-" * len(header),
        ]
        for r in self.rows:
            lines.append(
                f"{r.tenant:<14} "
                f"{f'{r.fast_missed}/{r.fast_served}':>12} "
                f"{r.fast_burn:>9.1f}x "
                f"{f'{r.slow_missed}/{r.slow_served}':>12} "
                f"{r.slow_burn:>9.1f}x {r.state:>10}"
            )
        return "\n".join(lines)


class SloMonitor:
    """Thread-safe per-tenant burn-rate tracker.

    Parameters
    ----------
    policy:
        Objective, windows and thresholds (default: 99.9% objective,
        5-minute/14.4× fast and 1-hour/6× slow windows).
    clock:
        Monotonic-seconds source — injectable so tests can replay
        hours of traffic instantly.
    """

    def __init__(
        self,
        policy: SloPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or SloPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        # One extra bucket so the slot being overwritten "now" never
        # aliases the oldest slot still inside the slow window.
        self._n_buckets = self.policy.bins + 1
        self._tenants: dict[str, _WindowCounts] = {}

    # ------------------------------------------------------------------
    def record(
        self, tenant: str, miss: bool, *, now: float | None = None
    ) -> None:
        """Fold one served response (hit or miss) into the windows."""
        now = self._clock() if now is None else now
        with self._lock:
            counts = self._tenants.get(tenant)
            if counts is None:
                counts = self._tenants[tenant] = _WindowCounts(
                    self.policy.bucket_s, self._n_buckets
                )
            counts.record(miss, now)

    def report(self, *, now: float | None = None) -> SloBurnReport:
        """The burn table at ``now`` (defaults to the monitor's clock)."""
        now = self._clock() if now is None else now
        policy = self.policy
        rows = []
        with self._lock:
            tenants = sorted(self._tenants.items())
            for tenant, counts in tenants:
                fast_served, fast_missed = counts.totals(
                    policy.fast_window_s, now
                )
                slow_served, slow_missed = counts.totals(
                    policy.slow_window_s, now
                )
                rows.append(
                    BurnRow(
                        tenant=tenant,
                        fast_served=fast_served,
                        fast_missed=fast_missed,
                        slow_served=slow_served,
                        slow_missed=slow_missed,
                        fast_burn=_burn(
                            fast_missed, fast_served, policy.error_budget
                        ),
                        slow_burn=_burn(
                            slow_missed, slow_served, policy.error_budget
                        ),
                        fast_threshold=policy.fast_burn,
                        slow_threshold=policy.slow_burn,
                    )
                )
        return SloBurnReport(policy=policy, rows=tuple(rows))

    def reset(self) -> None:
        """Forget every tenant's windows."""
        with self._lock:
            self._tenants.clear()


def _burn(missed: int, served: int, budget: float) -> float:
    if not served:
        return 0.0
    return (missed / served) / budget


# ----------------------------------------------------------------------
# Process-wide default monitor
# ----------------------------------------------------------------------
_default_monitor = SloMonitor()


def get_slo_monitor() -> SloMonitor:
    """The process-wide default SLO burn monitor."""
    return _default_monitor


def set_slo_monitor(monitor: SloMonitor) -> SloMonitor:
    """Replace the default SLO monitor; returns the previous one."""
    global _default_monitor
    previous = _default_monitor
    _default_monitor = monitor
    return previous


def record_slo_event(tenant: str, miss: bool) -> None:
    """Fold one SLO-accounted response into the default monitor."""
    _default_monitor.record(tenant, miss)


def slo_burn_report() -> SloBurnReport:
    """The default monitor's burn table."""
    return _default_monitor.report()
