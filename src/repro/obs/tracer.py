"""Nested, timed spans — the library's tracing substrate.

A :class:`Tracer` produces a tree of :class:`Span` objects per thread:
``tracer.span("stage")`` opens a child of whatever span is currently
active on the calling thread (thread-local stacks, so concurrent request
threads never interleave their trees), and :meth:`Tracer.trace` wraps a
function the same way.  Completed roots accumulate on the tracer until
:meth:`Tracer.reset`.

The process-wide default tracer starts **disabled** and is then a true
no-op: :func:`span` hands back a shared singleton whose ``__enter__`` /
``__exit__`` do nothing — no allocation, no clock read, no lock — so
instrumentation can stay unconditionally in hot paths (the guard test in
``tests/test_obs_drift.py`` pins the cost).
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ReproError


@dataclass
class Span:
    """One timed, attributed node of a trace tree."""

    name: str
    start_s: float
    end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; raises :class:`ReproError` while unfinished.

        An open span has no duration — silently reading the wall clock
        here produced values that changed between reads and leaked into
        exported snapshots.  Renderers that want a live reading use
        :meth:`elapsed_s` explicitly.
        """
        if self.end_s is None:
            raise ReproError(
                f"span {self.name!r} is still open; duration is undefined "
                "(use elapsed_s() for a live reading)"
            )
        return self.end_s - self.start_s

    @property
    def duration_us(self) -> float:
        """Elapsed microseconds; raises while the span is unfinished."""
        return self.duration_s * 1e6

    def elapsed_s(self, now: float | None = None) -> float:
        """Seconds from start to ``now`` (or the clock) — open-span safe."""
        if self.end_s is not None:
            return self.end_s - self.start_s
        return (now if now is not None else time.perf_counter()) - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of this span and its subtree.

        Unfinished spans export ``duration_us: None`` rather than a
        wall-clock-dependent reading.
        """
        return {
            "name": self.name,
            "duration_us": (
                round(self.duration_us, 3) if self.finished else None
            ),
            "finished": self.finished,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def tree_lines(self, indent: int = 0) -> list[str]:
        """ASCII rendering of the subtree, one line per span."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        suffix = f"  [{attrs}]" if attrs else ""
        mark = "" if self.finished else "  (open)"
        lines = [
            f"{'  ' * indent}{self.name:<{max(1, 36 - 2 * indent)}} "
            f"{self.elapsed_s() * 1e6:>12.1f} us{suffix}{mark}"
        ]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`Span` on enter."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self.span = Span(
            name=self._name, start_s=time.perf_counter(), attrs=self._attrs
        )
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end_s = time.perf_counter()
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Thread-safe producer of nested span trees.

    Parameters
    ----------
    enabled:
        When false, :meth:`span` returns a shared no-op context manager
        and nothing is recorded.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a span named ``name`` (context manager yielding it)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def trace(self, name: str | None = None) -> Callable:
        """Decorator tracing every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate misnested exits rather than corrupting the stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def root_spans(self) -> list[Span]:
        """Snapshot of the recorded root spans (all threads)."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop every recorded span (open stacks are left alone)."""
        with self._lock:
            self._roots.clear()

    def render(self) -> str:
        """ASCII span tree of everything recorded so far."""
        roots = self.root_spans()
        if not roots:
            return "(no spans recorded)"
        lines: list[str] = []
        for root in roots:
            lines.extend(root.tree_lines())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide default tracer (disabled until someone opts in)
# ----------------------------------------------------------------------
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def enable_tracing(enabled: bool = True) -> None:
    """Switch the default tracer on (or off with ``enabled=False``)."""
    _default_tracer.enabled = enabled


def tracing_enabled() -> bool:
    return _default_tracer.enabled


def span(name: str, **attrs: Any):
    """Open a span on the default tracer (no-op while disabled)."""
    return _default_tracer.span(name, **attrs)


def trace(name: str | None = None) -> Callable:
    """Decorator tracing calls through the *current* default tracer.

    The tracer is looked up at call time, so functions decorated at
    import keep honouring later :func:`enable_tracing` /
    :func:`set_tracer` calls.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _default_tracer.span(span_name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
