"""Self-checking observability smoke run (``make obs-smoke``).

Runs the three-backend probe with tracing enabled, renders every
exporter, and *asserts* the output is well-formed: the JSON document
parses and carries spans plus metric series, the Prometheus text obeys
the exposition grammar, and the drift report covers the QuickScorer,
dense and sparse backends.  Exits non-zero on any violation, so CI can
gate on ``python -m repro.obs.smoke``.
"""

from __future__ import annotations

import json
import re
import sys

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?[0-9].*|[+-]Inf)$"
)

REQUIRED_BACKENDS = ("quickscorer", "dense-network", "sparse-network")


def check_json(text: str) -> None:
    doc = json.loads(text)
    assert "trace" in doc and "metrics" in doc, "snapshot missing sections"
    assert doc["trace"], "no spans recorded with tracing enabled"
    assert doc["metrics"]["series"], "no metric series recorded"
    for root in doc["trace"]:
        assert root["finished"], f"unfinished root span {root['name']!r}"


def check_prometheus(text: str) -> None:
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"


def main() -> int:
    from repro import obs
    from repro.obs.probe import run_probe

    obs.set_tracer(obs.Tracer(enabled=True))
    obs.set_registry(obs.MetricsRegistry())

    with obs.span("obs.smoke"):
        run_probe(n_queries=12, docs_per_query=10)

    check_json(obs.render_json())
    check_prometheus(obs.render_prometheus())

    report = obs.drift_report()
    for backend in REQUIRED_BACKENDS:
        row = report.row(backend)
        assert row is not None and row.requests > 0, (
            f"no drift series for backend {backend!r}"
        )
    print(report.render())
    print("obs-smoke: exporters well-formed, drift series complete")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
