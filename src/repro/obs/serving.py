"""Serving front-end metric series and the per-tenant traffic report.

The asyncio front-end (:mod:`repro.serving.frontend`) folds every
admission decision, coalesced batch and response into the default
:class:`~repro.obs.metrics.MetricsRegistry`, the same way the batch
engine feeds the drift series:

* ``serving.requests`` (counter, label ``tenant``) — requests admitted
  past the token buckets and queue-depth caps;
* ``serving.shed`` (counter, labels ``tenant``, ``reason``) — requests
  rejected at admission (``rate-limit``, ``queue-depth``,
  ``tenant-queue-depth``);
* ``serving.slo_miss`` (counter, label ``tenant``) — served responses
  whose enqueue→response wall time overran the tenant's SLO;
* ``serving.latency_us`` (histogram, label ``tenant``) — per-response
  enqueue→response wall time in µs, at bounded memory;
* ``serving.batches`` (counter) / ``serving.batch_requests`` /
  ``serving.batch_docs`` (histograms) — coalesced-batch shape: how many
  requests and document rows each engine call folded together;
* ``serving.queue_depth`` (gauge) — pending requests at the moment the
  batcher drained.

:func:`serving_report` reads the series back into one row per tenant —
admitted/shed/SLO-miss counts and latency percentiles — plus a
coalescing summary, the front-end counterpart of
:func:`repro.obs.parallel.parallel_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slo import record_slo_event


def record_admitted(
    tenant: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one request admitted past the front-end's admission layer."""
    registry = registry or get_registry()
    registry.counter("serving.requests", tenant=tenant).inc()


def record_shed(
    tenant: str, reason: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one request shed at admission, by reason."""
    registry = registry or get_registry()
    registry.counter("serving.shed", tenant=tenant, reason=reason).inc()


def record_response(
    tenant: str,
    latency_us: float,
    *,
    slo_us: float | None = None,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one served response into the latency/SLO series.

    ``latency_us`` is enqueue→response wall time; when ``slo_us`` is
    given and overrun, the tenant's ``serving.slo_miss`` counter ticks.
    Every SLO-accounted response (hit or miss) also feeds the default
    :class:`~repro.obs.slo.SloMonitor`, which derives the multi-window
    burn rates the cumulative counter cannot express.
    """
    registry = registry or get_registry()
    registry.histogram("serving.latency_us", tenant=tenant).add(latency_us)
    if slo_us is not None:
        miss = latency_us > slo_us
        record_slo_event(tenant, miss)
        if miss:
            registry.counter("serving.slo_miss", tenant=tenant).inc()


def record_batch(
    *,
    n_requests: int,
    n_docs: int,
    queue_depth: int,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one coalesced engine call into the batch-shape series."""
    registry = registry or get_registry()
    registry.counter("serving.batches").inc()
    registry.histogram("serving.batch_requests").add(n_requests)
    registry.histogram("serving.batch_docs").add(n_docs)
    registry.gauge("serving.queue_depth").set(queue_depth)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantRow:
    """One tenant's admission, shedding and latency position."""

    tenant: str
    admitted: int
    served: int
    shed: int
    shed_reasons: tuple[tuple[str, int], ...]
    slo_miss: int
    p50_us: float
    p95_us: float
    p99_us: float

    @property
    def offered(self) -> int:
        """Requests the tenant offered: admitted plus shed."""
        return self.admitted + self.shed

    @property
    def shed_ratio(self) -> float:
        """Shed over offered traffic (``nan`` before any traffic)."""
        return self.shed / self.offered if self.offered else float("nan")

    @property
    def slo_miss_ratio(self) -> float:
        """SLO misses over served responses (``nan`` with none served)."""
        return self.slo_miss / self.served if self.served else float("nan")

    def describe(self) -> str:
        return (
            f"{self.tenant}: {self.admitted} admitted, "
            f"{self.shed} shed ({self.shed_ratio:.1%}), "
            f"{self.slo_miss} SLO misses, p99 {self.p99_us:.0f} us"
        )


@dataclass(frozen=True)
class ServingReport:
    """Per-tenant traffic rows plus the coalescing summary."""

    rows: tuple[TenantRow, ...]
    batches: int
    mean_batch_requests: float
    mean_batch_docs: float
    last_queue_depth: float

    def tenant(self, name: str) -> TenantRow | None:
        for row in self.rows:
            if row.tenant == name:
                return row
        return None

    @property
    def coalesce_ratio(self) -> float:
        """Mean requests folded into one engine call (1.0 = no gain)."""
        return self.mean_batch_requests

    def render(self) -> str:
        if not self.rows and not self.batches:
            return "(no serving traffic recorded)"
        header = (
            f"{'tenant':<14} {'offered':>8} {'admitted':>9} {'shed':>6} "
            f"{'shed%':>7} {'slo miss':>9} {'p50 us':>9} {'p95 us':>9} "
            f"{'p99 us':>9}"
        )
        lines = ["Serving front-end", header, "-" * len(header)]
        for row in self.rows:
            shed_pct = (
                f"{row.shed_ratio:>6.1%}"
                if math.isfinite(row.shed_ratio)
                else f"{'-':>6}"
            )
            lines.append(
                f"{row.tenant:<14} {row.offered:>8d} {row.admitted:>9d} "
                f"{row.shed:>6d} {shed_pct} {row.slo_miss:>9d} "
                f"{_us(row.p50_us)} {_us(row.p95_us)} {_us(row.p99_us)}"
            )
        lines.append(
            f"coalescing: {self.batches} batches, "
            f"{self.mean_batch_requests:.1f} requests/batch, "
            f"{self.mean_batch_docs:.1f} docs/batch, "
            f"queue depth {self.last_queue_depth:.0f} at last drain"
        )
        return "\n".join(lines)


def _us(value: float) -> str:
    return f"{value:>9.0f}" if math.isfinite(value) else f"{'-':>9}"


def serving_report(
    registry: MetricsRegistry | None = None,
) -> ServingReport:
    """Assemble the per-tenant traffic table from the ``serving.*`` series."""
    registry = registry or get_registry()
    admitted: dict[str, int] = {}
    shed: dict[str, dict[str, int]] = {}
    slo_miss: dict[str, int] = {}
    latency: dict[str, dict[str, float]] = {}
    batches = 0
    mean_batch_requests = float("nan")
    mean_batch_docs = float("nan")
    last_queue_depth = float("nan")
    for (name, label_pairs), metric in registry.items():
        labels = dict(label_pairs)
        tenant = labels.get("tenant")
        if name == "serving.requests" and tenant is not None:
            admitted[tenant] = int(metric.value)
        elif name == "serving.shed" and tenant is not None:
            reason = labels.get("reason", "?")
            shed.setdefault(tenant, {})[reason] = int(metric.value)
        elif name == "serving.slo_miss" and tenant is not None:
            slo_miss[tenant] = int(metric.value)
        elif name == "serving.latency_us" and tenant is not None:
            latency[tenant] = metric.snapshot()
        elif name == "serving.batches":
            batches = int(metric.value)
        elif name == "serving.batch_requests":
            mean_batch_requests = metric.mean
        elif name == "serving.batch_docs":
            mean_batch_docs = metric.mean
        elif name == "serving.queue_depth":
            last_queue_depth = metric.value
    tenants = sorted(
        set(admitted) | set(shed) | set(slo_miss) | set(latency)
    )
    rows = tuple(
        TenantRow(
            tenant=tenant,
            admitted=admitted.get(tenant, 0),
            served=int(latency.get(tenant, {}).get("count", 0)),
            shed=sum(shed.get(tenant, {}).values()),
            shed_reasons=tuple(sorted(shed.get(tenant, {}).items())),
            slo_miss=slo_miss.get(tenant, 0),
            p50_us=latency.get(tenant, {}).get("p50", float("nan")),
            p95_us=latency.get(tenant, {}).get("p95", float("nan")),
            p99_us=latency.get(tenant, {}).get("p99", float("nan")),
        )
        for tenant in tenants
    )
    return ServingReport(
        rows=rows,
        batches=batches,
        mean_batch_requests=mean_batch_requests,
        mean_batch_docs=mean_batch_docs,
        last_queue_depth=last_queue_depth,
    )
