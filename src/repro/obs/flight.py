"""Flight recorder: bounded retention of per-request trace records.

A fleet under load produces far more request traces than anyone can
keep, and the interesting ones are exactly the ones a uniform ring
buffer evicts first: the tail.  :class:`FlightRecorder` therefore
retains **tail-based**:

* a ring of the most *recent* records (context for "what was the
  service doing just now"),
* the *slowest-N* served requests ever seen (a min-heap keyed on wall
  time, so a new slow request evicts the least slow retained one),
* every *shed* and every *errored* request, each in its own bounded
  ring (oldest evicted first).

All four stores are bounded at construction time, so memory stays
O(recent + slowest + shed + errored) regardless of traffic volume.
Lookup by trace id is a linear scan over a few hundred retained
records — lookups are rare (CLI / smoke), retention is hot.

:class:`ExemplarStore` is the histogram↔trace bridge: per tenant and
per geometric latency bucket it keeps the *last* trace id observed in
that bucket (plus its value and a hit count), so a fat ``p99`` in
``serving.latency_us`` resolves to a concrete trace one can pull from
the flight recorder.  This mirrors OpenMetrics exemplars at a fraction
of the machinery.

Records are stored as the live objects (anything with ``trace_id`` /
``status`` / ``wall_us`` / ``to_dict()`` — in practice
:class:`repro.obs.requests.RequestContext`); :func:`render_record`
renders the *dict* form, so JSON-round-tripped records render the same
as live ones.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ReproError

#: Geometric latency bucket upper bounds (µs) for exemplars: 250µs .. 3s.
DEFAULT_EXEMPLAR_BUCKETS_US: tuple[float, ...] = (
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    1_000_000.0,
    3_000_000.0,
    float("inf"),
)


class FlightRecorder:
    """Bounded, tail-biased store of finished request records.

    Parameters
    ----------
    recent:
        Ring size for the most recently finished records (any status).
    slowest:
        How many of the slowest served ("ok") requests to retain
        forever (min-heap eviction: a new record must beat the fastest
        retained one).
    shed, errored:
        Ring sizes for shed and errored requests (all are retained
        until the ring wraps).
    """

    def __init__(
        self,
        *,
        recent: int = 256,
        slowest: int = 32,
        shed: int = 256,
        errored: int = 256,
    ) -> None:
        for label, value in (
            ("recent", recent),
            ("slowest", slowest),
            ("shed", shed),
            ("errored", errored),
        ):
            if value < 1:
                raise ReproError(f"{label} capacity must be >= 1, got {value}")
        self.slowest_capacity = int(slowest)
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=int(recent))
        self._slowest: list[tuple[float, int, Any]] = []
        self._shed: deque = deque(maxlen=int(shed))
        self._errored: deque = deque(maxlen=int(errored))
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def retain(self, record: Any) -> None:
        """File one finished record into every store its status earns."""
        with self._lock:
            self._recent.append(record)
            status = record.status
            if status == "shed":
                self._shed.append(record)
            elif status == "error":
                self._errored.append(record)
            else:
                entry = (record.wall_us, next(self._seq), record)
                if len(self._slowest) < self.slowest_capacity:
                    heapq.heappush(self._slowest, entry)
                elif entry[0] > self._slowest[0][0]:
                    heapq.heapreplace(self._slowest, entry)

    # ------------------------------------------------------------------
    def records(self) -> list[Any]:
        """Every retained record, deduplicated, oldest first."""
        with self._lock:
            merged: dict[str, Any] = {}
            pools = (
                self._recent,
                (entry[2] for entry in self._slowest),
                self._shed,
                self._errored,
            )
            for pool in pools:
                for record in pool:
                    merged.setdefault(record.trace_id, record)
            return list(merged.values())

    def get(self, trace_id: str) -> Any | None:
        """The retained record with exactly this trace id, if any."""
        for record in self.records():
            if record.trace_id == trace_id:
                return record
        return None

    def find(self, prefix: str) -> list[Any]:
        """Retained records whose trace id starts with ``prefix``."""
        return [r for r in self.records() if r.trace_id.startswith(prefix)]

    def slowest_records(self, n: int | None = None) -> list[Any]:
        """The slowest retained served requests, slowest first."""
        with self._lock:
            ranked = sorted(self._slowest, key=lambda e: -e[0])
        records = [entry[2] for entry in ranked]
        return records if n is None else records[:n]

    def counts(self) -> dict[str, int]:
        """Retained record counts per store (recent may overlap others)."""
        with self._lock:
            return {
                "recent": len(self._recent),
                "slowest": len(self._slowest),
                "shed": len(self._shed),
                "errored": len(self._errored),
            }

    def clear(self) -> None:
        """Drop every retained record."""
        with self._lock:
            self._recent.clear()
            self._slowest.clear()
            self._shed.clear()
            self._errored.clear()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump: counts plus every retained record."""
        return {
            "counts": self.counts(),
            "records": [r.to_dict() for r in self.records()],
        }

    def render(self) -> str:
        """One-line-per-record summary of the retained tail."""
        counts = self.counts()
        slowest = self.slowest_records()
        lines = [
            "Flight recorder: "
            + ", ".join(f"{k} {v}" for k, v in counts.items())
        ]
        for record in slowest[:10]:
            lines.append(
                f"  {record.trace_id}  {record.tenant:<12} "
                f"{record.status:<6} {record.wall_us:>10.0f} us"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Exemplars
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Exemplar:
    """The last trace seen in one (tenant, latency-bucket) cell."""

    tenant: str
    le_us: float
    value_us: float
    trace_id: str
    count: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (``le_us`` may be ``inf``)."""
        return {
            "tenant": self.tenant,
            "le_us": self.le_us,
            "value_us": round(self.value_us, 3),
            "trace_id": self.trace_id,
            "count": self.count,
        }


class ExemplarStore:
    """Last-trace-id-per-latency-bucket, per tenant, at O(buckets) memory."""

    def __init__(
        self, buckets_us: tuple[float, ...] = DEFAULT_EXEMPLAR_BUCKETS_US
    ) -> None:
        if not buckets_us or buckets_us[-1] != float("inf"):
            raise ReproError("exemplar buckets must end with +inf")
        if list(buckets_us) != sorted(buckets_us):
            raise ReproError("exemplar buckets must be sorted ascending")
        self.buckets_us = tuple(float(b) for b in buckets_us)
        self._lock = threading.Lock()
        self._cells: dict[tuple[str, float], tuple[float, str, int]] = {}

    def observe(self, tenant: str, value_us: float, trace_id: str) -> None:
        """File one served latency under its bucket's exemplar cell."""
        le = next(b for b in self.buckets_us if value_us <= b)
        key = (tenant, le)
        with self._lock:
            _, _, count = self._cells.get(key, (0.0, "", 0))
            self._cells[key] = (float(value_us), trace_id, count + 1)

    def items(self) -> list[Exemplar]:
        """Every populated cell, sorted by tenant then bucket."""
        with self._lock:
            cells = sorted(self._cells.items())
        return [
            Exemplar(
                tenant=tenant,
                le_us=le,
                value_us=value,
                trace_id=trace_id,
                count=count,
            )
            for (tenant, le), (value, trace_id, count) in cells
        ]

    def clear(self) -> None:
        """Drop every exemplar cell."""
        with self._lock:
            self._cells.clear()

    def to_dict(self) -> list[dict[str, Any]]:
        """JSON-ready list of populated exemplar cells."""
        return [ex.to_dict() for ex in self.items()]

    def render(self) -> str:
        """ASCII table of exemplar cells, one per line."""
        rows = self.items()
        if not rows:
            return "(no exemplars recorded)"
        lines = ["Latency exemplars (tenant, bucket -> last trace)"]
        for ex in rows:
            le = "+inf" if ex.le_us == float("inf") else f"{ex.le_us:.0f}"
            lines.append(
                f"  {ex.tenant:<12} le {le:>8} us  x{ex.count:<6d} "
                f"last {ex.value_us:>10.0f} us  trace {ex.trace_id}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Record rendering (dict form, shared by live and JSON-loaded records)
# ----------------------------------------------------------------------
def render_record(record: dict[str, Any]) -> str:
    """ASCII timeline of one request record in its ``to_dict`` form.

    Works identically for live :class:`~repro.obs.requests.RequestContext`
    dumps and records loaded back from a ``BENCH_serving.json`` /
    flight-dump file.
    """
    head = (
        f"trace {record.get('trace_id', '?')}  "
        f"tenant={record.get('tenant', '?')}  "
        f"status={record.get('status', '?')}  "
        f"docs={record.get('n_docs', '?')}"
    )
    batch_id = record.get("batch_id")
    if batch_id is not None:
        head += f"  batch={batch_id}"
    wall = record.get("wall_us")
    if wall is not None:
        head += f"  wall={wall:.0f}us"
    lines = [head]
    attrs = record.get("attrs") or {}
    if attrs:
        lines.append(
            "  attrs: " + " ".join(f"{k}={v}" for k, v in attrs.items())
        )
    stages = record.get("stages") or []
    for stage in stages:
        extra = " ".join(f"{k}={v}" for k, v in (stage.get("attrs") or {}).items())
        suffix = f"  [{extra}]" if extra else ""
        lines.append(
            f"  +{stage.get('start_us', 0.0):>10.0f} us  "
            f"{stage.get('name', '?'):<12} "
            f"{stage.get('duration_us', 0.0):>10.1f} us{suffix}"
        )
    return "\n".join(lines)
