"""Model-lifecycle metric series and the per-version serving report.

The versioned serving layer (:mod:`repro.runtime.lifecycle`) folds every
request, shadow comparison and swap decision into the default
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``lifecycle.requests`` (counter, label ``version``) — logical
  requests served by each model version (coalesced batches count each
  member request);
* ``lifecycle.documents`` (counter, label ``version``) — documents
  scored by each version;
* ``lifecycle.shadow_requests`` (counter, label ``version``) — live
  requests mirrored to a candidate during a shadow-scoring phase;
* ``lifecycle.shadow_drift_pct`` (gauge + histogram, label ``version``)
  — per-comparison mean absolute score drift of the candidate vs the
  incumbent, as a percentage of the incumbent's score scale;
* ``lifecycle.shadow_agreement`` (gauge, label ``version``) — NDCG@k
  ranking agreement of the candidate against the incumbent's ordering;
* ``lifecycle.shadow_errors`` / ``lifecycle.shadow_dropped`` (counters,
  label ``version``) — candidate scoring failures and mirrored requests
  dropped because the off-hot-path shadow queue was full;
* ``lifecycle.swaps`` (counter, label ``kind``) — version activations:
  ``promoted`` (shadow gate passed), ``forced`` (explicit
  ``swap(force=True)``) or ``rolled-back`` (manual rollback to the
  previous version);
* ``lifecycle.rollbacks`` (counter) — candidates rejected by the
  promotion gate (automatic rollback) plus manual rollbacks;
* ``lifecycle.replay_rows`` / ``lifecycle.replay_seen`` (gauges) —
  distinct rows held by the replay buffer and total rows it has
  observed.

:func:`lifecycle_report` reads the series back into one row per model
version — the lifecycle counterpart of
:func:`repro.obs.parallel.parallel_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_registry


def record_served_version(
    version: str,
    n_requests: int = 1,
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Count ``n_requests`` logical requests served by ``version``."""
    registry = registry or get_registry()
    registry.counter("lifecycle.requests", version=version).inc(n_requests)


def record_version_documents(
    version: str,
    n_docs: int,
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Count ``n_docs`` documents scored by ``version``."""
    registry = registry or get_registry()
    registry.counter("lifecycle.documents", version=version).inc(n_docs)


def record_shadow_comparison(
    version: str,
    *,
    drift_pct: float,
    agreement: float,
    registry: MetricsRegistry | None = None,
) -> None:
    """Fold one incumbent-vs-candidate shadow comparison into the series.

    NaN ``agreement`` (a zero-document mirror) leaves the gauge
    untouched rather than poisoning it.
    """
    registry = registry or get_registry()
    registry.counter("lifecycle.shadow_requests", version=version).inc()
    if math.isfinite(drift_pct):
        registry.gauge(
            "lifecycle.shadow_drift_pct", version=version
        ).set(drift_pct)
        registry.histogram(
            "lifecycle.shadow_drift_pct_hist", version=version
        ).add(drift_pct)
    if math.isfinite(agreement):
        registry.gauge(
            "lifecycle.shadow_agreement", version=version
        ).set(agreement)


def record_shadow_error(
    version: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one candidate scoring failure during shadowing."""
    registry = registry or get_registry()
    registry.counter("lifecycle.shadow_errors", version=version).inc()


def record_shadow_dropped(
    version: str, *, registry: MetricsRegistry | None = None
) -> None:
    """Count one mirrored request dropped by the bounded shadow queue."""
    registry = registry or get_registry()
    registry.counter("lifecycle.shadow_dropped", version=version).inc()


def record_swap(
    from_version: str | None,
    to_version: str,
    *,
    kind: str,
    registry: MetricsRegistry | None = None,
) -> None:
    """Count one version activation of the given ``kind``."""
    registry = registry or get_registry()
    registry.counter("lifecycle.swaps", kind=kind).inc()


def record_rollback(
    candidate: str,
    kept: str,
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Count one candidate blocked by the gate (or manual rollback)."""
    registry = registry or get_registry()
    registry.counter("lifecycle.rollbacks").inc()


def record_replay(
    *,
    rows: int,
    total_seen: int,
    registry: MetricsRegistry | None = None,
) -> None:
    """Publish the replay buffer's occupancy gauges."""
    registry = registry or get_registry()
    registry.gauge("lifecycle.replay_rows").set(rows)
    registry.gauge("lifecycle.replay_seen").set(total_seen)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LifecycleRow:
    """One model version's serving and shadow position."""

    version: str
    requests: int
    documents: int
    shadow_requests: int
    shadow_errors: int
    shadow_drift_pct: float
    shadow_agreement: float

    def describe(self) -> str:
        extras = ""
        if self.shadow_requests:
            extras = (
                f", shadowed {self.shadow_requests}x "
                f"(drift {self.shadow_drift_pct:.2f}%, "
                f"agreement {self.shadow_agreement:.3f})"
            )
        return (
            f"{self.version}: {self.requests} requests, "
            f"{self.documents} documents{extras}"
        )


@dataclass(frozen=True)
class LifecycleReport:
    """Per-version serving rows plus swap/rollback totals."""

    rows: tuple[LifecycleRow, ...]
    swaps: int = 0
    rollbacks: int = 0
    shadow_dropped: int = 0

    def version(self, name: str) -> LifecycleRow | None:
        for row in self.rows:
            if row.version == name:
                return row
        return None

    def render(self) -> str:
        if not self.rows:
            return "(no versioned serving recorded)"
        header = (
            f"{'version':<16} {'requests':>9} {'documents':>10} "
            f"{'shadowed':>9} {'drift%':>8} {'agree':>7}"
        )
        lines = ["Model lifecycle", header, "-" * len(header)]
        for row in self.rows:
            drift = (
                f"{row.shadow_drift_pct:>8.2f}"
                if math.isfinite(row.shadow_drift_pct)
                else f"{'-':>8}"
            )
            agree = (
                f"{row.shadow_agreement:>7.3f}"
                if math.isfinite(row.shadow_agreement)
                else f"{'-':>7}"
            )
            lines.append(
                f"{row.version:<16} {row.requests:>9d} {row.documents:>10d} "
                f"{row.shadow_requests:>9d} {drift} {agree}"
            )
        lines.append(
            f"swaps: {self.swaps}, rollbacks: {self.rollbacks}, "
            f"shadow dropped: {self.shadow_dropped}"
        )
        return "\n".join(lines)


def lifecycle_report(
    registry: MetricsRegistry | None = None,
) -> LifecycleReport:
    """Assemble the per-version serving table from the series."""
    registry = registry or get_registry()
    slots: dict[str, dict[str, float]] = {}
    wanted = {
        "lifecycle.requests",
        "lifecycle.documents",
        "lifecycle.shadow_requests",
        "lifecycle.shadow_errors",
        "lifecycle.shadow_drift_pct",
        "lifecycle.shadow_agreement",
    }
    swaps = 0
    rollbacks = 0
    dropped = 0
    for (name, label_pairs), metric in registry.items():
        if name == "lifecycle.swaps":
            swaps += int(metric.value)
            continue
        if name == "lifecycle.rollbacks":
            rollbacks = int(metric.value)
            continue
        if name == "lifecycle.shadow_dropped":
            dropped += int(metric.value)
            continue
        if name not in wanted:
            continue
        version = dict(label_pairs).get("version")
        if version is None:
            continue
        slots.setdefault(version, {})[name] = metric.value
    rows = tuple(
        LifecycleRow(
            version=version,
            requests=int(slot.get("lifecycle.requests", 0)),
            documents=int(slot.get("lifecycle.documents", 0)),
            shadow_requests=int(slot.get("lifecycle.shadow_requests", 0)),
            shadow_errors=int(slot.get("lifecycle.shadow_errors", 0)),
            shadow_drift_pct=slot.get(
                "lifecycle.shadow_drift_pct", float("nan")
            ),
            shadow_agreement=slot.get(
                "lifecycle.shadow_agreement", float("nan")
            ),
        )
        for version, slot in sorted(slots.items())
    )
    return LifecycleReport(
        rows=rows,
        swaps=swaps,
        rollbacks=rollbacks,
        shadow_dropped=dropped,
    )
