"""Observability: tracing, metrics and predicted-vs-measured drift.

One light-weight layer used across the training and serving stack:

* :mod:`repro.obs.tracer` — nested, timed spans with a process-wide
  default tracer that is a true no-op while disabled (the default);
* :mod:`repro.obs.metrics` — counters, gauges and bounded streaming
  histograms in a process-wide registry (always on; recording is a few
  dict operations);
* :mod:`repro.obs.export` — JSON and Prometheus-text renderings of the
  span forest and the metrics snapshot;
* :mod:`repro.obs.drift` — per-backend predicted-vs-measured µs/doc
  series fed by the batch engine, the paper's design-time cost
  predictions audited at deployment time;
* :mod:`repro.obs.resilience` — retry/failure/breaker/fallback series
  fed by the resilience layer (:mod:`repro.runtime.resilience`), read
  back by :func:`resilience_report`;
* :mod:`repro.obs.parallel` — shard-balance / pool-utilization /
  cache-hit series fed by the sharded scorer
  (:mod:`repro.runtime.parallel`), read back by
  :func:`parallel_report`;
* :mod:`repro.obs.lifecycle` — per-model-version serving, shadow
  comparison and swap/rollback series fed by the versioned lifecycle
  layer (:mod:`repro.runtime.lifecycle`), read back by
  :func:`lifecycle_report`;
* :mod:`repro.obs.cascade` — per-stage survivor-funnel / early-exit /
  predicted-spend series fed by the cascade adapter
  (:class:`~repro.runtime.adapters.CascadeScorer`), read back by
  :func:`cascade_report`;
* :mod:`repro.obs.serving` — per-tenant admission/shed/SLO-miss/latency
  series and coalesced-batch shapes fed by the asyncio front-end
  (:mod:`repro.serving.frontend`), read back by
  :func:`serving_report`;
* :mod:`repro.obs.requests` — per-request trace ids and stage timelines
  (:class:`RequestContext`) propagated via ``contextvars`` across the
  async front-end, batcher and engine-executor thread, owned by the
  :class:`RequestRecorder` (disabled by default, true no-op);
* :mod:`repro.obs.flight` — bounded flight recorder with tail-based
  retention (slowest-N + all shed + all errored) and latency-bucket
  exemplars linking histograms back to trace ids;
* :mod:`repro.obs.slo` — per-tenant multi-window SLO burn-rate
  monitoring (fast/slow alert windows) fed by
  :func:`record_response`, read back by :func:`slo_burn_report`.

Typical use::

    from repro import obs

    obs.enable_tracing()
    with obs.span("experiment", dataset="msn30k"):
        service.score(features)
    print(obs.render_trace_tree())
    print(obs.drift_report().render())

See ``docs/observability.md`` for naming conventions and the
instrumentation guide.
"""

from repro.obs.cascade import (
    CascadeReport,
    CascadeStageRow,
    cascade_report,
    record_cascade_query,
)
from repro.obs.compile import (
    CompileReport,
    CompileRow,
    compile_report,
    record_compile,
)
from repro.obs.drift import DriftReport, DriftRow, drift_report, record_request
from repro.obs.lifecycle import (
    LifecycleReport,
    LifecycleRow,
    lifecycle_report,
    record_replay,
    record_rollback,
    record_served_version,
    record_shadow_comparison,
    record_shadow_dropped,
    record_shadow_error,
    record_swap,
    record_version_documents,
)
from repro.obs.parallel import (
    ParallelReport,
    ParallelRow,
    parallel_report,
    record_cache_eviction,
    record_cache_invalidation,
    record_parallel_request,
)
from repro.obs.resilience import (
    BackendRow,
    ChainRow,
    ResilienceReport,
    record_breaker_state,
    record_fallback,
    record_failure,
    record_retry,
    record_served,
    resilience_report,
)
from repro.obs.serving import (
    ServingReport,
    TenantRow,
    record_admitted,
    record_batch,
    record_response,
    record_shed,
    serving_report,
)
from repro.obs.export import (
    prometheus_name,
    render_json,
    render_prometheus,
    render_trace_tree,
    snapshot_dict,
)
from repro.obs.flight import (
    Exemplar,
    ExemplarStore,
    FlightRecorder,
    render_record,
)
from repro.obs.requests import (
    RequestContext,
    RequestRecorder,
    StageEvent,
    activate,
    activate_batch,
    active_requests,
    annotate_requests,
    current_request,
    enable_request_tracing,
    get_request_recorder,
    request_tracing_enabled,
    set_request_recorder,
)
from repro.obs.slo import (
    BurnRow,
    SloBurnReport,
    SloMonitor,
    SloPolicy,
    get_slo_monitor,
    record_slo_event,
    set_slo_monitor,
    slo_burn_report,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricError,
    MetricsRegistry,
    StreamingHistogram,
    counter,
    gauge,
    get_registry,
    histogram,
    set_registry,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "BackendRow",
    "BurnRow",
    "CascadeReport",
    "CascadeStageRow",
    "ChainRow",
    "CompileReport",
    "CompileRow",
    "Counter",
    "DriftReport",
    "DriftRow",
    "Exemplar",
    "ExemplarStore",
    "FlightRecorder",
    "Gauge",
    "LifecycleReport",
    "LifecycleRow",
    "MetricError",
    "MetricsRegistry",
    "ParallelReport",
    "ParallelRow",
    "RequestContext",
    "RequestRecorder",
    "ResilienceReport",
    "ServingReport",
    "SloBurnReport",
    "SloMonitor",
    "SloPolicy",
    "Span",
    "StageEvent",
    "StreamingHistogram",
    "TenantRow",
    "Tracer",
    "activate",
    "activate_batch",
    "active_requests",
    "annotate_requests",
    "cascade_report",
    "compile_report",
    "counter",
    "current_request",
    "drift_report",
    "enable_request_tracing",
    "enable_tracing",
    "gauge",
    "get_registry",
    "get_request_recorder",
    "get_slo_monitor",
    "get_tracer",
    "histogram",
    "lifecycle_report",
    "parallel_report",
    "prometheus_name",
    "record_admitted",
    "record_batch",
    "record_breaker_state",
    "record_cache_eviction",
    "record_cache_invalidation",
    "record_cascade_query",
    "record_compile",
    "record_fallback",
    "record_failure",
    "record_parallel_request",
    "record_replay",
    "record_request",
    "record_response",
    "record_retry",
    "record_rollback",
    "record_served",
    "record_served_version",
    "record_shadow_comparison",
    "record_shadow_dropped",
    "record_shadow_error",
    "record_shed",
    "record_slo_event",
    "record_swap",
    "record_version_documents",
    "render_json",
    "render_prometheus",
    "render_record",
    "render_trace_tree",
    "request_tracing_enabled",
    "resilience_report",
    "serving_report",
    "set_registry",
    "set_request_recorder",
    "set_slo_monitor",
    "set_tracer",
    "slo_burn_report",
    "snapshot_dict",
    "span",
    "trace",
    "tracing_enabled",
]
