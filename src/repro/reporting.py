"""Experiment report generation.

Renders a Markdown report of one :class:`EfficientRankingPipeline` run —
the named forests and students, their quality/time numbers, the
significance matrix and the Pareto summary — so a full experiment can be
archived or diffed between runs.  The benchmark harness produces the
per-table artefacts; this module produces the narrative document.
"""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.core.pipeline import EfficientRankingPipeline, EvaluatedModel
from repro.core.zoo import ForestSpec, NetworkSpec
from repro.design.frontier import build_frontier
from repro.metrics import fisher_randomization_test
from repro.utils.tables import format_table


def evaluate_zoo(
    pipeline: EfficientRankingPipeline,
    *,
    forests: Sequence[ForestSpec] | None = None,
    networks: Sequence[NetworkSpec] | None = None,
    pruned: bool = True,
) -> list[EvaluatedModel]:
    """Evaluate a selection of the zoo (defaults: deployment models)."""
    zoo = pipeline.zoo
    forests = (
        list(forests) if forests is not None else list(zoo.deployment_forests())
    )
    networks = (
        list(networks)
        if networks is not None
        else list(zoo.high_quality) + list(zoo.low_latency)
    )
    evaluated = [pipeline.evaluate_forest(spec) for spec in forests]
    seen: set[tuple[int, ...]] = set()
    for spec in networks:
        if spec.hidden in seen:
            continue
        seen.add(spec.hidden)
        evaluated.append(pipeline.evaluate_network(spec, pruned=pruned))
    return evaluated


def significance_matrix(
    models: Sequence[EvaluatedModel],
    *,
    alpha: float = 0.05,
    seed: int = 0,
) -> list[tuple]:
    """Pairwise Fisher-randomization outcomes on per-query NDCG@10.

    Each row: (model A, model B, mean difference, p, significant?).
    """
    rows = []
    for i, a in enumerate(models):
        for b in models[i + 1 :]:
            result = fisher_randomization_test(
                a.per_query_ndcg10, b.per_query_ndcg10, seed=seed
            )
            rows.append(
                (
                    a.name,
                    b.name,
                    round(result.observed_difference, 4),
                    round(result.p_value, 4),
                    "yes" if result.significant(alpha) else "no",
                )
            )
    return rows


def render_report(
    pipeline: EfficientRankingPipeline,
    *,
    title: str | None = None,
    include_significance: bool = True,
) -> str:
    """Produce the Markdown report for ``pipeline``'s dataset."""
    models = evaluate_zoo(pipeline)
    out = io.StringIO()
    name = title or f"Experiment report — {pipeline.zoo.dataset}"
    out.write(f"# {name}\n\n")
    out.write(f"- train: {pipeline.train.summary()}\n")
    out.write(f"- validation: {pipeline.vali.summary()}\n")
    out.write(f"- test: {pipeline.test.summary()}\n")
    out.write(f"- teacher: {pipeline.teacher().describe()} (validation-selected)\n\n")

    out.write("## Models\n\n```\n")
    out.write(
        format_table(
            ["Model", "NDCG@10", "NDCG", "MAP", "us/doc"],
            [m.as_row() for m in sorted(models, key=lambda m: -m.ndcg10)],
        )
    )
    out.write("\n```\n\n")

    plot = build_frontier(m.as_point() for m in models)
    out.write("## Pareto summary\n\n")
    out.write(
        f"- forest frontier: {[p.name for p in plot.forest_frontier]}\n"
    )
    out.write(
        f"- neural frontier: {[p.name for p in plot.neural_frontier]}\n"
    )
    out.write(
        f"- neural-dominates fraction: "
        f"{plot.neural_dominates_fraction():.2f}\n"
    )
    out.write(
        f"- best neural speed-up at matched quality: "
        f"{plot.best_neural_speedup_at_quality():.1f}x\n\n"
    )

    if include_significance:
        out.write("## Significance (Fisher randomization, NDCG@10)\n\n```\n")
        out.write(
            format_table(
                ["A", "B", "mean diff", "p", "significant"],
                significance_matrix(models),
            )
        )
        out.write("\n```\n")
    return out.getvalue()


def write_report(pipeline: EfficientRankingPipeline, path, **kwargs) -> str:
    """Render and write the report; returns the Markdown text."""
    text = render_report(pipeline, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
