"""Shared utilities: RNG handling, validation, tables and Pareto helpers."""

from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_positive,
)
from repro.utils.tables import format_table
from repro.utils.pareto import pareto_frontier

__all__ = [
    "ensure_rng",
    "check_array_1d",
    "check_array_2d",
    "check_fraction",
    "check_positive",
    "format_table",
    "pareto_frontier",
]
