"""Seeded random-number-generator helpers.

All stochastic components of the library accept either an integer seed, a
ready :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalize it through :func:`ensure_rng`.  Keeping a single entry point makes
every experiment in the benchmark harness reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic generator,
        or an existing generator (returned unchanged so that callers can
        thread one generator through a pipeline).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are seeded from the parent stream, so a single top-level seed
    still controls the full experiment while sub-components do not perturb
    each other's streams.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
