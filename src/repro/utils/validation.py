"""Lightweight argument validation helpers used across the library."""

from __future__ import annotations

import numpy as np


def check_array_2d(x, name: str, dtype=np.float64) -> np.ndarray:
    """Coerce ``x`` to a 2-D float array, raising a clear error otherwise."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def check_array_1d(x, name: str, dtype=np.float64) -> np.ndarray:
    """Coerce ``x`` to a 1-D array, raising a clear error otherwise."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_positive(value, name: str, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    v = float(value)
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return v


def check_fraction(value, name: str, *, inclusive: bool = True) -> float:
    """Validate that a scalar lies in [0, 1] (or (0, 1) when not inclusive)."""
    v = float(value)
    if inclusive:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < v < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return v


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Validate that two sequences have matching leading dimension."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length, got {len(a)} != {len(b)}"
        )
