"""Pareto-frontier utilities for efficiency/effectiveness trade-off plots.

The paper compares model families on a plane with effectiveness (NDCG@10,
higher is better) on the x-axis and scoring time (µs/doc, lower is better)
on the y-axis, and draws each family's Pareto frontier (Figs. 12-13).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def pareto_frontier(
    quality: Sequence[float],
    cost: Sequence[float],
) -> np.ndarray:
    """Return the indices of Pareto-optimal points, sorted by quality.

    A point is Pareto-optimal when no other point has both strictly higher
    ``quality`` and strictly lower-or-equal ``cost`` (maximize quality,
    minimize cost).  Ties in quality keep only the cheapest point.
    """
    q = np.asarray(quality, dtype=np.float64)
    c = np.asarray(cost, dtype=np.float64)
    if q.shape != c.shape or q.ndim != 1:
        raise ValueError("quality and cost must be 1-D arrays of equal length")
    if q.size == 0:
        return np.empty(0, dtype=np.intp)

    # Sort by quality descending, cost ascending; sweep keeping points whose
    # cost improves on the best cost seen so far.
    order = np.lexsort((c, -q))
    best_cost = np.inf
    keep: list[int] = []
    last_quality = None
    for idx in order:
        if c[idx] < best_cost:
            if last_quality is not None and q[idx] == last_quality:
                # Same quality as an already-kept, cheaper point.
                pass
            best_cost = c[idx]
            keep.append(int(idx))
            last_quality = q[idx]
    keep_arr = np.asarray(keep, dtype=np.intp)
    return keep_arr[np.argsort(q[keep_arr])]


def dominates(
    quality_a: float, cost_a: float, quality_b: float, cost_b: float
) -> bool:
    """True when point *a* dominates *b* (>= quality, <= cost, one strict)."""
    ge = quality_a >= quality_b and cost_a <= cost_b
    strict = quality_a > quality_b or cost_a < cost_b
    return ge and strict
