"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables report; this module
renders them in aligned, pipe-separated form so the output can be compared
side by side with the publication.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _fmt_cell(value, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec is not None and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    floatfmt: str = ".4f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Numeric cells are formatted with ``floatfmt`` (integers keep their own
    representation); ``None`` renders as ``-``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        out_row = []
        for cell in row:
            if isinstance(cell, bool):
                out_row.append(str(cell))
            elif isinstance(cell, int):
                out_row.append(str(cell))
            elif isinstance(cell, float):
                out_row.append(_fmt_cell(cell, floatfmt))
            else:
                out_row.append(_fmt_cell(cell, None))
        rendered.append(out_row)

    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(sep)
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
