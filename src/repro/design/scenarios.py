"""The paper's two evaluation scenarios (Section 6.1).

* **High-quality retrieval** — only models whose NDCG@10 reaches 99% of
  the best tree-based competitor qualify; among them, faster is better.
* **Low-latency retrieval** — only models scoring a document in at most
  0.5 µs qualify; among them, more accurate is better.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.design.frontier import ModelPoint


@dataclass(frozen=True)
class HighQualityScenario:
    """Quality-floor filter: NDCG@10 >= fraction * reference."""

    reference_ndcg10: float
    fraction: float = 0.99

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.reference_ndcg10 <= 0:
            raise ValueError("reference_ndcg10 must be positive")

    @property
    def quality_floor(self) -> float:
        return self.fraction * self.reference_ndcg10

    def admits(self, point: ModelPoint) -> bool:
        return point.ndcg10 >= self.quality_floor

    def select(self, points: Iterable[ModelPoint]) -> list[ModelPoint]:
        """Qualifying models, fastest first."""
        return sorted(
            (p for p in points if self.admits(p)), key=lambda p: p.time_us
        )

    def winner(self, points: Sequence[ModelPoint]) -> ModelPoint | None:
        """The fastest model respecting the quality constraint."""
        picked = self.select(points)
        return picked[0] if picked else None


@dataclass(frozen=True)
class LowLatencyScenario:
    """Latency-ceiling filter: time <= max µs/doc (paper: 0.5)."""

    max_time_us: float = 0.5

    def __post_init__(self) -> None:
        if self.max_time_us <= 0:
            raise ValueError(f"max_time_us must be positive, got {self.max_time_us}")

    def admits(self, point: ModelPoint) -> bool:
        return point.time_us <= self.max_time_us

    def select(self, points: Iterable[ModelPoint]) -> list[ModelPoint]:
        """Qualifying models, most accurate first."""
        return sorted(
            (p for p in points if self.admits(p)), key=lambda p: -p.ndcg10
        )

    def winner(self, points: Sequence[ModelPoint]) -> ModelPoint | None:
        """The most effective model respecting the time requirement."""
        picked = self.select(points)
        return picked[0] if picked else None
