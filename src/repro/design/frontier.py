"""Model points and Pareto frontiers on the efficiency/effectiveness plane.

Figures 12-13 of the paper plot each model family (QuickScorer forests in
green, neural models in blue) as points with NDCG@10 on the x-axis and
µs/doc on the y-axis, and draw each family's Pareto frontier; a family
dominates where its frontier lies *below* the other's.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.pareto import dominates, pareto_frontier


@dataclass(frozen=True)
class ModelPoint:
    """One model on the trade-off plane."""

    name: str
    family: str  # "forest" or "neural"
    ndcg10: float
    time_us: float

    def astuple(self) -> tuple[float, float]:
        return (self.ndcg10, self.time_us)


@dataclass(frozen=True)
class FrontierPlot:
    """All points of two families plus their Pareto frontiers."""

    points: tuple[ModelPoint, ...]
    forest_frontier: tuple[ModelPoint, ...]
    neural_frontier: tuple[ModelPoint, ...]

    def neural_dominates_fraction(self) -> float:
        """Share of forest-frontier points dominated by some neural point.

        1.0 reproduces the paper's MSN30K outcome ("the neural Pareto
        frontier always lies below the tree-based one"); intermediate
        values correspond to the crossing frontiers seen on Istella-S.
        """
        if not self.forest_frontier:
            return 0.0
        dominated = 0
        for fp in self.forest_frontier:
            if any(
                dominates(np_.ndcg10, np_.time_us, fp.ndcg10, fp.time_us)
                for np_ in self.neural_frontier
            ):
                dominated += 1
        return dominated / len(self.forest_frontier)

    def best_neural_speedup_at_quality(self) -> float:
        """Largest forest/neural time ratio at matched-or-better quality.

        The paper reports e.g. "4.4x faster than the 878-trees model
        [with] higher retrieval quality" on MSN30K.
        """
        best = 0.0
        for fp in self.forest_frontier:
            for np_ in self.neural_frontier:
                if np_.ndcg10 >= fp.ndcg10 and np_.time_us > 0:
                    best = max(best, fp.time_us / np_.time_us)
        return best


def family_frontier(points: Sequence[ModelPoint]) -> tuple[ModelPoint, ...]:
    """Pareto-optimal subset of one family, sorted by quality."""
    if not points:
        return ()
    idx = pareto_frontier(
        np.asarray([p.ndcg10 for p in points]),
        np.asarray([p.time_us for p in points]),
    )
    return tuple(points[i] for i in idx)


def build_frontier(points: Iterable[ModelPoint]) -> FrontierPlot:
    """Split points by family and compute both frontiers."""
    pts = tuple(points)
    forests = [p for p in pts if p.family == "forest"]
    neurals = [p for p in pts if p.family == "neural"]
    return FrontierPlot(
        points=pts,
        forest_frontier=family_frontier(forests),
        neural_frontier=family_frontier(neurals),
    )
