"""Early-exit scoring cascades (the paper's second future-work item).

Section 7 lists *early exiting* as a planned extension: cheap models
score every candidate and only promising documents reach the expensive
scorer.  This module implements the standard top-k cascade over any mix
of the library's scorers (pruned students, dense students, QuickScorer
forests) together with its predicted cost:

    cost/doc = c_1 + keep_1 * c_2 + keep_1 * keep_2 * c_3 + ...

where ``keep_i`` is the fraction of a query's documents surviving stage
``i``.  Within a query, documents cut at stage ``i`` are ranked below
all survivors, ordered by their stage-``i`` scores — so the final
ranking is a refinement, never a shuffle.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.datasets.base import LtrDataset

#: A scoring function over a feature matrix.
ScoreFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CascadeStage:
    """One stage: a scorer, its per-document cost, and the survivor cut.

    ``keep_fraction`` is the share of each query's documents promoted to
    the next stage (ignored on the last stage).
    """

    name: str
    score_fn: ScoreFn
    cost_us_per_doc: float
    keep_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cost_us_per_doc < 0:
            raise ValueError("cost_us_per_doc must be non-negative")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )

    @classmethod
    def from_model(
        cls,
        model,
        *,
        keep_fraction: float = 1.0,
        name: str | None = None,
        cost_us_per_doc: float | None = None,
        context=None,
        backend: str | None = None,
        **opts,
    ) -> "CascadeStage":
        """Build a stage from any model the scoring runtime knows.

        The model is adapted through :func:`repro.runtime.make_scorer`,
        so its execution path and calibrated price come from one place;
        pass ``cost_us_per_doc`` to override the price (e.g. a measured
        figure).  Extra keywords reach the backend factory.
        """
        # Imported lazily: runtime's adapters import this module.
        from repro.runtime import make_scorer

        scorer = make_scorer(model, backend=backend, context=context, **opts)
        return cls(
            name=name or scorer.describe(),
            score_fn=scorer.score,
            cost_us_per_doc=(
                scorer.predicted_us_per_doc
                if cost_us_per_doc is None
                else cost_us_per_doc
            ),
            keep_fraction=keep_fraction,
        )


class EarlyExitCascade:
    """A multi-stage ranking cascade with predictable cost."""

    def __init__(self, stages: Sequence[CascadeStage]) -> None:
        if not stages:
            raise ValueError("a cascade needs at least one stage")
        self.stages = list(stages)

    # ------------------------------------------------------------------
    def expected_cost_us_per_doc(self) -> float:
        """Predicted amortized per-document cost of the full cascade."""
        cost = 0.0
        alive = 1.0
        for i, stage in enumerate(self.stages):
            cost += alive * stage.cost_us_per_doc
            if i < len(self.stages) - 1:
                alive *= stage.keep_fraction
        return cost

    def score_query(self, features: np.ndarray) -> np.ndarray:
        """Cascade scores for one query's documents.

        Returns values whose descending order is the cascade's ranking:
        stage-``i`` dropouts are ranked below every later-stage survivor
        (by offsetting each stage's scores into its own band).
        """
        n = len(features)
        alive = np.arange(n)
        out = np.zeros(n, dtype=np.float64)
        for level, stage in enumerate(self.stages):
            scores = np.asarray(stage.score_fn(features[alive]), dtype=np.float64)
            if scores.shape != (len(alive),):
                raise ValueError(
                    f"stage {stage.name!r} returned shape {scores.shape}, "
                    f"expected ({len(alive)},)"
                )
            # Normalize the stage's scores into (0, 1) and add the band
            # offset: survivors of later stages always outrank dropouts.
            lo, hi = scores.min(), scores.max()
            span = (hi - lo) or 1.0
            out[alive] = level + (scores - lo) / span * 0.999
            is_last = level == len(self.stages) - 1
            if is_last:
                break
            n_keep = max(1, int(round(stage.keep_fraction * len(alive))))
            order = np.argsort(-scores, kind="stable")
            alive = alive[order[:n_keep]]
        return out

    def score_dataset(self, dataset: LtrDataset) -> np.ndarray:
        """Cascade scores for every query of a dataset."""
        out = np.empty(dataset.n_docs, dtype=np.float64)
        for qi in range(dataset.n_queries):
            sl = dataset.query_slice(qi)
            out[sl] = self.score_query(dataset.features[sl])
        return out

    def describe(self) -> str:
        parts = []
        for i, stage in enumerate(self.stages):
            keep = (
                f" -> keep {stage.keep_fraction:.0%}"
                if i < len(self.stages) - 1
                else ""
            )
            parts.append(f"{stage.name} ({stage.cost_us_per_doc:.2f} us){keep}")
        return " | ".join(parts)
