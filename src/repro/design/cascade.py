"""Early-exit scoring cascades (the paper's second future-work item).

Section 7 lists *early exiting* as a planned extension: cheap models
score every candidate and only promising documents reach the expensive
scorer.  This module implements the standard top-k cascade over any mix
of the library's scorers (pruned students, dense students, QuickScorer
forests) together with its predicted cost:

    cost/doc = c_1 + keep_1 * c_2 + keep_1 * keep_2 * c_3 + ...

where ``keep_i`` is the fraction of a query's documents surviving stage
``i``.  Within a query, documents cut at stage ``i`` are ranked below
all survivors, ordered by their stage-``i`` scores — so the final
ranking is a refinement, never a shuffle.

Two execution policies, both deterministic:

* **Keep-fraction cuts** — each non-final stage promotes
  ``ceil(keep_fraction * n_alive)`` documents (an explicit ceiling, so
  cut sizes are monotone in query length and never subject to banker's
  rounding; promoting *at least* the configured share errs on the side
  of quality).
* **Per-query budgets** — with ``budget_us_per_query`` set, the cascade
  stops promoting once the *predicted* spend of running the survivors
  through the next stage would exceed the budget.  The first stage
  always runs (otherwise there is no ranking at all), so the predicted
  per-query spend is bounded by ``max(budget, n_docs * cost_1)``.

The declarative, JSON-round-trippable face of this module — stages named
by backend and built from a model-role mapping — is
:class:`repro.runtime.ranking.RankingPipeline`; see ``docs/cascade.md``.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import CascadeError

#: A scoring function over a feature matrix.
ScoreFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CascadeStage:
    """One stage: a scorer, its per-document cost, and the survivor cut.

    ``keep_fraction`` is the share of each query's documents promoted to
    the next stage (ignored on the last stage).  The cut is an explicit
    ceiling — ``ceil(keep_fraction * n_alive)`` survivors — so the same
    fraction always promotes the same count for a given query length.
    """

    name: str
    score_fn: ScoreFn
    cost_us_per_doc: float
    keep_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cost_us_per_doc < 0:
            raise ValueError("cost_us_per_doc must be non-negative")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )

    def survivor_count(self, n_alive: int) -> int:
        """How many of ``n_alive`` documents this stage promotes.

        The pinned policy: ``ceil(keep_fraction * n_alive)``, clamped to
        ``[1, n_alive]``.  ``round()`` would make 0.5 of 5 docs promote
        2 (banker's rounding) while 0.5 of 6 promotes 3 — inconsistent
        cut shares across query lengths.
        """
        if n_alive <= 0:
            return 0
        return min(n_alive, max(1, math.ceil(self.keep_fraction * n_alive)))

    @classmethod
    def from_model(
        cls,
        model,
        *,
        keep_fraction: float = 1.0,
        name: str | None = None,
        cost_us_per_doc: float | None = None,
        context=None,
        backend: str | None = None,
        **opts,
    ) -> "CascadeStage":
        """Build a stage from any model the scoring runtime knows.

        The model is adapted through :func:`repro.runtime.make_scorer`,
        so its execution path and calibrated price come from one place;
        pass ``cost_us_per_doc`` to override the price (e.g. a measured
        figure).  Extra keywords reach the backend factory.
        """
        # Imported lazily: runtime's adapters import this module.
        from repro.runtime import make_scorer

        scorer = make_scorer(model, backend=backend, context=context, **opts)
        return cls(
            name=name or scorer.describe(),
            score_fn=scorer.score,
            cost_us_per_doc=(
                scorer.predicted_us_per_doc
                if cost_us_per_doc is None
                else cost_us_per_doc
            ),
            keep_fraction=keep_fraction,
        )


@dataclass(frozen=True)
class CascadeQueryResult:
    """Everything one :meth:`EarlyExitCascade.score_query_detailed` run did.

    Attributes
    ----------
    scores:
        Banded cascade scores (see :meth:`EarlyExitCascade.score_query`).
    survivors:
        One array of original document indices per *executed* stage: the
        documents that stage evaluated.  ``survivors[0]`` is every
        document; ``survivors[i+1]`` is always a subset of
        ``survivors[i]`` — the refinement invariant in data form.
    stage_spans:
        ``(start_s, end_s)`` wall-clock pair per executed stage
        (``time.perf_counter`` axis), for request-timeline attribution.
    predicted_spend_us:
        The calibrated per-query spend: ``sum(len(survivors[i]) *
        stages[i].cost_us_per_doc)`` over executed stages.
    budget_us:
        The per-query budget in force (``None`` = unbudgeted).
    exited_early:
        True when the budget stopped promotion before the configured
        last stage.
    """

    scores: np.ndarray
    survivors: tuple[np.ndarray, ...] = field(repr=False)
    stage_spans: tuple[tuple[float, float], ...] = field(repr=False)
    predicted_spend_us: float
    budget_us: float | None
    exited_early: bool

    @property
    def stages_run(self) -> int:
        """How many stages actually executed."""
        return len(self.survivors)

    @property
    def stage_docs(self) -> tuple[int, ...]:
        """Documents evaluated per executed stage."""
        return tuple(len(s) for s in self.survivors)


class EarlyExitCascade:
    """A multi-stage ranking cascade with predictable cost.

    Parameters
    ----------
    stages:
        The :class:`CascadeStage` sequence, cheapest first.
    budget_us_per_query:
        Optional per-query spending cap: before promoting survivors to
        the next stage, the cascade adds the *predicted* cost of that
        promotion (``n_survivors * next_stage.cost_us_per_doc``) to what
        it has already spent and stops — keeping the current stage's
        ranking — if the total would exceed the budget.  The first stage
        is exempt (a query must be ranked by something).
    """

    def __init__(
        self,
        stages: Sequence[CascadeStage],
        *,
        budget_us_per_query: float | None = None,
    ) -> None:
        if not stages:
            raise ValueError("a cascade needs at least one stage")
        if budget_us_per_query is not None and not (
            math.isfinite(budget_us_per_query) and budget_us_per_query > 0
        ):
            raise ValueError(
                f"budget_us_per_query must be finite and > 0, "
                f"got {budget_us_per_query}"
            )
        self.stages = list(stages)
        self.budget_us_per_query = budget_us_per_query

    # ------------------------------------------------------------------
    def expected_cost_us_per_doc(self) -> float:
        """Predicted amortized per-document cost of the full cascade.

        The closed form ``c_1 + keep_1*c_2 + keep_1*keep_2*c_3 + ...``
        over the *configured* keep fractions; a per-query budget can
        only lower the realized spend below this (it stops promotions,
        never adds them), so this stays the admission-safe upper bound
        the serving layer prices with.
        """
        cost = 0.0
        alive = 1.0
        for i, stage in enumerate(self.stages):
            cost += alive * stage.cost_us_per_doc
            if i < len(self.stages) - 1:
                alive *= stage.keep_fraction
        return cost

    def predicted_query_spend_us(self, n_docs: int) -> float:
        """Closed-form predicted spend for one ``n_docs``-document query.

        Replays the integer ceil-cut and budget-exit policy without
        scoring anything, so it matches what
        :meth:`score_query_detailed` will report as
        ``predicted_spend_us`` for any query of this length.  Bounded by
        ``max(budget, n_docs * cost_1)`` when a budget is set.
        """
        if n_docs <= 0:
            return 0.0
        alive = int(n_docs)
        spend = 0.0
        for level, stage in enumerate(self.stages):
            spend += alive * stage.cost_us_per_doc
            if level == len(self.stages) - 1:
                break
            n_keep = stage.survivor_count(alive)
            if self._budget_stops_promotion(spend, n_keep, level):
                break
            alive = n_keep
        return spend

    def _budget_stops_promotion(
        self, spent_us: float, n_keep: int, level: int
    ) -> bool:
        """Whether promoting ``n_keep`` docs past ``level`` blows the budget."""
        if self.budget_us_per_query is None:
            return False
        next_cost = n_keep * self.stages[level + 1].cost_us_per_doc
        return spent_us + next_cost > self.budget_us_per_query

    # ------------------------------------------------------------------
    def score_query(self, features: np.ndarray) -> np.ndarray:
        """Cascade scores for one query's documents.

        Returns values whose descending order is the cascade's ranking:
        stage-``i`` dropouts are ranked below every later-stage survivor
        (by offsetting each stage's scores into its own band).  A
        zero-document query is a no-op returning an empty float64 array
        — the same contract as
        :meth:`~repro.runtime.batching.BatchEngine.score`.
        """
        return self.score_query_detailed(features).scores

    def score_query_detailed(self, features: np.ndarray) -> CascadeQueryResult:
        """Score one query and report per-stage execution detail.

        Beyond the banded scores this returns the per-stage survivor
        sets, wall-clock spans, the predicted spend and whether the
        per-query budget forced an early exit — the raw material of the
        ``cascade.*`` observability series and request timelines.
        """
        features = np.asarray(features, dtype=np.float64)
        n = len(features)
        if n == 0:
            return CascadeQueryResult(
                scores=np.zeros(0, dtype=np.float64),
                survivors=(),
                stage_spans=(),
                predicted_spend_us=0.0,
                budget_us=self.budget_us_per_query,
                exited_early=False,
            )
        alive = np.arange(n)
        out = np.zeros(n, dtype=np.float64)
        survivors: list[np.ndarray] = []
        spans: list[tuple[float, float]] = []
        spend = 0.0
        exited_early = False
        for level, stage in enumerate(self.stages):
            start_s = time.perf_counter()
            scores = np.asarray(stage.score_fn(features[alive]), dtype=np.float64)
            spans.append((start_s, time.perf_counter()))
            if scores.shape != (len(alive),):
                raise ValueError(
                    f"stage {stage.name!r} returned shape {scores.shape}, "
                    f"expected ({len(alive)},)"
                )
            finite = np.isfinite(scores)
            if not finite.all():
                bad = scores[~finite]
                raise CascadeError(
                    f"stage {stage.name!r} (level {level}) emitted "
                    f"{int(np.isnan(bad).sum())} NaN and "
                    f"{int(np.isinf(bad).sum())} infinite scores over "
                    f"{len(alive)} documents; cascade band offsets require "
                    "finite stage scores ('refinement, never a shuffle')"
                )
            survivors.append(alive)
            spend += len(alive) * stage.cost_us_per_doc
            # Normalize the stage's scores into (0, 1) and add the band
            # offset: survivors of later stages always outrank dropouts.
            lo, hi = scores.min(), scores.max()
            span = (hi - lo) or 1.0
            out[alive] = level + (scores - lo) / span * 0.999
            if level == len(self.stages) - 1:
                break
            n_keep = stage.survivor_count(len(alive))
            if self._budget_stops_promotion(spend, n_keep, level):
                exited_early = True
                break
            order = np.argsort(-scores, kind="stable")
            alive = alive[order[:n_keep]]
        return CascadeQueryResult(
            scores=out,
            survivors=tuple(survivors),
            stage_spans=tuple(spans),
            predicted_spend_us=spend,
            budget_us=self.budget_us_per_query,
            exited_early=exited_early,
        )

    def score_dataset(self, dataset: LtrDataset) -> np.ndarray:
        """Cascade scores for every query of a dataset.

        Empty query slices (``query_slice`` yielding zero rows) are
        no-ops, matching :meth:`score_query`'s zero-document contract.
        """
        out = np.empty(dataset.n_docs, dtype=np.float64)
        for qi in range(dataset.n_queries):
            sl = dataset.query_slice(qi)
            out[sl] = self.score_query(dataset.features[sl])
        return out

    def describe(self) -> str:
        parts = []
        for i, stage in enumerate(self.stages):
            keep = (
                f" -> keep {stage.keep_fraction:.0%}"
                if i < len(self.stages) - 1
                else ""
            )
            parts.append(f"{stage.name} ({stage.cost_us_per_doc:.2f} us){keep}")
        text = " | ".join(parts)
        if self.budget_us_per_query is not None:
            text += f" [budget {self.budget_us_per_query:.0f} us/query]"
        return text
