"""Architecture enumeration under a latency budget.

Candidates are pyramidal feed-forward shapes (each hidden layer no wider
than its predecessor — the pattern of every architecture in the paper)
over a width grid, with 2 to 4 hidden layers: the paper verifies that
5-layer models matching the same time budgets add nothing (Section 5.2).
Each candidate is priced by the :class:`NetworkTimePredictor`, both dense
and with the pruned-first-layer forecast, so callers can design for
either deployment mode without training anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.timing.network_predictor import NetworkTimePredictor

DEFAULT_WIDTHS = (25, 50, 75, 100, 150, 200, 300, 400, 500, 600, 800, 1000)


@dataclass(frozen=True)
class ArchitectureCandidate:
    """A hidden-width tuple with its predicted costs."""

    hidden: tuple[int, ...]
    dense_time_us: float
    pruned_time_us: float
    n_parameters: int

    def describe(self) -> str:
        return "x".join(str(w) for w in self.hidden)


class ArchitectureSearch:
    """Enumerates architectures and filters them by predicted time."""

    def __init__(
        self,
        input_dim: int,
        predictor: NetworkTimePredictor | None = None,
        *,
        widths=DEFAULT_WIDTHS,
        min_layers: int = 2,
        max_layers: int = 4,
    ) -> None:
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        if not 1 <= min_layers <= max_layers:
            raise ValueError(
                f"need 1 <= min_layers <= max_layers, got {min_layers}, {max_layers}"
            )
        self.input_dim = input_dim
        self.predictor = predictor or NetworkTimePredictor()
        self.widths = tuple(sorted(set(int(w) for w in widths)))
        self.min_layers = min_layers
        self.max_layers = max_layers

    # ------------------------------------------------------------------
    def enumerate(self) -> list[ArchitectureCandidate]:
        """All pyramidal candidates with their predicted times."""
        out: list[ArchitectureCandidate] = []
        for depth in range(self.min_layers, self.max_layers + 1):
            for shape in product(self.widths, repeat=depth):
                if any(shape[i] < shape[i + 1] for i in range(depth - 1)):
                    continue  # widths must be non-increasing
                out.append(self.price(shape))
        return out

    def price(self, hidden) -> ArchitectureCandidate:
        """Predicted dense and pruned-forecast times of one shape."""
        report = self.predictor.predict(self.input_dim, hidden)
        dims = (self.input_dim,) + tuple(hidden) + (1,)
        n_params = sum(
            dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1)
        )
        return ArchitectureCandidate(
            hidden=tuple(int(w) for w in hidden),
            dense_time_us=report.dense_total_us_per_doc,
            pruned_time_us=report.pruned_forecast_us_per_doc,
            n_parameters=n_params,
        )

    def within_budget(
        self,
        budget_us: float,
        *,
        pruned: bool = True,
        max_candidates: int | None = None,
    ) -> list[ArchitectureCandidate]:
        """Candidates matching ``budget_us``, largest capacity first.

        ``pruned`` prices candidates assuming the first layer will be
        sparsified (the paper's deployment mode); the largest models that
        still fit the budget are the most promising students, so results
        are sorted by parameter count descending.
        """
        if budget_us <= 0:
            raise ValueError(f"budget_us must be positive, got {budget_us}")
        picked = [
            c
            for c in self.enumerate()
            if (c.pruned_time_us if pruned else c.dense_time_us) <= budget_us
        ]
        picked.sort(key=lambda c: -c.n_parameters)
        if max_candidates is not None:
            picked = picked[:max_candidates]
        return picked
