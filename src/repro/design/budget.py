"""Forest-side latency budgeting.

The neural side of a budget comparison is handled by
:class:`~repro.design.search.ArchitectureSearch`; this module answers the
mirror question for tree ensembles: *what is the largest forest that
still fits a scoring budget?*  QuickScorer's cost is monotone in the
tree count, so the answer is a binary search over the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quickscorer.cost import QuickScorerCostModel


@dataclass(frozen=True)
class ForestBudgetResult:
    """Largest admissible forest at one leaf count."""

    n_trees: int
    n_leaves: int
    time_us: float

    def describe(self) -> str:
        return f"{self.n_trees} trees, {self.n_leaves} leaves"


def max_trees_within_budget(
    budget_us: float,
    n_leaves: int,
    *,
    cost_model: QuickScorerCostModel | None = None,
    max_trees: int = 100_000,
) -> ForestBudgetResult | None:
    """Largest tree count whose predicted µs/doc fits ``budget_us``.

    Returns ``None`` when even a single tree exceeds the budget.
    """
    if budget_us <= 0:
        raise ValueError(f"budget_us must be positive, got {budget_us}")
    model = cost_model or QuickScorerCostModel()
    if model.scoring_time_us(1, n_leaves) > budget_us:
        return None
    lo, hi = 1, max_trees
    if model.scoring_time_us(hi, n_leaves) <= budget_us:
        lo = hi
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if model.scoring_time_us(mid, n_leaves) <= budget_us:
            lo = mid
        else:
            hi = mid - 1
    return ForestBudgetResult(
        n_trees=lo,
        n_leaves=n_leaves,
        time_us=model.scoring_time_us(lo, n_leaves),
    )


def forest_budget_sweep(
    budget_us: float,
    leaves_options=(16, 32, 64, 128, 256),
    *,
    cost_model: QuickScorerCostModel | None = None,
) -> list[ForestBudgetResult]:
    """Largest admissible forest per leaf count (skipping impossible ones)."""
    out = []
    for leaves in leaves_options:
        result = max_trees_within_budget(
            budget_us, leaves, cost_model=cost_model
        )
        if result is not None:
            out.append(result)
    return out
