"""Latency-aware neural-architecture design (Section 5).

The predictors make architecture search analytic: instead of training and
timing candidates, the designer enumerates feed-forward shapes, predicts
each one's scoring time, and keeps only those matching the latency budget
— "training exclusively the models respecting the latency requirements".

* :mod:`repro.design.search` — candidate enumeration + budget filtering.
* :mod:`repro.design.scenarios` — the paper's two evaluation scenarios:
  high-quality retrieval (NDCG floor at 99% of the best tree model) and
  low-latency retrieval (<= 0.5 µs/doc).
* :mod:`repro.design.frontier` — efficiency/effectiveness model points
  and per-family Pareto frontiers (Figs. 12-13).
"""

from repro.design.search import ArchitectureCandidate, ArchitectureSearch
from repro.design.scenarios import HighQualityScenario, LowLatencyScenario
from repro.design.frontier import FrontierPlot, ModelPoint, build_frontier
from repro.design.cascade import CascadeStage, EarlyExitCascade
from repro.design.budget import (
    ForestBudgetResult,
    forest_budget_sweep,
    max_trees_within_budget,
)

__all__ = [
    "ForestBudgetResult",
    "max_trees_within_budget",
    "forest_budget_sweep",
    "ArchitectureCandidate",
    "ArchitectureSearch",
    "HighQualityScenario",
    "LowLatencyScenario",
    "ModelPoint",
    "FrontierPlot",
    "build_frontier",
    "CascadeStage",
    "EarlyExitCascade",
]
