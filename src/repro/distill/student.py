"""The distilled student: network + input normalization.

Bundles the trained MLP with the Z-normalizer fitted on the training
features, so callers score raw (un-normalized) feature matrices exactly
as they would score them with the teacher forest.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.normalization import ZNormalizer
from repro.nn.network import FeedForwardNetwork


class DistilledStudent:
    """A scoring model: ``network(z_normalize(x))``."""

    def __init__(
        self,
        network: FeedForwardNetwork,
        normalizer: ZNormalizer,
        *,
        teacher_description: str = "",
    ) -> None:
        if not normalizer.is_fitted:
            raise ValueError("normalizer must be fitted")
        self.network = network
        self.normalizer = normalizer
        self.teacher_description = teacher_description

    @property
    def input_dim(self) -> int:
        return self.network.input_dim

    @property
    def hidden(self) -> tuple[int, ...]:
        return self.network.hidden

    def describe(self) -> str:
        """Architecture in the paper's ``a x b x c`` notation."""
        return self.network.describe()

    def predict(self, raw_features) -> np.ndarray:
        """Score raw feature rows (normalization applied internally)."""
        return self.network.predict(self.normalizer.transform(raw_features))

    def first_layer_sparsity(self) -> float:
        """Sparsity of the (possibly pruned) first layer."""
        return self.network.first_layer.sparsity()

    def layer_sparsities(self) -> list[float]:
        return self.network.layer_sparsities()

    def clone(self) -> "DistilledStudent":
        """Deep copy sharing no mutable state."""
        return DistilledStudent(
            self.network.clone(),
            self.normalizer,
            teacher_description=self.teacher_description,
        )

    # ------------------------------------------------------------------
    # Persistence (network weights + the training-set normalization
    # statistics, so a deployed student scores raw features correctly).
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the student (architecture, weights, masks, normalizer)."""
        import json

        payload = {
            "teacher_description": self.teacher_description,
            "normalizer": {
                "mean": self.normalizer.mean_.tolist(),
                "std": self.normalizer.std_.tolist(),
                "clip_sigma": self.normalizer.clip_sigma,
            },
            "network": {
                "input_dim": self.network.input_dim,
                "hidden": list(self.network.hidden),
                "dropout": self.network.dropout_rate,
                "layers": [
                    {
                        "weight": l.weight.data.tolist(),
                        "bias": l.bias.data.tolist(),
                        "mask": None if l.mask is None else l.mask.tolist(),
                    }
                    for l in self.network.linears
                ],
            },
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    @classmethod
    def load(cls, path) -> "DistilledStudent":
        """Load a student written by :meth:`save`."""
        import json

        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        net_data = payload["network"]
        network = FeedForwardNetwork(
            net_data["input_dim"],
            net_data["hidden"],
            dropout=net_data.get("dropout", 0.0),
            seed=0,
        )
        for linear, entry in zip(network.linears, net_data["layers"]):
            linear.weight.data = np.asarray(entry["weight"], dtype=np.float64)
            linear.bias.data = np.asarray(entry["bias"], dtype=np.float64)
            if entry.get("mask") is not None:
                linear.set_mask(np.asarray(entry["mask"]))
        norm_data = payload["normalizer"]
        normalizer = ZNormalizer(clip_sigma=norm_data.get("clip_sigma"))
        normalizer.mean_ = np.asarray(norm_data["mean"], dtype=np.float64)
        normalizer.std_ = np.asarray(norm_data["std"], dtype=np.float64)
        return cls(
            network,
            normalizer,
            teacher_description=payload.get("teacher_description", ""),
        )
