"""Zipf-aware replay reservoir over served traffic, and re-distillation.

Serving traffic for ranking is heavily skewed — a head of queries
repeats constantly while the tail is effectively unique.  A plain
reservoir sample over *rows* would be dominated by the head (the same
few documents sampled over and over); a plain dedup would forget the
skew entirely.  :class:`ReplayBuffer` does both:

* rows are deduplicated by content digest — a repeated row costs no new
  slot, it increments that row's ``seen`` count and refreshes its
  stored target score;
* **distinct** rows flow through an Algorithm-R reservoir, so when the
  buffer is full each distinct row ever offered has equal probability
  of being retained;
* :meth:`sample` draws popularity-weighted (∝ ``seen``) batches, so
  re-distillation sees the traffic distribution, not the uniform one.

:func:`redistill_student` closes the paper's distillation loop at serve
time: fine-tune a clone of the deployed student on a replay sample
(teacher-scored when a teacher is supplied, self-scored otherwise) and
hand it back as a promotion candidate.
"""

from __future__ import annotations

import hashlib
import math
from threading import RLock
from typing import Any

import numpy as np

from repro.exceptions import ReproError
from repro.nn.training import Trainer, TrainingConfig
from repro.utils.validation import check_array_2d


class ReplayError(ReproError):
    """Raised on invalid replay-buffer operations."""


def _row_digest(row: np.ndarray) -> bytes:
    return hashlib.blake2b(
        np.ascontiguousarray(row, dtype=np.float64).tobytes(),
        digest_size=16,
    ).digest()


class ReplayBuffer:
    """Bounded, dedup-reservoir store of (features, score) rows.

    Thread-safe: the serve path calls :meth:`add` concurrently from
    engine worker threads.
    """

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ReplayError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng(seed)
        self._lock = RLock()
        self._rows: list[np.ndarray] = []
        self._scores: list[float] = []
        self._seen: list[int] = []
        self._digests: list[bytes] = []
        self._index: dict[bytes, int] = {}
        #: Distinct rows ever offered (drives the reservoir).
        self._distinct_offered = 0
        #: Total rows ever offered, repeats included.
        self.total_rows = 0

    # ------------------------------------------------------------------
    def add(self, features, scores) -> int:
        """Offer a scored request to the buffer; returns rows absorbed.

        Known rows refresh their stored score and gain popularity;
        novel rows enter the Algorithm-R reservoir over distinct rows.
        "Absorbed" counts novel rows actually retained.
        """
        x = check_array_2d(features, "features")
        y = np.asarray(scores, dtype=np.float64).ravel()
        if len(x) != len(y):
            raise ReplayError(
                f"features ({len(x)}) and scores ({len(y)}) disagree"
            )
        absorbed = 0
        with self._lock:
            for row, score in zip(x, y):
                self.total_rows += 1
                digest = _row_digest(row)
                slot = self._index.get(digest)
                if slot is not None:
                    self._seen[slot] += 1
                    self._scores[slot] = float(score)
                    continue
                self._distinct_offered += 1
                if len(self._rows) < self.capacity:
                    self._index[digest] = len(self._rows)
                    self._rows.append(np.array(row, dtype=np.float64))
                    self._scores.append(float(score))
                    self._seen.append(1)
                    self._digests.append(digest)
                    absorbed += 1
                    continue
                j = int(self._rng.integers(0, self._distinct_offered))
                if j < self.capacity:
                    del self._index[self._digests[j]]
                    self._index[digest] = j
                    self._rows[j] = np.array(row, dtype=np.float64)
                    self._scores[j] = float(score)
                    self._seen[j] = 1
                    self._digests[j] = digest
                    absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    @property
    def distinct(self) -> int:
        """Distinct rows ever offered (retained or not)."""
        with self._lock:
            return self._distinct_offered

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot ``(X, y, seen_counts)`` of the retained rows."""
        with self._lock:
            if not self._rows:
                raise ReplayError("replay buffer is empty")
            return (
                np.stack(self._rows),
                np.asarray(self._scores, dtype=np.float64),
                np.asarray(self._seen, dtype=np.float64),
            )

    def sample(
        self, n: int, *, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` rows popularity-weighted (with replacement)."""
        x, y, seen = self.as_arrays()
        rng = self._rng if seed is None else np.random.default_rng(seed)
        p = seen / seen.sum()
        idx = rng.choice(len(x), size=int(n), replace=True, p=p)
        return x[idx], y[idx]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "rows": len(self._rows),
                "capacity": self.capacity,
                "distinct_offered": self._distinct_offered,
                "total_rows": self.total_rows,
                "max_seen": max(self._seen) if self._seen else 0,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<ReplayBuffer {len(self._rows)}/{self.capacity} rows, "
                f"{self.total_rows} offered>"
            )


# ----------------------------------------------------------------------
# Re-distillation
# ----------------------------------------------------------------------
def redistill_student(
    student,
    buffer: ReplayBuffer,
    *,
    teacher: Any | None = None,
    epochs: int = 3,
    batch_size: int = 64,
    learning_rate: float = 1e-3,
    seed: int = 0,
):
    """Fine-tune a clone of ``student`` on the replay buffer.

    Targets are the teacher's scores on the buffered raw rows when a
    ``teacher`` is given (true re-distillation), otherwise the scores
    stored at serve time (self-distillation on drifted traffic).
    Batches are drawn popularity-weighted so the head of the traffic
    distribution dominates the fine-tune the way it dominates serving.
    Returns the trained clone; the caller decides whether to promote it.
    """
    x_raw, y, seen = buffer.as_arrays()
    if teacher is not None:
        score = getattr(teacher, "score", None) or getattr(
            teacher, "predict"
        )
        y = np.asarray(score(x_raw), dtype=np.float64).ravel()
        if len(y) != len(x_raw):
            raise ReplayError(
                "teacher returned a score per-row mismatch: "
                f"{len(y)} scores for {len(x_raw)} rows"
            )
    clone = student.clone()
    xn = clone.normalizer.transform(x_raw)
    p = seen / seen.sum()

    def provider(rng, bs):
        idx = rng.choice(len(xn), size=bs, replace=True, p=p)
        return xn[idx], y[idx]

    trainer = Trainer(
        clone.network,
        TrainingConfig(
            epochs=int(epochs),
            batch_size=int(batch_size),
            learning_rate=float(learning_rate),
        ),
        seed=seed,
    )
    steps = max(1, math.ceil(len(xn) / int(batch_size)))
    trainer.fit(batch_provider=provider, steps_per_epoch=steps)
    return clone
