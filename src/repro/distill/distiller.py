"""The distillation trainer.

Trains a student MLP to approximate the teacher's scores (Section 3):

1. fit a Z-normalizer on the training features;
2. build the split-point midpoint augmenter from the teacher + dataset;
3. every batch: half real documents (targets = cached teacher scores),
   half fresh synthetic samples scored by the teacher on the fly;
4. minimize MSE with Adam under the paper's LR schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.datasets.base import LtrDataset
from repro.datasets.normalization import ZNormalizer
from repro.distill.augmentation import SplitPointAugmenter
from repro.distill.student import DistilledStudent
from repro.distill.teacher import TreeEnsembleTeacher
from repro.forest.ensemble import TreeEnsemble
from repro.nn.network import FeedForwardNetwork
from repro.nn.training import Trainer, TrainingConfig
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class DistillationConfig:
    """Hyper-parameters of the distillation phase.

    Defaults mirror the paper's MSN30K settings (Table 9): Adam with lr
    0.001, gamma 0.1 at epochs {50, 80}, 100 epochs.  ``augmented_fraction``
    is the share of each batch drawn from the midpoint lists (0.5 in
    Cohen et al.).
    """

    epochs: int = 100
    batch_size: int = 256
    learning_rate: float = 0.001
    lr_gamma: float = 0.1
    lr_milestones: tuple[int, ...] = (50, 80)
    augmented_fraction: float = 0.5
    steps_per_epoch: int | None = None
    dropout: float = 0.0

    def __post_init__(self) -> None:
        check_fraction(self.augmented_fraction, "augmented_fraction")

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            lr_gamma=self.lr_gamma,
            lr_milestones=self.lr_milestones,
        )


def make_distillation_provider(
    teacher: TreeEnsembleTeacher,
    train: LtrDataset,
    normalizer: ZNormalizer,
    *,
    augmented_fraction: float = 0.5,
):
    """Batch provider mixing real documents and augmented samples.

    Used by both the distillation trainer and the pruning pipeline's
    fine-tuning phase (the paper fine-tunes against the same teacher).
    """
    check_fraction(augmented_fraction, "augmented_fraction")
    x_real = normalizer.transform(train.features)
    y_real = teacher.score(train.features)
    augmenter = SplitPointAugmenter.from_teacher(teacher, train)

    def provider(rng: np.random.Generator, batch_size: int):
        n_aug = int(round(augmented_fraction * batch_size))
        n_real = batch_size - n_aug
        parts_x = []
        parts_y = []
        if n_real:
            idx = rng.integers(0, len(x_real), size=n_real)
            parts_x.append(x_real[idx])
            parts_y.append(y_real[idx])
        if n_aug:
            raw = augmenter.sample(n_aug, seed=rng)
            parts_x.append(normalizer.transform(raw))
            parts_y.append(teacher.score(raw))
        return np.concatenate(parts_x), np.concatenate(parts_y)

    return provider


class Distiller:
    """Distills a tree-ensemble teacher into a student MLP."""

    def __init__(
        self,
        config: DistillationConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config or DistillationConfig()
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    def distill(
        self,
        teacher: TreeEnsemble | TreeEnsembleTeacher,
        train: LtrDataset,
        hidden,
        *,
        network: FeedForwardNetwork | None = None,
        valid_fn=None,
    ) -> DistilledStudent:
        """Train a student with hidden widths ``hidden`` (e.g. (500, 100)).

        Parameters
        ----------
        teacher:
            The trained forest whose scores are approximated.
        train:
            Training partition; provides real documents, normalization
            statistics and the feature min/max for augmentation.
        hidden:
            Student hidden-layer widths; ignored when ``network`` is given.
        network:
            Optional pre-built network (used by the pruning pipeline to
            fine-tune an existing student).
        """
        if isinstance(teacher, TreeEnsemble):
            teacher = TreeEnsembleTeacher(teacher)
        cfg = self.config

        normalizer = ZNormalizer().fit(train.features)

        if network is None:
            network = FeedForwardNetwork(
                train.n_features,
                hidden,
                dropout=cfg.dropout,
                seed=self._rng,
            )

        provider = make_distillation_provider(
            teacher,
            train,
            normalizer,
            augmented_fraction=cfg.augmented_fraction,
        )
        steps = cfg.steps_per_epoch or max(1, train.n_docs // cfg.batch_size)
        trainer = Trainer(network, cfg.training_config(), seed=self._rng)
        with obs.span(
            "distill.fit", arch=network.describe(), teacher=teacher.describe()
        ):
            self.last_history_ = trainer.fit(
                batch_provider=provider, steps_per_epoch=steps, valid_fn=valid_fn
            )
        return DistilledStudent(
            network, normalizer, teacher_description=teacher.describe()
        )
