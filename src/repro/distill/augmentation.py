"""Split-point midpoint data augmentation (Cohen et al., Section 3).

For each feature, collect the split points the teacher forest tests on
that feature, add the feature's training-set minimum and maximum, sort,
and replace the list with the midpoints of adjacent pairs.  Synthetic
documents are then drawn by sampling each feature independently from its
midpoint list — every synthetic point lands strictly inside a cell of the
teacher's axis-aligned partition, covering the feature space far better
than the training distribution alone and letting the student observe the
teacher's value in every region it can actually distinguish.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.exceptions import DatasetError
from repro.utils.rng import ensure_rng


class SplitPointAugmenter:
    """Samples synthetic feature vectors from midpoint lists."""

    def __init__(
        self, split_points: list[np.ndarray], feature_min, feature_max
    ) -> None:
        feature_min = np.asarray(feature_min, dtype=np.float64)
        feature_max = np.asarray(feature_max, dtype=np.float64)
        if not (
            len(split_points) == len(feature_min) == len(feature_max)
        ):
            raise DatasetError(
                "split_points, feature_min and feature_max must align"
            )
        self.midpoints: list[np.ndarray] = []
        for f, points in enumerate(split_points):
            values = np.concatenate(
                (np.asarray(points, dtype=np.float64), feature_min[f : f + 1],
                 feature_max[f : f + 1])
            )
            values = np.unique(values)
            if len(values) == 1:
                # Constant feature: its only meaningful value.
                mids = values
            else:
                mids = (values[:-1] + values[1:]) / 2.0
            self.midpoints.append(mids)

    @classmethod
    def from_teacher(
        cls, teacher, dataset: LtrDataset
    ) -> "SplitPointAugmenter":
        """Build lists from a teacher's splits and a dataset's ranges."""
        fmin, fmax = dataset.feature_ranges()
        return cls(teacher.split_points(), fmin, fmax)

    @property
    def n_features(self) -> int:
        return len(self.midpoints)

    def list_sizes(self) -> np.ndarray:
        """Number of midpoints per feature."""
        return np.asarray([len(m) for m in self.midpoints])

    def sample(
        self, n: int, seed: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw ``n`` synthetic feature vectors."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rng = ensure_rng(seed)
        out = np.empty((n, self.n_features), dtype=np.float64)
        for f, mids in enumerate(self.midpoints):
            idx = rng.integers(0, len(mids), size=n)
            out[:, f] = mids[idx]
        return out
