"""Knowledge distillation from tree ensembles to neural networks.

Implements the training-by-scores-approximation methodology of Cohen et
al. that the paper adopts (Section 3): the tree ensemble is a black-box
teacher producing scores, the student MLP regresses them with MSE, every
training batch is half real documents and half synthetic samples drawn
from the per-feature split-point midpoint lists, and all inputs are
Z-normalized with training-set statistics.
"""

from repro.distill.teacher import TreeEnsembleTeacher
from repro.distill.augmentation import SplitPointAugmenter
from repro.distill.student import DistilledStudent
from repro.distill.distiller import DistillationConfig, Distiller
from repro.distill.replay import ReplayBuffer, ReplayError, redistill_student

__all__ = [
    "TreeEnsembleTeacher",
    "SplitPointAugmenter",
    "DistilledStudent",
    "DistillationConfig",
    "Distiller",
    "ReplayBuffer",
    "ReplayError",
    "redistill_student",
]
