"""The black-box teacher.

Distillation treats the ensemble of regression trees purely as a function
``F: R^f -> R`` producing accurate scores; the only structural
information used is the set of per-feature split points that seeds the
data-augmentation lists (Section 3).
"""

from __future__ import annotations

import numpy as np

from repro.forest.ensemble import TreeEnsemble


class TreeEnsembleTeacher:
    """Scoring facade over a trained :class:`TreeEnsemble`."""

    def __init__(self, ensemble: TreeEnsemble) -> None:
        self.ensemble = ensemble

    @property
    def n_features(self) -> int:
        return self.ensemble.n_features

    def score(self, features) -> np.ndarray:
        """Teacher scores — the student's regression targets."""
        return self.ensemble.predict(features)

    def split_points(self) -> list[np.ndarray]:
        """Per-feature sorted unique split thresholds of the forest."""
        return self.ensemble.split_points()

    def describe(self) -> str:
        return self.ensemble.describe()
