"""Quantile feature binning for histogram-based tree growing.

LightGBM's core trick — and the reason it is the state of the art the paper
trains with — is to discretize each feature into at most 255 bins once, and
then to evaluate splits on per-bin gradient histograms instead of sorted
feature values.  This module reproduces that preprocessing: bin edges are
chosen on (approximate) quantiles of the training distribution, and the
real-valued threshold associated with a bin boundary is the midpoint
between the adjacent bin edges, which is also what the distillation
augmentation step later treats as a split point.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.utils.validation import check_array_2d


class FeatureBinner:
    """Discretize features into at most ``max_bins`` quantile bins.

    After :meth:`fit`, ``upper_edges_[f]`` holds the increasing bin upper
    boundaries of feature ``f`` (excluding +inf); a value ``v`` falls in bin
    ``searchsorted(upper_edges, v)``.  The boundary values double as the
    candidate split thresholds of the tree builder.
    """

    def __init__(self, max_bins: int = 255) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
        self.max_bins = max_bins
        self.upper_edges_: list[np.ndarray] | None = None

    def fit(self, features) -> "FeatureBinner":
        """Compute quantile bin edges per feature."""
        x = check_array_2d(features, "features")
        edges: list[np.ndarray] = []
        # Probe a fixed quantile grid; deduplicated edges handle low-
        # cardinality features (counts, booleans) gracefully.
        grid = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for f in range(x.shape[1]):
            col = x[:, f]
            # method="lower" keeps edges at observed values, so low-
            # cardinality (count/boolean) features get one bin per value.
            qs = np.quantile(col, grid, method="lower")
            uniq = np.unique(qs)
            # Drop edges equal to the global max: they would create an
            # always-empty last bin.
            uniq = uniq[uniq < col.max()] if uniq.size else uniq
            edges.append(uniq.astype(np.float64))
        self.upper_edges_ = edges
        return self

    @property
    def is_fitted(self) -> bool:
        return self.upper_edges_ is not None

    @property
    def n_features(self) -> int:
        if not self.is_fitted:
            raise NotFittedError("FeatureBinner used before fit")
        return len(self.upper_edges_)

    def n_bins(self, feature: int) -> int:
        """Number of bins for ``feature`` (edges + 1)."""
        if not self.is_fitted:
            raise NotFittedError("FeatureBinner used before fit")
        return len(self.upper_edges_[feature]) + 1

    @property
    def max_actual_bins(self) -> int:
        """Largest bin count across features (histogram row width)."""
        if not self.is_fitted:
            raise NotFittedError("FeatureBinner used before fit")
        return max((len(e) + 1 for e in self.upper_edges_), default=1)

    def transform(self, features) -> np.ndarray:
        """Map features to their bin indices (uint8 matrix)."""
        if not self.is_fitted:
            raise NotFittedError("FeatureBinner used before fit")
        x = check_array_2d(features, "features")
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        binned = np.empty(x.shape, dtype=np.uint8)
        for f, edges in enumerate(self.upper_edges_):
            # Values <= edge fall in the bin left of that edge.
            binned[:, f] = np.searchsorted(edges, x[:, f], side="left").astype(
                np.uint8
            )
        return binned

    def fit_transform(self, features) -> np.ndarray:
        """Fit on ``features`` and return their binned version."""
        return self.fit(features).transform(features)

    def threshold_for(self, feature: int, bin_index: int) -> float:
        """Real-valued split threshold "bin <= bin_index goes left".

        This is the edge value itself: the builder's split predicate is
        ``x <= threshold``, consistent with :meth:`transform`'s
        ``side='left'`` convention.
        """
        if not self.is_fitted:
            raise NotFittedError("FeatureBinner used before fit")
        edges = self.upper_edges_[feature]
        if not 0 <= bin_index < len(edges):
            raise IndexError(
                f"bin_index {bin_index} out of range for feature {feature} "
                f"with {len(edges)} edges"
            )
        return float(edges[bin_index])
