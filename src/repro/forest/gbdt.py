"""The gradient-boosting training loop.

Replaces the LightGBM trainer used in the paper: iteratively fits
histogram trees to the objective's (gradient, hessian) pairs, with
shrinkage, optional row bagging, and early stopping on a validation
metric evaluated every ``eval_every`` iterations (the paper applies "an
early stopping criterion on the validation loss every 100 trees").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.datasets.base import LtrDataset
from repro.exceptions import TrainingError
from repro.forest.binning import FeatureBinner
from repro.forest.builder import HistogramTreeBuilder, TreeGrowthConfig
from repro.forest.ensemble import TreeEnsemble
from repro.utils.rng import ensure_rng

#: Validation metric signature: higher is better.
MetricFn = Callable[[LtrDataset, np.ndarray], float]


@dataclass(frozen=True)
class GradientBoostingConfig:
    """Hyper-parameters of the boosting run.

    The tunable subset matches what the paper optimizes with HyperOpt:
    learning rate, max depth, ``min_sum_hessian_in_leaf`` and
    ``min_data_in_leaf`` (Section 6.1), plus the structural
    ``max_leaves`` (64 for deployment models, 256 for teachers).
    """

    n_trees: int = 100
    learning_rate: float = 0.1
    #: "leafwise" grows LightGBM-style best-first trees; "oblivious"
    #: grows level-uniform (CatBoost-style) trees of depth
    #: ``oblivious_depth`` — the other ensemble family QuickScorer's
    #: original evaluation covers.
    tree_type: str = "leafwise"
    oblivious_depth: int = 6
    max_leaves: int = 64
    min_data_in_leaf: int = 20
    min_sum_hessian_in_leaf: float = 1e-3
    lambda_l2: float = 1.0
    max_depth: int | None = None
    max_bins: int = 255
    subsample: float = 1.0
    early_stopping_rounds: int | None = None
    eval_every: int = 10

    def __post_init__(self) -> None:
        if self.n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {self.n_trees}")
        if not 0 < self.learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {self.learning_rate}"
            )
        if not 0 < self.subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {self.subsample}")
        if self.eval_every <= 0:
            raise ValueError(f"eval_every must be positive, got {self.eval_every}")
        if self.tree_type not in ("leafwise", "oblivious"):
            raise ValueError(
                f"tree_type must be 'leafwise' or 'oblivious', got "
                f"{self.tree_type!r}"
            )

    def growth_config(self) -> TreeGrowthConfig:
        return TreeGrowthConfig(
            max_leaves=self.max_leaves,
            min_data_in_leaf=self.min_data_in_leaf,
            min_sum_hessian_in_leaf=self.min_sum_hessian_in_leaf,
            lambda_l2=self.lambda_l2,
            max_depth=self.max_depth,
        )


@dataclass
class TrainingHistory:
    """Per-evaluation snapshots recorded during boosting."""

    iterations: list[int] = field(default_factory=list)
    valid_metric: list[float] = field(default_factory=list)
    best_iteration: int = 0
    best_metric: float = float("-inf")
    stopped_early: bool = False


class GradientBoostingRegressor:
    """Boosting driver parameterized by an objective.

    Parameters
    ----------
    config:
        Boosting hyper-parameters.
    objective:
        Object exposing ``init_score(dataset)`` and
        ``gradients(scores, dataset)``; see :mod:`repro.forest.objectives`.
    seed:
        Controls bagging.
    """

    def __init__(
        self,
        config: GradientBoostingConfig,
        objective,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config
        self.objective = objective
        self._rng = ensure_rng(seed)
        self.history_: TrainingHistory | None = None

    def fit(
        self,
        train: LtrDataset,
        valid: LtrDataset | None = None,
        valid_metric: MetricFn | None = None,
        name: str = "gbdt",
        init_ensemble: TreeEnsemble | None = None,
    ) -> TreeEnsemble:
        """Train and return the (possibly early-stopped) ensemble.

        Parameters
        ----------
        init_ensemble:
            Optional warm start: boosting continues from this ensemble's
            predictions, ``n_trees`` *new* trees are appended, and the
            returned model contains the old trees as a prefix — useful
            for sweeping forest sizes without retraining (extend the
            300-tree model into the 500-tree one).
        """
        cfg = self.config
        if cfg.early_stopping_rounds is not None and (
            valid is None or valid_metric is None
        ):
            raise TrainingError(
                "early stopping requires a validation set and metric"
            )
        if (
            init_ensemble is not None
            and init_ensemble.n_features != train.n_features
        ):
            raise TrainingError(
                "init_ensemble feature count does not match the training data"
            )

        binner = FeatureBinner(max_bins=cfg.max_bins)
        binned = binner.fit_transform(train.features)
        if cfg.tree_type == "oblivious":
            from repro.forest.oblivious import (
                ObliviousGrowthConfig,
                ObliviousTreeBuilder,
            )

            builder = ObliviousTreeBuilder(
                binned,
                binner,
                ObliviousGrowthConfig(
                    depth=cfg.oblivious_depth,
                    min_data_in_leaf=cfg.min_data_in_leaf,
                    lambda_l2=cfg.lambda_l2,
                ),
            )
        else:
            builder = HistogramTreeBuilder(binned, binner, cfg.growth_config())

        if init_ensemble is not None:
            base = init_ensemble.base_score
            scores = init_ensemble.predict(train.features)
            valid_scores = (
                init_ensemble.predict(valid.features)
                if valid is not None
                else None
            )
            trees = list(init_ensemble.trees)
            init_weights = init_ensemble.weights
        else:
            base = float(self.objective.init_score(train))
            scores = np.full(train.n_docs, base, dtype=np.float64)
            valid_scores = (
                np.full(valid.n_docs, base, dtype=np.float64)
                if valid is not None
                else None
            )
            trees = []
            init_weights = np.empty(0)
        history = TrainingHistory()
        evals_without_improvement = 0
        n_rows = train.n_docs
        bag_size = max(1, int(round(cfg.subsample * n_rows)))

        # Metric handles are resolved once, outside the boosting loop, so
        # per-round accounting is two attribute calls.
        rounds_total = obs.counter("gbdt.boosting_rounds", model=name)
        valid_gauge = obs.gauge("gbdt.valid_metric", model=name)
        fit_span = obs.span(
            "gbdt.fit", model=name, trees=cfg.n_trees, leaves=cfg.max_leaves
        )
        with fit_span:
            for it in range(cfg.n_trees):
                g, h = self.objective.gradients(scores, train)
                rows = None
                if cfg.subsample < 1.0:
                    rows = self._rng.choice(n_rows, size=bag_size, replace=False)
                tree = builder.build(g, h, rows)
                trees.append(tree)
                scores += cfg.learning_rate * tree.predict(train.features)
                if valid_scores is not None:
                    valid_scores += cfg.learning_rate * tree.predict(
                        valid.features
                    )
                rounds_total.inc()

                is_last = it == cfg.n_trees - 1
                if valid is not None and valid_metric is not None and (
                    (it + 1) % cfg.eval_every == 0 or is_last
                ):
                    metric = float(valid_metric(valid, valid_scores))
                    valid_gauge.set(metric)
                    history.iterations.append(it + 1)
                    history.valid_metric.append(metric)
                    if metric > history.best_metric:
                        history.best_metric = metric
                        history.best_iteration = it + 1
                        evals_without_improvement = 0
                    else:
                        evals_without_improvement += 1
                    if (
                        cfg.early_stopping_rounds is not None
                        and evals_without_improvement
                        >= cfg.early_stopping_rounds
                    ):
                        history.stopped_early = True
                        break

        self.history_ = history
        n_new = len(trees) - len(init_weights)
        weights = np.concatenate(
            [init_weights, np.full(n_new, cfg.learning_rate)]
        )
        ensemble = TreeEnsemble(
            trees=trees,
            weights=weights,
            base_score=base,
            n_features=train.n_features,
            name=name,
        )
        if history.stopped_early and history.best_iteration > 0:
            ensemble = ensemble.truncate(
                len(init_weights) + history.best_iteration, name=name
            )
        return ensemble
