"""Gradient-boosted ensembles of regression trees.

This package replaces the LightGBM dependency of the paper with a
from-scratch, histogram-based gradient boosting implementation:

* :mod:`repro.forest.binning` — quantile feature binning (LightGBM-style
  histogram preprocessing).
* :mod:`repro.forest.tree` — array-encoded regression trees.
* :mod:`repro.forest.builder` — leaf-wise histogram tree growing with
  gain-based splits and histogram subtraction.
* :mod:`repro.forest.objectives` — second-order objectives: L2 regression
  and LambdaRank (lambda-gradients weighted by |delta NDCG|).
* :mod:`repro.forest.gbdt` — the boosting loop with early stopping.
* :mod:`repro.forest.lambdamart` — the LambdaMART ranker facade.
* :mod:`repro.forest.ensemble` — the trained-forest container consumed by
  QuickScorer, by the distillation teacher and by the augmentation step.
* :mod:`repro.forest.tuning` — random-search hyper-parameter tuning
  (HyperOpt substitute).
"""

from repro.forest.binning import FeatureBinner
from repro.forest.tree import RegressionTree
from repro.forest.ensemble import TreeEnsemble
from repro.forest.gbdt import GradientBoostingConfig, GradientBoostingRegressor
from repro.forest.lambdamart import LambdaMartRanker
from repro.forest.objectives import L2Objective, LambdaRankObjective
from repro.forest.oblivious import ObliviousGrowthConfig, ObliviousTreeBuilder
from repro.forest.tuning import RandomSearchTuner, TuningResult

__all__ = [
    "FeatureBinner",
    "RegressionTree",
    "TreeEnsemble",
    "GradientBoostingConfig",
    "GradientBoostingRegressor",
    "LambdaMartRanker",
    "L2Objective",
    "LambdaRankObjective",
    "ObliviousGrowthConfig",
    "ObliviousTreeBuilder",
    "RandomSearchTuner",
    "TuningResult",
]
