"""Oblivious regression trees.

QuickScorer's original evaluation (Dato et al., TOIS 2016 — the paper's
reference [13]) covers "additive ensembles of oblivious and non-oblivious
regression trees".  An *oblivious* tree applies the same (feature,
threshold) test to every node of a level, so a depth-``d`` tree is a
table of ``2^d`` leaves indexed by the ``d`` test outcomes — the shape
CatBoost popularized, extremely fast to evaluate and naturally
QuickScorer-encodable.

The builder grows one level at a time: for every candidate (feature,
bin) it accumulates the second-order gain *summed across all current
leaf partitions* and keeps the best, exactly the greedy criterion of the
non-oblivious builder restricted to level-uniform splits.  The result is
emitted as a standard :class:`RegressionTree` (complete binary tree), so
ensembles of oblivious trees flow through boosting, QuickScorer and
serialization unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forest.binning import FeatureBinner
from repro.forest.tree import NO_CHILD, RegressionTree


@dataclass(frozen=True)
class ObliviousGrowthConfig:
    """Structural parameters of one oblivious tree."""

    depth: int = 6
    min_data_in_leaf: int = 1
    lambda_l2: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= self.depth <= 16:
            raise ValueError(f"depth must be in [1, 16], got {self.depth}")
        if self.min_data_in_leaf < 1:
            raise ValueError(
                f"min_data_in_leaf must be >= 1, got {self.min_data_in_leaf}"
            )
        if self.lambda_l2 < 0:
            raise ValueError(f"lambda_l2 must be >= 0, got {self.lambda_l2}")


class ObliviousTreeBuilder:
    """Builds oblivious trees over a fixed binned training matrix."""

    def __init__(
        self,
        binned: np.ndarray,
        binner: FeatureBinner,
        config: ObliviousGrowthConfig | None = None,
    ) -> None:
        if binned.ndim != 2:
            raise ValueError(f"binned must be 2-D, got shape {binned.shape}")
        self.binner = binner
        self.config = config or ObliviousGrowthConfig()
        self.n_rows, self.n_features = binned.shape
        self.n_bins = binner.max_actual_bins
        self._binned = binned
        self._usable_bins = np.asarray(
            [binner.n_bins(f) for f in range(self.n_features)], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def _level_split(
        self, partition: np.ndarray, g: np.ndarray, h: np.ndarray
    ) -> tuple[int, int] | None:
        """Best level-uniform (feature, bin) over all current partitions.

        ``partition`` assigns each row to its current leaf; the gain of a
        candidate split is the sum of per-partition second-order gains.
        """
        lam = self.config.lambda_l2
        n_parts = int(partition.max()) + 1
        best: tuple[float, int, int] | None = None
        for f in range(self.n_features):
            usable = int(self._usable_bins[f]) - 1
            if usable < 1:
                continue
            bins = self._binned[:, f].astype(np.int64)
            # Per (partition, bin) histograms via a combined index.
            combined = partition * self.n_bins + bins
            size = n_parts * self.n_bins
            hist_g = np.bincount(combined, weights=g, minlength=size)
            hist_h = np.bincount(combined, weights=h, minlength=size)
            hist_n = np.bincount(combined, minlength=size).astype(np.float64)
            shape = (n_parts, self.n_bins)
            gl = np.cumsum(hist_g.reshape(shape), axis=1)
            hl = np.cumsum(hist_h.reshape(shape), axis=1)
            nl = np.cumsum(hist_n.reshape(shape), axis=1)
            g_tot, h_tot, n_tot = gl[:, -1:], hl[:, -1:], nl[:, -1:]
            gr, hr, nr = g_tot - gl, h_tot - hl, n_tot - nl
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = (
                    gl**2 / (hl + lam)
                    + gr**2 / (hr + lam)
                    - g_tot**2 / (h_tot + lam)
                )
            gain = np.nan_to_num(gain, nan=0.0, posinf=0.0, neginf=0.0)
            total_gain = gain.sum(axis=0)  # summed across partitions
            # A split is admissible when every non-empty partition keeps
            # min_data on both sides OR is empty on that side entirely
            # (oblivious splits cannot adapt per partition).
            md = self.config.min_data_in_leaf
            ok_left = (nl >= md) | (nl == 0)
            ok_right = (nr >= md) | (nr == 0)
            admissible = (ok_left & ok_right).all(axis=0)
            admissible[usable:] = False
            total_gain = np.where(admissible, total_gain, -np.inf)
            b = int(np.argmax(total_gain))
            if total_gain[b] > 0 and (
                best is None or total_gain[b] > best[0]
            ):
                best = (float(total_gain[b]), f, b)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    def build(
        self, gradients: np.ndarray, hessians: np.ndarray, rows=None
    ) -> RegressionTree:
        """Grow one oblivious tree on the given gradients/hessians."""
        g_full = np.asarray(gradients, dtype=np.float64)
        h_full = np.asarray(hessians, dtype=np.float64)
        if g_full.shape != (self.n_rows,) or h_full.shape != (self.n_rows,):
            raise ValueError(
                "gradients and hessians must be 1-D over the training rows"
            )
        if rows is None:
            rows = np.arange(self.n_rows, dtype=np.intp)
        else:
            rows = np.asarray(rows, dtype=np.intp)
        g, h = g_full[rows], h_full[rows]
        binned = self._binned[rows]

        partition = np.zeros(len(rows), dtype=np.int64)
        level_tests: list[tuple[int, float]] = []
        for _ in range(self.config.depth):
            # Recompute against the current partition.
            choice = self._level_split_with(binned, partition, g, h)
            if choice is None:
                break
            f, b = choice
            level_tests.append((f, self.binner.threshold_for(f, b)))
            goes_right = binned[:, f] > b
            partition = partition * 2 + goes_right.astype(np.int64)

        if not level_tests:
            lam = self.config.lambda_l2
            return RegressionTree.single_leaf(
                float(-g.sum() / (h.sum() + lam))
            )
        return self._assemble(level_tests, partition, g, h)

    def _level_split_with(self, binned, partition, g, h):
        saved = self._binned
        self._binned = binned
        try:
            return self._level_split(partition, g, h)
        finally:
            self._binned = saved

    def _assemble(
        self,
        level_tests: list[tuple[int, float]],
        partition: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
    ) -> RegressionTree:
        depth = len(level_tests)
        n_leaves = 2**depth
        n_internal = n_leaves - 1
        n_nodes = n_internal + n_leaves
        feature = np.full(n_nodes, -1, dtype=np.int64)
        threshold = np.full(n_nodes, np.nan)
        left = np.full(n_nodes, NO_CHILD, dtype=np.int64)
        right = np.full(n_nodes, NO_CHILD, dtype=np.int64)
        value = np.zeros(n_nodes)

        # Heap layout: internal node i has children 2i+1 / 2i+2; level of
        # node i is floor(log2(i+1)); leaves occupy the last 2^depth slots.
        for i in range(n_internal):
            level = int(np.floor(np.log2(i + 1)))
            feature[i] = level_tests[level][0]
            threshold[i] = level_tests[level][1]
            left[i] = 2 * i + 1
            right[i] = 2 * i + 2

        lam = self.config.lambda_l2
        g_leaf = np.bincount(partition, weights=g, minlength=n_leaves)
        h_leaf = np.bincount(partition, weights=h, minlength=n_leaves)
        denom = h_leaf + lam
        denom[denom == 0.0] = 1.0  # empty leaves (lambda_l2 = 0) stay 0
        leaf_values = -g_leaf / denom
        # Leaf with path bits b_1..b_d (0 = left) sits at heap index
        # n_internal + its bit pattern, which is also its left-to-right
        # position.
        value[n_internal:] = leaf_values
        return RegressionTree(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
        )
