"""Leaf-wise histogram tree growing.

Given pre-binned features and per-row gradient/hessian pairs, the builder
grows one regression tree best-first (the leaf with the highest split gain
is expanded next, as LightGBM does) until ``max_leaves`` is reached or no
leaf has a positive-gain admissible split.

Split quality uses the standard second-order gain

    gain = 1/2 * [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ]

and children must respect ``min_data_in_leaf`` and
``min_sum_hessian_in_leaf`` — the two LightGBM regularizers the paper's
hyper-parameter search tunes.  Gradient histograms of a split's larger
child are obtained by subtracting the smaller child's histogram from the
parent's, halving histogram work, as in LightGBM.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.forest.binning import FeatureBinner
from repro.forest.tree import NO_CHILD, RegressionTree


@dataclass(frozen=True)
class TreeGrowthConfig:
    """Structural and regularization parameters of a single tree."""

    max_leaves: int = 31
    min_data_in_leaf: int = 20
    min_sum_hessian_in_leaf: float = 1e-3
    lambda_l2: float = 1.0
    max_depth: int | None = None
    min_split_gain: float = 1e-12

    def __post_init__(self) -> None:
        if self.max_leaves < 2:
            raise ValueError(f"max_leaves must be >= 2, got {self.max_leaves}")
        if self.min_data_in_leaf < 1:
            raise ValueError(
                f"min_data_in_leaf must be >= 1, got {self.min_data_in_leaf}"
            )
        if self.lambda_l2 < 0:
            raise ValueError(f"lambda_l2 must be >= 0, got {self.lambda_l2}")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")


class _Leaf:
    """Bookkeeping for a not-yet-finalized leaf during growth."""

    __slots__ = (
        "node_id",
        "rows",
        "hist_g",
        "hist_h",
        "hist_n",
        "depth",
        "best_gain",
        "best_feature",
        "best_bin",
    )

    def __init__(self, node_id, rows, hist_g, hist_h, hist_n, depth) -> None:
        self.node_id = node_id
        self.rows = rows
        self.hist_g = hist_g
        self.hist_h = hist_h
        self.hist_n = hist_n
        self.depth = depth
        self.best_gain = -np.inf
        self.best_feature = -1
        self.best_bin = -1


class HistogramTreeBuilder:
    """Builds regression trees over a fixed binned training matrix.

    The builder is constructed once per training set (binning and the
    flattened bin-index matrix are reused across all boosting iterations)
    and :meth:`build` is called with fresh gradients each iteration.
    """

    def __init__(
        self,
        binned: np.ndarray,
        binner: FeatureBinner,
        config: TreeGrowthConfig | None = None,
    ) -> None:
        if binned.ndim != 2:
            raise ValueError(f"binned must be 2-D, got shape {binned.shape}")
        self.binner = binner
        self.config = config or TreeGrowthConfig()
        self.n_rows, self.n_features = binned.shape
        self.n_bins = binner.max_actual_bins
        self._binned = binned
        # Flattened indices so one bincount builds all feature histograms.
        offsets = (np.arange(self.n_features, dtype=np.int64) * self.n_bins)
        self._flat = binned.astype(np.int64) + offsets[None, :]
        self._hist_size = self.n_features * self.n_bins
        # Bins that actually exist per feature (edges + 1); splits beyond
        # this are meaningless.
        self._usable_bins = np.asarray(
            [binner.n_bins(f) for f in range(self.n_features)], dtype=np.int64
        )

    # ------------------------------------------------------------------
    def _histograms(self, rows, g, h):
        flat = self._flat[rows].ravel()
        wg = np.repeat(g[rows], self.n_features)
        wh = np.repeat(h[rows], self.n_features)
        hist_g = np.bincount(flat, weights=wg, minlength=self._hist_size)
        hist_h = np.bincount(flat, weights=wh, minlength=self._hist_size)
        hist_n = np.bincount(flat, minlength=self._hist_size).astype(np.float64)
        shape = (self.n_features, self.n_bins)
        return hist_g.reshape(shape), hist_h.reshape(shape), hist_n.reshape(shape)

    def _find_best_split(self, leaf: _Leaf) -> None:
        cfg = self.config
        gl = np.cumsum(leaf.hist_g, axis=1)
        hl = np.cumsum(leaf.hist_h, axis=1)
        nl = np.cumsum(leaf.hist_n, axis=1)
        g_total = gl[:, -1:]
        h_total = hl[:, -1:]
        n_total = nl[:, -1:]
        gr = g_total - gl
        hr = h_total - hl
        nr = n_total - nl

        lam = cfg.lambda_l2
        # Empty bin ranges give 0/0 when lambda_l2 == 0; those candidates
        # are discarded by the hessian/min-data validity mask below.
        with np.errstate(divide="ignore", invalid="ignore"):
            parent = (g_total**2) / (h_total + lam)
            gain = 0.5 * (gl**2 / (hl + lam) + gr**2 / (hr + lam) - parent)
        gain = np.nan_to_num(gain, nan=-np.inf, posinf=-np.inf, neginf=-np.inf)

        valid = (
            (nl >= cfg.min_data_in_leaf)
            & (nr >= cfg.min_data_in_leaf)
            & (hl >= cfg.min_sum_hessian_in_leaf)
            & (hr >= cfg.min_sum_hessian_in_leaf)
        )
        # A split "at bin b" sends bins <= b left; splitting at the last
        # usable bin (or beyond) leaves the right child empty.
        bin_idx = np.arange(self.n_bins)[None, :]
        valid &= bin_idx < (self._usable_bins[:, None] - 1)
        gain = np.where(valid, gain, -np.inf)

        best_flat = int(np.argmax(gain))
        feature, bin_index = divmod(best_flat, self.n_bins)
        best_gain = float(gain[feature, bin_index])
        if best_gain > cfg.min_split_gain:
            leaf.best_gain = best_gain
            leaf.best_feature = int(feature)
            leaf.best_bin = int(bin_index)
        else:
            leaf.best_gain = -np.inf

    def _leaf_value(self, leaf: _Leaf) -> float:
        # Totals are identical across features; use feature 0's histogram.
        g = leaf.hist_g[0].sum()
        h = leaf.hist_h[0].sum()
        return float(-g / (h + self.config.lambda_l2))

    # ------------------------------------------------------------------
    def build(
        self,
        gradients: np.ndarray,
        hessians: np.ndarray,
        rows: np.ndarray | None = None,
    ) -> RegressionTree:
        """Grow one tree on the given gradients/hessians.

        Parameters
        ----------
        gradients, hessians:
            Per-row first and second derivatives of the loss at the current
            model, over the *full* training matrix.
        rows:
            Optional row subset (for bagging); defaults to all rows.
        """
        g = np.asarray(gradients, dtype=np.float64)
        h = np.asarray(hessians, dtype=np.float64)
        if g.shape != (self.n_rows,) or h.shape != (self.n_rows,):
            raise ValueError(
                "gradients and hessians must be 1-D over the training rows"
            )
        if rows is None:
            rows = np.arange(self.n_rows, dtype=np.intp)
        else:
            rows = np.asarray(rows, dtype=np.intp)

        cfg = self.config
        feature: list[int] = [-1]
        threshold: list[float] = [np.nan]
        left: list[int] = [NO_CHILD]
        right: list[int] = [NO_CHILD]
        value: list[float] = [0.0]

        root = _Leaf(0, rows, *self._histograms(rows, g, h), depth=0)
        self._find_best_split(root)
        value[0] = self._leaf_value(root)

        counter = itertools.count()
        heap: list[tuple[float, int, _Leaf]] = []
        if np.isfinite(root.best_gain):
            heapq.heappush(heap, (-root.best_gain, next(counter), root))

        n_leaves = 1
        while heap and n_leaves < cfg.max_leaves:
            _, _, leaf = heapq.heappop(heap)
            if cfg.max_depth is not None and leaf.depth >= cfg.max_depth:
                continue

            f, b = leaf.best_feature, leaf.best_bin
            go_left = self._binned[leaf.rows, f] <= b
            left_rows = leaf.rows[go_left]
            right_rows = leaf.rows[~go_left]
            if len(left_rows) == 0 or len(right_rows) == 0:
                continue  # defensive: histogram said valid, data disagrees

            # Histogram subtraction: compute the smaller child directly,
            # derive the larger one from the parent.
            if len(left_rows) <= len(right_rows):
                small_rows, large_rows, small_is_left = left_rows, right_rows, True
            else:
                small_rows, large_rows, small_is_left = right_rows, left_rows, False
            sg, sh, sn = self._histograms(small_rows, g, h)
            lg, lh, ln = leaf.hist_g - sg, leaf.hist_h - sh, leaf.hist_n - sn

            left_id = len(feature)
            right_id = left_id + 1
            for _ in range(2):
                feature.append(-1)
                threshold.append(np.nan)
                left.append(NO_CHILD)
                right.append(NO_CHILD)
                value.append(0.0)

            feature[leaf.node_id] = f
            threshold[leaf.node_id] = self.binner.threshold_for(f, b)
            left[leaf.node_id] = left_id
            right[leaf.node_id] = right_id
            value[leaf.node_id] = 0.0

            if small_is_left:
                child_l = _Leaf(left_id, small_rows, sg, sh, sn, leaf.depth + 1)
                child_r = _Leaf(right_id, large_rows, lg, lh, ln, leaf.depth + 1)
            else:
                child_l = _Leaf(left_id, large_rows, lg, lh, ln, leaf.depth + 1)
                child_r = _Leaf(right_id, small_rows, sg, sh, sn, leaf.depth + 1)

            for child in (child_l, child_r):
                value[child.node_id] = self._leaf_value(child)
                self._find_best_split(child)
                if np.isfinite(child.best_gain):
                    heapq.heappush(heap, (-child.best_gain, next(counter), child))
            n_leaves += 1

        return RegressionTree(
            feature=np.asarray(feature),
            threshold=np.asarray(threshold),
            left=np.asarray(left),
            right=np.asarray(right),
            value=np.asarray(value),
        )
