"""Array-encoded regression trees.

A tree is stored structure-of-arrays style: internal node ``i`` tests
``x[feature[i]] <= threshold[i]`` (true goes left), leaves carry the
response value.  This layout supports vectorized batch prediction, cheap
serialization, and direct consumption by the QuickScorer encoder, which
needs the set of (feature, threshold) pairs and the leaf order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array_2d

#: Sentinel stored in child arrays for leaf nodes.
NO_CHILD = -1


@dataclass
class RegressionTree:
    """A binary regression tree in structure-of-arrays form.

    Attributes
    ----------
    feature, threshold:
        Split definition per node; undefined (by convention -1 / nan) on
        leaves.
    left, right:
        Child node indices; :data:`NO_CHILD` on leaves.
    value:
        Leaf response; undefined on internal nodes.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.feature)
        for arr_name in ("threshold", "left", "right", "value"):
            if len(getattr(self, arr_name)) != n:
                raise ValueError(
                    f"node arrays must share length, {arr_name} differs"
                )
        self.feature = np.asarray(self.feature, dtype=np.int32)
        self.threshold = np.asarray(self.threshold, dtype=np.float64)
        self.left = np.asarray(self.left, dtype=np.int32)
        self.right = np.asarray(self.right, dtype=np.int32)
        self.value = np.asarray(self.value, dtype=np.float64)
        if n == 0:
            raise ValueError("a tree must have at least one node")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single_leaf(cls, value: float) -> "RegressionTree":
        """A stump-less tree that predicts a constant."""
        return cls(
            feature=np.asarray([-1]),
            threshold=np.asarray([np.nan]),
            left=np.asarray([NO_CHILD]),
            right=np.asarray([NO_CHILD]),
            value=np.asarray([value]),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        return self.left[node] == NO_CHILD

    @property
    def leaf_mask(self) -> np.ndarray:
        """Boolean mask of leaf nodes."""
        return self.left == NO_CHILD

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_mask.sum())

    def leaf_indices(self) -> np.ndarray:
        """Node indices of leaves in left-to-right (in-order) order.

        QuickScorer's bitvectors index leaves by this order.
        """
        order: list[int] = []

        def visit(node: int) -> None:
            if self.is_leaf(node):
                order.append(node)
            else:
                visit(int(self.left[node]))
                visit(int(self.right[node]))

        visit(0)
        return np.asarray(order, dtype=np.int32)

    def internal_nodes(self) -> np.ndarray:
        """Node indices of internal (split) nodes."""
        return np.flatnonzero(~self.leaf_mask).astype(np.int32)

    def depth(self) -> int:
        """Maximum root-to-leaf edge count."""
        depths = np.zeros(self.n_nodes, dtype=np.int32)
        max_depth = 0
        for node in range(self.n_nodes):
            if not self.is_leaf(node):
                for child in (int(self.left[node]), int(self.right[node])):
                    depths[child] = depths[node] + 1
                    max_depth = max(max_depth, int(depths[child]))
        return max_depth

    def split_points(self, n_features: int) -> list[np.ndarray]:
        """Per-feature sorted unique thresholds used by this tree."""
        points: list[list[float]] = [[] for _ in range(n_features)]
        for node in self.internal_nodes():
            points[int(self.feature[node])].append(float(self.threshold[node]))
        return [np.unique(np.asarray(p)) for p in points]

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, features) -> np.ndarray:
        """Vectorized batch prediction."""
        x = check_array_2d(features, "features")
        node = np.zeros(len(x), dtype=np.int32)
        active = ~self.leaf_mask[node]
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            go_left = (
                x[idx, self.feature[cur]] <= self.threshold[cur]
            )
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active[idx] = ~self.leaf_mask[node[idx]]
        return self.value[node]

    def predict_leaf(self, features) -> np.ndarray:
        """Index (into :meth:`leaf_indices` order) of each row's exit leaf."""
        x = check_array_2d(features, "features")
        node = np.zeros(len(x), dtype=np.int32)
        active = ~self.leaf_mask[node]
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            go_left = x[idx, self.feature[cur]] <= self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active[idx] = ~self.leaf_mask[node[idx]]
        leaf_order = self.leaf_indices()
        position = np.full(self.n_nodes, -1, dtype=np.int32)
        position[leaf_order] = np.arange(len(leaf_order), dtype=np.int32)
        return position[node]

    def predict_single(self, x: np.ndarray) -> float:
        """Reference scalar traversal (used to cross-check QuickScorer)."""
        node = 0
        while not self.is_leaf(node):
            if x[self.feature[node]] <= self.threshold[node]:
                node = int(self.left[node])
            else:
                node = int(self.right[node])
        return float(self.value[node])
