"""LambdaMART: gradient boosting with LambdaRank gradients.

The state-of-the-art tree-based ranker the paper trains with LightGBM;
here a thin facade over :class:`GradientBoostingRegressor` with the
LambdaRank objective and an NDCG@10 validation metric, the paper's
quality criterion.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.forest.ensemble import TreeEnsemble
from repro.forest.gbdt import GradientBoostingConfig, GradientBoostingRegressor
from repro.forest.objectives import LambdaRankObjective
from repro.metrics.ranking import mean_ndcg


def ndcg_at_10(dataset: LtrDataset, scores: np.ndarray) -> float:
    """Default validation metric: mean NDCG@10 (higher is better)."""
    return mean_ndcg(dataset, scores, k=10)


class LambdaMartRanker:
    """Trains an ensemble of regression trees with LambdaMART.

    Example
    -------
    >>> from repro.datasets import make_msn30k_like, train_validation_test_split
    >>> data = make_msn30k_like(n_queries=60, docs_per_query=20)
    >>> train, vali, test = train_validation_test_split(data)
    >>> config = GradientBoostingConfig(n_trees=20, max_leaves=16)
    >>> forest = LambdaMartRanker(config).fit(train, vali)
    >>> forest.n_trees
    20
    """

    def __init__(
        self,
        config: GradientBoostingConfig | None = None,
        *,
        sigma: float = 1.0,
        ndcg_at: int | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config or GradientBoostingConfig()
        self.objective = LambdaRankObjective(sigma=sigma, ndcg_at=ndcg_at)
        self._booster = GradientBoostingRegressor(
            self.config, self.objective, seed=seed
        )

    def fit(
        self,
        train: LtrDataset,
        valid: LtrDataset | None = None,
        name: str = "lambdamart",
        init_ensemble: TreeEnsemble | None = None,
    ) -> TreeEnsemble:
        """Train; uses NDCG@10 for early stopping when ``valid`` is given.

        ``init_ensemble`` warm-starts boosting (see
        :meth:`GradientBoostingRegressor.fit`).
        """
        metric = ndcg_at_10 if valid is not None else None
        return self._booster.fit(
            train, valid, metric, name=name, init_ensemble=init_ensemble
        )

    @property
    def history_(self):
        """Training history of the last :meth:`fit` call."""
        return self._booster.history_
