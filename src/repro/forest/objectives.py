"""Second-order boosting objectives.

Two objectives are provided:

* :class:`L2Objective` — plain squared-error regression (MART), used for
  tests and as the regression baseline.
* :class:`LambdaRankObjective` — the listwise LambdaRank gradients that,
  combined with MART, form LambdaMART (Burges): for every within-query
  pair with different grades, a RankNet-style logistic gradient is scaled
  by the |delta NDCG| obtained by swapping the two documents in the current
  ranking.

Both return ``(gradients, hessians)`` of the loss w.r.t. the current
scores, i.e. the tree builder's leaf values ``-G/(H+lambda)`` move scores
downhill in loss.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LtrDataset
from repro.utils.validation import check_array_1d


class L2Objective:
    """Squared error ``0.5 * (score - target)^2``.

    Parameters
    ----------
    targets:
        Optional regression targets; when omitted, the dataset's relevance
        labels are used (classic pointwise LtR regression).
    """

    def __init__(self, targets=None) -> None:
        self._targets = (
            None if targets is None else check_array_1d(targets, "targets")
        )

    def targets_for(self, dataset: LtrDataset) -> np.ndarray:
        if self._targets is not None:
            if len(self._targets) != dataset.n_docs:
                raise ValueError(
                    f"targets has {len(self._targets)} rows, dataset has "
                    f"{dataset.n_docs}"
                )
            return self._targets
        return dataset.labels.astype(np.float64)

    def init_score(self, dataset: LtrDataset) -> float:
        """Best constant model: the target mean."""
        return float(self.targets_for(dataset).mean())

    def gradients(
        self, scores: np.ndarray, dataset: LtrDataset
    ) -> tuple[np.ndarray, np.ndarray]:
        targets = self.targets_for(dataset)
        g = scores - targets
        h = np.ones_like(g)
        return g, h


class LambdaRankObjective:
    """LambdaRank gradients with |delta NDCG| weighting.

    Parameters
    ----------
    sigma:
        Steepness of the RankNet sigmoid.
    ndcg_at:
        Truncation for the delta-NDCG weighting; ``None`` uses the full
        list (LightGBM's default truncation is larger than the query
        sizes used here, so full-list is equivalent).
    min_hessian:
        Lower clamp on per-document hessians, keeping leaf values finite
        on queries with few informative pairs.
    """

    def __init__(
        self,
        sigma: float = 1.0,
        ndcg_at: int | None = None,
        min_hessian: float = 1e-8,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma
        self.ndcg_at = ndcg_at
        self.min_hessian = min_hessian

    def init_score(self, dataset: LtrDataset) -> float:
        """Ranking is translation-invariant; start from zero."""
        return 0.0

    def gradients(
        self, scores: np.ndarray, dataset: LtrDataset
    ) -> tuple[np.ndarray, np.ndarray]:
        g = np.zeros(dataset.n_docs, dtype=np.float64)
        h = np.zeros(dataset.n_docs, dtype=np.float64)
        for qi in range(dataset.n_queries):
            sl = dataset.query_slice(qi)
            self._accumulate_query(
                scores[sl], dataset.labels[sl], g[sl], h[sl]
            )
        np.maximum(h, self.min_hessian, out=h)
        return g, h

    def _accumulate_query(
        self,
        s: np.ndarray,
        y: np.ndarray,
        g_out: np.ndarray,
        h_out: np.ndarray,
    ) -> None:
        n = len(s)
        if n < 2 or y.max() == y.min():
            return  # no informative pairs

        gains = np.exp2(y.astype(np.float64)) - 1.0
        order = np.argsort(-s, kind="stable")
        ranks = np.empty(n, dtype=np.int64)
        ranks[order] = np.arange(n)
        discounts = 1.0 / np.log2(ranks + 2.0)
        if self.ndcg_at is not None:
            discounts = np.where(ranks < self.ndcg_at, discounts, 0.0)

        ideal = self._ideal_dcg(y)
        if ideal == 0.0:
            return

        # Pairwise matrices over the query's documents.
        better = y[:, None] > y[None, :]
        delta_ndcg = (
            np.abs(gains[:, None] - gains[None, :])
            * np.abs(discounts[:, None] - discounts[None, :])
            / ideal
        )
        score_diff = s[:, None] - s[None, :]
        rho = 1.0 / (1.0 + np.exp(self.sigma * score_diff))
        lam = self.sigma * rho * delta_ndcg
        hess = self.sigma * lam * (1.0 - rho)

        lam = np.where(better, lam, 0.0)
        hess = np.where(better, hess, 0.0)

        # For a pair (i better than j): pushing s_i up and s_j down
        # decreases the loss, so dLoss/ds_i gets -lambda and ds_j +lambda.
        g_out -= lam.sum(axis=1)
        g_out += lam.sum(axis=0)
        h_out += hess.sum(axis=1) + hess.sum(axis=0)

    def _ideal_dcg(self, y: np.ndarray) -> float:
        sorted_gains = np.sort(np.exp2(y.astype(np.float64)) - 1.0)[::-1]
        k = len(sorted_gains) if self.ndcg_at is None else min(
            self.ndcg_at, len(sorted_gains)
        )
        discounts = 1.0 / np.log2(np.arange(2, k + 2))
        return float(sorted_gains[:k] @ discounts)
