"""Trained-forest container.

A :class:`TreeEnsemble` is the additive model produced by boosting:
``base_score + sum_t weight_t * tree_t(x)``.  It is what QuickScorer
encodes, what the distillation step uses as a black-box teacher, and what
the augmentation step mines for split points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.forest.tree import RegressionTree
from repro.utils.validation import check_array_2d


@dataclass
class TreeEnsemble:
    """An additive ensemble of regression trees."""

    trees: list[RegressionTree]
    weights: np.ndarray
    base_score: float
    n_features: int
    name: str = "tree-ensemble"
    _split_cache: dict | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if len(self.weights) != len(self.trees):
            raise ValueError(
                f"{len(self.trees)} trees but {len(self.weights)} weights"
            )
        if self.n_features <= 0:
            raise ValueError(f"n_features must be positive, got {self.n_features}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        return len(self.trees)

    @property
    def max_leaves(self) -> int:
        """Largest leaf count of any member tree (QuickScorer word sizing)."""
        return max((t.n_leaves for t in self.trees), default=0)

    def total_nodes(self) -> int:
        return sum(t.n_nodes for t in self.trees)

    def describe(self) -> str:
        """Short description in the paper's "x trees, y leaves" notation."""
        return f"{self.n_trees} trees, {self.max_leaves} leaves"

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, features) -> np.ndarray:
        """Score a batch of feature rows."""
        x = check_array_2d(features, "features")
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        out = np.full(len(x), self.base_score, dtype=np.float64)
        for tree, w in zip(self.trees, self.weights):
            out += w * tree.predict(x)
        return out

    def staged_predict(self, features, stages) -> dict[int, np.ndarray]:
        """Predictions of the first-``n`` prefixes for every n in ``stages``.

        Boosted models are anytime models: the first ``n`` trees are a
        valid smaller ensemble, which is how the Large/Mid/Small forests of
        Table 1 relate to each other.
        """
        x = check_array_2d(features, "features")
        wanted = sorted(set(int(s) for s in stages))
        if any(s < 0 or s > self.n_trees for s in wanted):
            raise ValueError(f"stages must be in [0, {self.n_trees}]")
        out: dict[int, np.ndarray] = {}
        acc = np.full(len(x), self.base_score, dtype=np.float64)
        next_i = 0
        for stage in wanted:
            while next_i < stage:
                acc += self.weights[next_i] * self.trees[next_i].predict(x)
                next_i += 1
            out[stage] = acc.copy()
        return out

    def truncate(self, n_trees: int, name: str | None = None) -> "TreeEnsemble":
        """The prefix ensemble with the first ``n_trees`` trees."""
        if not 0 < n_trees <= self.n_trees:
            raise ValueError(
                f"n_trees must be in (0, {self.n_trees}], got {n_trees}"
            )
        return TreeEnsemble(
            trees=self.trees[:n_trees],
            weights=self.weights[:n_trees].copy(),
            base_score=self.base_score,
            n_features=self.n_features,
            name=name or f"{self.name}[:{n_trees}]",
        )

    # ------------------------------------------------------------------
    # Split points (distillation augmentation, QuickScorer encoding)
    # ------------------------------------------------------------------
    def split_points(self) -> list[np.ndarray]:
        """Per-feature sorted unique thresholds across the whole forest."""
        if self._split_cache is not None and self._split_cache.get(
            "n"
        ) == self.n_trees:
            return self._split_cache["points"]
        per_feature: list[list[np.ndarray]] = [[] for _ in range(self.n_features)]
        for tree in self.trees:
            for f, pts in enumerate(tree.split_points(self.n_features)):
                if pts.size:
                    per_feature[f].append(pts)
        points = [
            np.unique(np.concatenate(p)) if p else np.empty(0)
            for p in per_feature
        ]
        self._split_cache = {"n": self.n_trees, "points": points}
        return points

    def learning_curve(self, dataset, metric, stages=None) -> list[tuple[int, float]]:
        """Metric value of every prefix ensemble (the boosting curve).

        Parameters
        ----------
        dataset:
            An :class:`~repro.datasets.base.LtrDataset` to evaluate on.
        metric:
            ``metric(dataset, scores) -> float``.
        stages:
            Prefix sizes to evaluate; defaults to ~10 geometric steps.

        Returns ``(n_trees, metric)`` pairs — the efficiency/effectiveness
        curve a deployment sweeps when choosing a forest size (the green
        frontiers of Figs. 12-13).
        """
        if stages is None:
            stages = sorted(
                {
                    max(1, int(round(self.n_trees * f)))
                    for f in np.linspace(0.1, 1.0, 10)
                }
            )
        staged = self.staged_predict(dataset.features, stages)
        return [(n, float(metric(dataset, staged[n]))) for n in sorted(staged)]

    def feature_importance(self, kind: str = "split") -> np.ndarray:
        """Per-feature importance over the whole forest.

        ``kind="split"`` counts how many internal nodes test each feature
        (LightGBM's default importance); the distribution over the
        handcrafted features is what the paper's first-layer pruning
        implicitly selects from ("the sparsification selects just the
        essential combinations of input features", Section 5.2).
        """
        if kind != "split":
            raise ValueError(f"unsupported importance kind {kind!r}")
        counts = np.zeros(self.n_features, dtype=np.float64)
        for tree in self.trees:
            nodes = tree.internal_nodes()
            if len(nodes):
                counts += np.bincount(
                    tree.feature[nodes], minlength=self.n_features
                )
        return counts

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "base_score": self.base_score,
            "n_features": self.n_features,
            "weights": self.weights.tolist(),
            "trees": [
                {
                    "feature": t.feature.tolist(),
                    "threshold": [
                        None if np.isnan(v) else float(v) for v in t.threshold
                    ],
                    "left": t.left.tolist(),
                    "right": t.right.tolist(),
                    "value": t.value.tolist(),
                }
                for t in self.trees
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TreeEnsemble":
        """Inverse of :meth:`to_dict`."""
        trees = [
            RegressionTree(
                feature=np.asarray(td["feature"]),
                threshold=np.asarray(
                    [np.nan if v is None else v for v in td["threshold"]]
                ),
                left=np.asarray(td["left"]),
                right=np.asarray(td["right"]),
                value=np.asarray(td["value"]),
            )
            for td in data["trees"]
        ]
        return cls(
            trees=trees,
            weights=np.asarray(data["weights"]),
            base_score=float(data["base_score"]),
            n_features=int(data["n_features"]),
            name=data.get("name", "tree-ensemble"),
        )

    def save(self, path) -> None:
        """Persist as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path) -> "TreeEnsemble":
        """Load an ensemble previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
