"""Random-search hyper-parameter tuning.

The paper tunes LambdaMART with HyperOpt over learning rate, max depth,
``min_sum_hessian_in_leaf`` and ``min_data_in_leaf`` (Section 6.1).
HyperOpt is unavailable offline, so this module provides a seeded random
search over the same space — the standard strong baseline for
low-dimensional hyper-parameter optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.base import LtrDataset
from repro.forest.gbdt import GradientBoostingConfig
from repro.forest.lambdamart import LambdaMartRanker, ndcg_at_10
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SearchSpace:
    """Log-uniform / discrete ranges for the tuned hyper-parameters."""

    learning_rate: tuple[float, float] = (0.02, 0.3)
    max_depth: tuple[int, ...] = (4, 6, 8, 10, 12)
    min_data_in_leaf: tuple[int, ...] = (5, 10, 20, 50, 100)
    min_sum_hessian_in_leaf: tuple[float, float] = (1e-4, 10.0)

    def sample(self, rng: np.random.Generator) -> dict:
        lr_lo, lr_hi = self.learning_rate
        h_lo, h_hi = self.min_sum_hessian_in_leaf
        return {
            "learning_rate": float(
                np.exp(rng.uniform(np.log(lr_lo), np.log(lr_hi)))
            ),
            "max_depth": int(rng.choice(self.max_depth)),
            "min_data_in_leaf": int(rng.choice(self.min_data_in_leaf)),
            "min_sum_hessian_in_leaf": float(
                np.exp(rng.uniform(np.log(h_lo), np.log(h_hi)))
            ),
        }


@dataclass
class TuningResult:
    """Best configuration found and the full evaluation trace."""

    best_config: GradientBoostingConfig
    best_metric: float
    trials: list[tuple[dict, float]]


class RandomSearchTuner:
    """Random search over :class:`SearchSpace` maximizing NDCG@10.

    Parameters
    ----------
    base_config:
        Fixed parameters (tree count, leaves) the search does not touch.
    n_trials:
        Number of random configurations to train and evaluate.
    """

    def __init__(
        self,
        base_config: GradientBoostingConfig,
        *,
        n_trials: int = 10,
        space: SearchSpace | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        self.base_config = base_config
        self.n_trials = n_trials
        self.space = space or SearchSpace()
        self._rng = ensure_rng(seed)

    def tune(self, train: LtrDataset, valid: LtrDataset) -> TuningResult:
        """Run the search, returning the best configuration."""
        trials: list[tuple[dict, float]] = []
        best_metric = float("-inf")
        best_config = self.base_config
        for _ in range(self.n_trials):
            params = self.space.sample(self._rng)
            config = replace(self.base_config, **params)
            forest = LambdaMartRanker(config, seed=self._rng).fit(train, valid)
            metric = ndcg_at_10(valid, forest.predict(valid.features))
            trials.append((params, metric))
            if metric > best_metric:
                best_metric = metric
                best_config = config
        return TuningResult(
            best_config=best_config, best_metric=best_metric, trials=trials
        )
