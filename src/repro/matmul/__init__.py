"""High-performance matrix multiplication, simulated.

Reproduces Section 4 of the paper on a modeled i9-9900K:

* :mod:`repro.matmul.csr` — the Compressed Sparse Row format (Fig. 7) with
  the structural queries the sparse predictor needs (active rows/columns)
  and the M-axis splitting LIBXSMM uses to bound generated code size.
* :mod:`repro.matmul.blocks` — block-CSR (dense r×c tiles addressed
  CSR-style) plus the fill-measuring ``regroup_to_blocks`` transform, so
  SpMM over structured pruning vectorizes over contiguous blocks.
* :mod:`repro.matmul.onednn` — oneDNN's small-shape adaptation of the
  Goto blocking parameters (the ``rnd_up`` rules of Section 4.2).
* :mod:`repro.matmul.dense` — a blocked Goto-algorithm executor that
  really computes C while charging simulated nanoseconds for packing,
  micro-kernel work and C traffic; its GFLOPS surface reproduces the
  three k-zones of Fig. 6.
* :mod:`repro.matmul.sparse` — a LIBXSMM-style sparse-dense executor
  (Alg. 1 + the broadcast/FMA micro-kernel of Fig. 9) with an LRU cache
  simulation of B-row reuse.
* :mod:`repro.matmul.mkl` — the MKL baseline cost model of Table 3.
"""

from repro.matmul.blocks import BlockCsrMatrix, regroup_to_blocks
from repro.matmul.csr import CsrMatrix
from repro.matmul.formats import CooMatrix, CscMatrix, csr_to_coo, csr_to_csc
from repro.matmul.onednn import OneDnnParams, effective_params, rnd_up
from repro.matmul.dense import DenseGemmExecutor, DmmReport
from repro.matmul.sparse import SparseGemmExecutor, SdmmReport
from repro.matmul.mkl import MklSdmmCostModel

__all__ = [
    "BlockCsrMatrix",
    "CsrMatrix",
    "CooMatrix",
    "CscMatrix",
    "csr_to_coo",
    "csr_to_csc",
    "OneDnnParams",
    "effective_params",
    "rnd_up",
    "DenseGemmExecutor",
    "DmmReport",
    "SparseGemmExecutor",
    "SdmmReport",
    "MklSdmmCostModel",
    "regroup_to_blocks",
]
