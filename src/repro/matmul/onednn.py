"""oneDNN blocking parameters and small-shape adaptation.

oneDNN (the BLAS-like backend of PyTorch/TensorFlow the paper studies)
uses the Goto blocking parameters below for AVX2 CPUs and, for sequential
execution on small shapes, *adapts* them with the ``rnd_up`` rule of
Section 4.2:

    m_c_eff = rnd_up(min(max(m, m_r), m_c), m_r)

so the effective block is never smaller than a micro-tile, never larger
than the default block, and always a multiple of the micro-tile (avoiding
undersized panels in the micro-kernel).  The same rule applies on the n
and k axes with their respective micro parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OneDnnParams:
    """Goto blocking parameters (defaults: oneDNN on AVX2, Section 4.2)."""

    m_c: int = 10000
    n_c: int = 384
    k_c: int = 192
    m_r: int = 24
    n_r: int = 4

    def __post_init__(self) -> None:
        for name in ("m_c", "n_c", "k_c", "m_r", "n_r"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.m_r > self.m_c or self.n_r > self.n_c:
            raise ValueError("micro-tile cannot exceed the macro block")


def rnd_up(a: int, b: int) -> int:
    """Round ``a`` up to the next multiple of ``b`` (Section 4.2)."""
    if b <= 0:
        raise ValueError(f"b must be positive, got {b}")
    if a <= 0:
        return b
    return -(-a // b) * b


def effective_params(
    m: int, n: int, k: int, params: OneDnnParams | None = None
) -> OneDnnParams:
    """Blocking parameters oneDNN actually uses for an ``m x k @ k x n``.

    Applies the small-shape refinements: each macro block is clamped to
    the problem size (rounded up to the micro-tile on m and n; k has no
    micro granularity beyond 1, so it is simply clamped).
    """
    p = params or OneDnnParams()
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {(m, k, n)}")
    m_c_eff = rnd_up(min(max(m, p.m_r), p.m_c), p.m_r)
    n_c_eff = rnd_up(min(max(n, p.n_r), p.n_c), p.n_r)
    k_c_eff = min(max(k, 1), p.k_c)
    return OneDnnParams(
        m_c=m_c_eff, n_c=n_c_eff, k_c=k_c_eff, m_r=p.m_r, n_r=p.n_r
    )


def packing_would_dominate(m: int, n: int, k: int) -> bool:
    """oneDNN's heuristic: skip cache-aware packing on tiny products.

    When the O(mk + kn) packing traffic is comparable to the O(mnk)
    compute, oneDNN switches to a copy-free kernel (Section 4.2).  The
    crossover is modeled as packing bytes exceeding FLOPs.
    """
    pack_bytes = 4 * (m * k + k * n)
    flops = 2 * m * n * k
    return pack_bytes >= flops
