"""LIBXSMM-style sparse-dense matrix multiplication with simulated timing.

Implements the kernel of Section 4.3 (Algorithm 1 with the Fig. 9
micro-kernel): the dense operand B is viewed as ``k x N_b x n_b`` with
``n_b`` = the SIMD width (8 fp32 lanes on AVX2); for every *active* row i
of the CSR operand A, the C row is loaded into ``N_b`` vector registers,
then for every non-zero ``x = A[i, j]`` the scalar is broadcast and
``N_b`` fused multiply-adds accumulate ``x * B[j]`` into the registers;
finally the C row is stored once.

The executor charges simulated nanoseconds per event:

* C row load + store — once per active row (``L_c`` in Eq. 5);
* broadcast + ``N_b`` FMAs — once per non-zero (``L_a``);
* B row load — through an LRU cache simulation sized like the L2 cache,
  so a row is expensive only the *first* time one of its columns is
  touched (``L_b * |a_c|``), and the predictor's assumption "B stays
  resident" visibly breaks for large N, as the paper observes for
  N >= 128.

LIBXSMM JITs one instruction sequence per matrix; when the non-zero count
would exceed the code-size limit the matrix is split along M
(``CsrMatrix.split_rows``) and each part multiplied separately, as the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.hardware.cache import CacheSimulator
from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.matmul.csr import CsrMatrix
from repro.utils.validation import check_array_2d


@dataclass(frozen=True)
class SparseTimingModel:
    """Calibrated per-event costs of the sparse kernel (nanoseconds).

    Calibration targets Table 4 of the paper (e.g. a 400x136 matrix at
    99.5% sparsity with N = 64 multiplies in ~0.9 µs) and its N-scaling:
    every per-vector cost scales with ``N_b = N / n_b``.
    """

    load_c_vec_ns: float = 0.14
    store_c_vec_ns: float = 0.14
    broadcast_ns: float = 0.20
    fma_vec_ns: float = 0.12
    load_b_vec_miss_ns: float = 0.24
    load_b_vec_hit_ns: float = 0.09
    jit_call_overhead_ns: float = 15.0
    #: LIBXSMM aborts code generation past this many JIT-ed FMA groups.
    jit_max_nnz: int = 16384


@dataclass(frozen=True)
class SdmmReport:
    """Event counts and simulated time of one sparse multiplication."""

    m: int
    k: int
    n: int
    n_vectors: int
    nnz: int
    active_rows: int
    active_cols: int
    b_row_misses: int
    b_row_hits: int
    n_kernel_calls: int
    time_c_ns: float
    time_a_ns: float
    time_b_ns: float
    overhead_ns: float

    @property
    def time_ns(self) -> float:
        return self.time_c_ns + self.time_a_ns + self.time_b_ns + self.overhead_ns

    @property
    def time_us(self) -> float:
        return self.time_ns / 1000.0

    @property
    def useful_flops(self) -> int:
        """2 * nnz * N FLOPs (the paper's reduced-operation count)."""
        return 2 * self.nnz * self.n


class SparseGemmExecutor:
    """Row-wise broadcast/FMA SDMM with cache-aware simulated timing."""

    def __init__(
        self,
        cpu: CpuSpec = I9_9900K,
        timing: SparseTimingModel | None = None,
        *,
        b_cache_bytes: int | None = None,
    ) -> None:
        self.cpu = cpu
        self.timing = timing or SparseTimingModel()
        # B-row reuse effectively lives in L2: the paper's predictor
        # assumption holds up to N = 64 and breaks at N >= 128, which for
        # k ~ 500 is exactly the L2 capacity boundary.
        self.b_cache_bytes = (
            cpu.l2.size_bytes if b_cache_bytes is None else b_cache_bytes
        )

    # ------------------------------------------------------------------
    def multiply(
        self, a: CsrMatrix, b, *, compute: bool = True
    ) -> tuple[np.ndarray | None, SdmmReport]:
        """``C = A @ B`` with A sparse in CSR and B dense ``(k, N)``."""
        if not isinstance(a, CsrMatrix):
            a = CsrMatrix.from_dense(a)
        b = check_array_2d(b, "b")
        m, k = a.shape
        if b.shape[0] != k:
            raise ValueError(f"B has {b.shape[0]} rows, expected {k}")
        n = b.shape[1]

        parts = self._split_for_jit(a)
        lanes = self.cpu.simd_lanes_f32
        n_vectors = -(-n // lanes)  # N_b, padded to the SIMD width

        cache = CacheSimulator(self.b_cache_bytes, line_bytes=64)
        t = self.timing
        nnz_total = 0
        rows_total = 0
        misses = 0
        hits = 0
        c = np.zeros((m, n), dtype=np.float64) if compute else None
        row_offset = 0
        # Lightweight timing hook: a no-op unless the process-wide tracer
        # is enabled (sweeps call this thousands of times).
        with obs.span("matmul.sparse", m=m, n=n, k=k, nnz=a.nnz):
            for part in parts:
                pm, _ = part.shape
                for i in part.active_rows():
                    rows_total += 1
                    cols, vals = part.row(int(i))
                    nnz_total += len(cols)
                    for j in cols:
                        # One tag per B row: address j * row_bytes.
                        was_hit = cache.contains(int(j) * n * 4)
                        cache.access(int(j) * n * 4, n * 4)
                        if was_hit:
                            hits += 1
                        else:
                            misses += 1
                    if compute:
                        c[row_offset + i] = vals @ b[cols]
                row_offset += pm

        active_cols = a.n_active_cols
        time_c = rows_total * n_vectors * (t.load_c_vec_ns + t.store_c_vec_ns)
        time_a = nnz_total * (t.broadcast_ns + n_vectors * t.fma_vec_ns)
        time_b = n_vectors * (
            misses * t.load_b_vec_miss_ns + hits * t.load_b_vec_hit_ns
        )
        overhead = len(parts) * t.jit_call_overhead_ns
        return c, SdmmReport(
            m=m,
            k=k,
            n=n,
            n_vectors=n_vectors,
            nnz=nnz_total,
            active_rows=rows_total,
            active_cols=active_cols,
            b_row_misses=misses,
            b_row_hits=hits,
            n_kernel_calls=len(parts),
            time_c_ns=float(time_c),
            time_a_ns=float(time_a),
            time_b_ns=float(time_b),
            overhead_ns=float(overhead),
        )

    def _split_for_jit(self, a: CsrMatrix) -> list[CsrMatrix]:
        limit = self.timing.jit_max_nnz
        if a.nnz <= limit:
            return [a]
        n_parts = min(a.shape[0], -(-a.nnz // limit))
        return a.split_rows(n_parts)

    def measure_time_us(self, a: CsrMatrix, n: int, seed: int = 0) -> float:
        """Simulated µs to multiply ``a`` with a random ``(k, n)`` B."""
        rng = np.random.default_rng(seed)
        b = rng.normal(size=(a.shape[1], n))
        _, report = self.multiply(a, b, compute=False)
        return report.time_us
