"""Additional sparse-matrix formats: COO and CSC.

Section 4.3 surveys the common sparse formats — Compressed Sparse Row
(CSR, the one LIBXSMM consumes, implemented in
:mod:`repro.matmul.csr`), Compressed Sparse Column (CSC) and the
Coordinate list (COO).  This module completes the set with lossless
conversions between all three, so the library can ingest matrices in
whatever layout a caller has.

CSR remains the computation format: both alternatives convert to it for
multiplication, mirroring the paper's observation that CSR "naturally
fits" the sparse-dense kernel's row-wise access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matmul.csr import CsrMatrix
from repro.utils.validation import check_array_1d


@dataclass
class CooMatrix:
    """Coordinate-list format: parallel (row, col, value) arrays."""

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.rows = check_array_1d(self.rows, "rows", dtype=np.int64)
        self.cols = check_array_1d(self.cols, "cols", dtype=np.int64)
        self.values = check_array_1d(self.values, "values")
        if not len(self.rows) == len(self.cols) == len(self.values):
            raise ValueError("rows, cols and values must share length")
        m, k = self.shape
        if m <= 0 or k <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if len(self.rows) and (
            self.rows.min() < 0
            or self.rows.max() >= m
            or self.cols.min() < 0
            or self.cols.max() >= k
        ):
            raise ValueError("coordinate out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @classmethod
    def from_dense(cls, dense) -> "CooMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return cls(
            rows=rows, cols=cols, values=dense[rows, cols], shape=dense.shape
        )

    def to_csr(self) -> CsrMatrix:
        """Convert to CSR (entries sorted by row, then column)."""
        m, k = self.shape
        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        counts = np.bincount(rows, minlength=m)
        row_ptr = np.concatenate(([0], np.cumsum(counts)))
        return CsrMatrix(
            values=self.values[order],
            col_index=self.cols[order],
            row_ptr=row_ptr,
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out


@dataclass
class CscMatrix:
    """Compressed Sparse Column: CSR of the transpose."""

    values: np.ndarray
    row_index: np.ndarray
    col_ptr: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.values = check_array_1d(self.values, "values")
        self.row_index = check_array_1d(self.row_index, "row_index", dtype=np.int64)
        self.col_ptr = check_array_1d(self.col_ptr, "col_ptr", dtype=np.int64)
        m, k = self.shape
        if m <= 0 or k <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if len(self.col_ptr) != k + 1:
            raise ValueError(f"col_ptr must have k+1={k + 1} entries")
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != len(self.values):
            raise ValueError("col_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.col_ptr) < 0):
            raise ValueError("col_ptr must be non-decreasing")
        if len(self.row_index) and (
            self.row_index.min() < 0 or self.row_index.max() >= m
        ):
            raise ValueError("row_index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    @classmethod
    def from_dense(cls, dense) -> "CscMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        transposed = CsrMatrix.from_dense(dense.T)
        return cls(
            values=transposed.values,
            row_index=transposed.col_index,
            col_ptr=transposed.row_ptr,
            shape=dense.shape,
        )

    def to_csr(self) -> CsrMatrix:
        return CsrMatrix.from_dense(self.to_dense())

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        out = np.zeros((m, k), dtype=np.float64)
        for j in range(k):
            lo, hi = self.col_ptr[j], self.col_ptr[j + 1]
            out[self.row_index[lo:hi], j] = self.values[lo:hi]
        return out

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j``."""
        lo, hi = self.col_ptr[j], self.col_ptr[j + 1]
        return self.row_index[lo:hi], self.values[lo:hi]


def csr_to_coo(csr: CsrMatrix) -> CooMatrix:
    """Expand a CSR matrix to coordinate form."""
    m, _ = csr.shape
    row_counts = np.diff(csr.row_ptr)
    rows = np.repeat(np.arange(m, dtype=np.int64), row_counts)
    return CooMatrix(
        rows=rows,
        cols=csr.col_index.copy(),
        values=csr.values.copy(),
        shape=csr.shape,
    )


def csr_to_csc(csr: CsrMatrix) -> CscMatrix:
    """Transpose-compress a CSR matrix into CSC."""
    return CscMatrix.from_dense(csr.to_dense())
