"""MKL sparse-dense baseline cost model.

Intel MKL's ``mkl_sparse_s_mm`` is the closed-source reference the paper
compares LIBXSMM against (Table 3).  MKL is a general-purpose routine: it
cannot JIT-specialize on the non-zero pattern, so on the small, very
sparse, asymmetric first-layer matrices of the paper's networks it pays

* a fixed dispatch/analysis overhead per call, and
* generic (indirection-heavy) per-non-zero work that does not hard-wire
  loads the way LIBXSMM's generated code does.

Calibrated on Table 3 (batch N = 64): e.g. 400x136 at 99.6% sparsity runs
in 3.1 µs under MKL vs 1.2 µs under LIBXSMM; 50x136 at 96.8% in 0.7 µs vs
0.2 µs — LIBXSMM wins by ~2x or more across the studied spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.matmul.csr import CsrMatrix


@dataclass(frozen=True)
class MklSdmmCostModel:
    """Analytic µs model of MKL sparse-dense multiplication."""

    call_overhead_ns: float = 500.0
    row_ns: float = 2.0
    nnz_vec_ns: float = 0.45
    col_vec_ns: float = 0.55
    cpu: CpuSpec = I9_9900K

    def time_us(
        self,
        *,
        m: int,
        k: int,
        n: int,
        nnz: int,
        active_rows: int | None = None,
        active_cols: int | None = None,
    ) -> float:
        """Predicted µs for an ``m x k`` CSR times ``k x n`` dense."""
        if min(m, k, n) <= 0 or nnz < 0:
            raise ValueError("dimensions must be positive and nnz >= 0")
        rows = m if active_rows is None else active_rows
        cols = min(k, nnz) if active_cols is None else active_cols
        n_vec = -(-n // self.cpu.simd_lanes_f32)
        total_ns = (
            self.call_overhead_ns
            + rows * self.row_ns
            + nnz * n_vec * self.nnz_vec_ns
            + cols * n_vec * self.col_vec_ns
        )
        return total_ns / 1000.0

    def time_for(self, a: CsrMatrix, n: int) -> float:
        """Predicted µs for a concrete CSR matrix and batch size."""
        m, k = a.shape
        return self.time_us(
            m=m,
            k=k,
            n=n,
            nnz=a.nnz,
            active_rows=a.n_active_rows,
            active_cols=a.n_active_cols,
        )
