"""Block-structured Compressed Sparse Row matrices.

The paper's sparse micro-kernels (Section 4.3) win over dense GEMM only
when pruning leaves hardware-friendly structure: LIBXSMM JIT-unrolls
over the stored non-zeros, so scattered singletons waste the SIMD lanes
a dense ``r x c`` tile would fill.  :class:`BlockCsrMatrix` stores a
sparse ``m x k`` matrix as dense ``r x c`` tiles addressed CSR-style —
``values`` holds one dense tile per stored block, ``col_blocks`` its
block column, and ``row_ptr`` spans block *rows* — so SpMM vectorizes
over contiguous blocks instead of gathering one scalar at a time.

:func:`regroup_to_blocks` converts a scalar :class:`CsrMatrix`, measures
the achieved *block fill* (true non-zeros over stored cells), and falls
back to the scalar matrix when fill is too low: regrouping an
unstructured-pruned matrix stores mostly zeros and would be slower than
scalar CSR, whereas column-block pruning
(:class:`repro.pruning.ColumnBlockPruner`) yields fill ~1.0 by
construction.

Bit contract: :meth:`BlockCsrMatrix.matmul` expands the stored tiles to
a scalar CSR *with explicit zeros* and multiplies through the same
compiled kernel :meth:`CsrMatrix.matmul` uses.  For finite ``B`` the
result is bit-identical to the zero-skipping scalar reference: the
inserted terms are exact signed zeros, and under round-to-nearest an
accumulator that starts at ``+0.0`` never becomes ``-0.0``, so adding
``±0.0`` in any position leaves every partial sum's bits unchanged.
(Non-finite ``B`` entries would turn ``0 * inf`` into NaN; the runtime
validates features are finite before they reach a kernel.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matmul.csr import CsrMatrix
from repro.utils.validation import check_array_2d


def _check_block_shape(block_shape) -> tuple[int, int]:
    try:
        r, c = (int(v) for v in block_shape)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"block_shape must be an (r, c) pair, got {block_shape!r}") from exc
    if r <= 0 or c <= 0:
        raise ValueError(f"block_shape must be positive, got {(r, c)}")
    return r, c


@dataclass
class BlockCsrMatrix:
    """A block-CSR sparse matrix of logical shape ``(m, k)``.

    ``values[b]`` is the dense ``r x c`` tile at block row
    ``i`` (where ``row_ptr[i] <= b < row_ptr[i+1]``) and block column
    ``col_blocks[b]``; tiles overlapping the logical edge are
    zero-padded.  Block columns are stored ascending within each block
    row, mirroring scalar CSR storage order.
    """

    values: np.ndarray
    col_blocks: np.ndarray
    row_ptr: np.ndarray
    shape: tuple[int, int]
    block_shape: tuple[int, int]
    #: Lazily-built scalar CSR twin (explicit zeros kept) backing matmul.
    _expanded: CsrMatrix | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.col_blocks = np.asarray(self.col_blocks, dtype=np.int64)
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        self.block_shape = _check_block_shape(self.block_shape)
        m, k = self.shape
        r, c = self.block_shape
        if m <= 0 or k <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.values.ndim != 3 or self.values.shape[1:] != (r, c):
            raise ValueError(
                f"values must have shape (n_blocks, {r}, {c}), got {self.values.shape}"
            )
        if len(self.row_ptr) != self.n_block_rows + 1:
            raise ValueError(
                f"row_ptr must have {self.n_block_rows + 1} entries, got {len(self.row_ptr)}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.values):
            raise ValueError("row_ptr must start at 0 and end at n_blocks")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_blocks) != len(self.values):
            raise ValueError("values and col_blocks must have equal length")
        if len(self.col_blocks) and (
            self.col_blocks.min() < 0 or self.col_blocks.max() >= self.n_block_cols
        ):
            raise ValueError("col_blocks entries out of range")
        for i in range(self.n_block_rows):
            lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
            if np.any(np.diff(self.col_blocks[lo:hi]) <= 0):
                raise ValueError(f"col_blocks must be strictly ascending in block row {i}")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense, block_shape) -> "BlockCsrMatrix":
        """Tile a dense matrix, keeping only blocks with a non-zero."""
        a = check_array_2d(dense, "dense")
        r, c = _check_block_shape(block_shape)
        m, k = a.shape
        mb, kb = -(-m // r), -(-k // c)
        padded = np.zeros((mb * r, kb * c), dtype=np.float64)
        padded[:m, :k] = a
        # (mb, kb, r, c): tiles addressable by (block row, block col).
        tiles = padded.reshape(mb, r, kb, c).transpose(0, 2, 1, 3)
        keep = np.any(tiles != 0.0, axis=(2, 3))
        counts = keep.sum(axis=1)
        rows, cols = np.nonzero(keep)  # row-major: ascending cols per row
        return cls(
            values=np.ascontiguousarray(tiles[rows, cols]),
            col_blocks=cols.astype(np.int64),
            row_ptr=np.concatenate(([0], np.cumsum(counts))).astype(np.int64),
            shape=(m, k),
            block_shape=(r, c),
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the logical dense equivalent."""
        m, k = self.shape
        r, c = self.block_shape
        out = np.zeros((self.n_block_rows * r, self.n_block_cols * c), dtype=np.float64)
        for i in range(self.n_block_rows):
            for b in range(self.row_ptr[i], self.row_ptr[i + 1]):
                j = self.col_blocks[b]
                out[i * r : (i + 1) * r, j * c : (j + 1) * c] = self.values[b]
        return out[:m, :k]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_block_rows(self) -> int:
        return -(-self.shape[0] // self.block_shape[0])

    @property
    def n_block_cols(self) -> int:
        return -(-self.shape[1] // self.block_shape[1])

    @property
    def n_blocks(self) -> int:
        """Number of stored tiles."""
        return len(self.values)

    @property
    def stored_cells(self) -> int:
        """Cells the stored tiles occupy (including padding zeros)."""
        return self.n_blocks * self.block_shape[0] * self.block_shape[1]

    @property
    def nnz(self) -> int:
        """True non-zeros inside the stored tiles."""
        return int(np.count_nonzero(self.values))

    @property
    def fill(self) -> float:
        """True non-zeros over stored cells — the vectorization payoff.

        1.0 means every stored cell does useful work (perfect blocking);
        low fill means the blocks mostly multiply zeros and scalar CSR
        would be cheaper.
        """
        stored = self.stored_cells
        return self.nnz / stored if stored else 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of logical entries that are zero."""
        m, k = self.shape
        return 1.0 - self.nnz / (m * k)

    @property
    def block_sparsity(self) -> float:
        """Fraction of tile positions holding no stored block."""
        total = self.n_block_rows * self.n_block_cols
        return 1.0 - self.n_blocks / total if total else 0.0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def expanded_csr(self) -> CsrMatrix:
        """The scalar CSR twin with the tiles' zeros stored explicitly.

        Cells padding past the logical edge are dropped (they are zero
        by construction and would be out of range); cells *inside* the
        logical shape keep their stored value even when zero, preserving
        one contiguous run per (row, block) for the compiled kernel.
        """
        if self._expanded is None:
            m, k = self.shape
            r, c = self.block_shape
            rows: list[np.ndarray] = [np.empty(0, dtype=np.float64)] * m
            cols: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * m
            for i in range(self.n_block_rows):
                lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
                if hi == lo:
                    continue
                # Column indices of this block row's tiles, edge-clipped.
                span = (self.col_blocks[lo:hi, None] * c + np.arange(c)).ravel()
                in_range = span < k
                span = span[in_range]
                # (r, stored tiles * c) values in ascending column order.
                band = self.values[lo:hi].transpose(1, 0, 2).reshape(r, -1)[:, in_range]
                for dr in range(min(r, m - i * r)):
                    rows[i * r + dr] = band[dr]
                    cols[i * r + dr] = span
            counts = [len(v) for v in rows]
            self._expanded = CsrMatrix(
                values=np.concatenate(rows) if any(counts) else np.empty(0),
                col_index=np.concatenate(cols) if any(counts) else np.empty(0, dtype=np.int64),
                row_ptr=np.concatenate(([0], np.cumsum(counts))),
                shape=self.shape,
            )
        return self._expanded

    def matmul(self, dense_b) -> np.ndarray:
        """SDMM ``C = A @ B`` through the expanded-CSR compiled kernel.

        Bit-identical to ``CsrMatrix.from_dense(self.to_dense())
        .matmul_reference(B)`` for finite ``B`` (see module docstring).
        """
        return self.expanded_csr().matmul(dense_b)

    def matmul_reference(self, dense_b) -> np.ndarray:
        """Reference SDMM: the scalar per-row loop over expanded storage."""
        return self.expanded_csr().matmul_reference(dense_b)


def regroup_to_blocks(
    matrix: CsrMatrix,
    block_shape=(64, 8),
    *,
    min_fill: float = 0.5,
) -> BlockCsrMatrix | CsrMatrix:
    """Regroup a scalar CSR matrix into dense tiles, or refuse.

    Returns a :class:`BlockCsrMatrix` when the achieved block fill
    reaches ``min_fill``, else the original scalar matrix — blocking an
    unstructured sparsity pattern stores mostly zeros, so the scalar
    kernel stays faster and the caller keeps CSR.
    """
    if not isinstance(matrix, CsrMatrix):
        raise TypeError(f"expected CsrMatrix, got {type(matrix).__name__}")
    if not 0.0 <= min_fill <= 1.0:
        raise ValueError(f"min_fill must be in [0, 1], got {min_fill}")
    blocked = BlockCsrMatrix.from_dense(matrix.to_dense(), block_shape)
    if blocked.n_blocks == 0 or blocked.fill < min_fill:
        return matrix
    return blocked
