"""Compressed Sparse Row matrices.

The CSR format (Fig. 7 of the paper) stores a sparse ``m x k`` matrix as
three arrays: ``values`` (the non-zeros), ``col_index`` (their column),
and ``row_ptr`` of length ``m + 1`` with ``row_ptr[i+1] - row_ptr[i]``
non-zeros in row ``i``.  Besides conversion and multiplication, this class
exposes the structural quantities the sparse time predictor consumes:
``nnz``, the active rows ``|a_r|`` and the active columns ``|a_c|``
(Section 4.4, Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_array_2d

try:  # SpMM fast path; the container ships scipy, but stay importable
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None


@dataclass
class CsrMatrix:
    """A CSR sparse matrix of shape ``(m, k)``."""

    values: np.ndarray
    col_index: np.ndarray
    row_ptr: np.ndarray
    shape: tuple[int, int]
    #: Lazily-built scipy.sparse twin backing the SpMM fast path.
    _scipy: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.col_index = np.asarray(self.col_index, dtype=np.int64)
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        m, k = self.shape
        if m <= 0 or k <= 0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if len(self.row_ptr) != m + 1:
            raise ValueError(
                f"row_ptr must have m+1={m + 1} entries, got {len(self.row_ptr)}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.values):
            raise ValueError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_index) != len(self.values):
            raise ValueError("values and col_index must have equal length")
        if len(self.col_index) and (
            self.col_index.min() < 0 or self.col_index.max() >= k
        ):
            raise ValueError("col_index entries out of range")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "CsrMatrix":
        """Build a CSR matrix from a dense array (zeros dropped)."""
        a = check_array_2d(dense, "dense")
        mask = a != 0.0
        counts = mask.sum(axis=1)
        row_ptr = np.concatenate(([0], np.cumsum(counts)))
        rows, cols = np.nonzero(mask)
        return cls(
            values=a[rows, cols],
            col_index=cols.astype(np.int64),
            row_ptr=row_ptr.astype(np.int64),
            shape=a.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the dense equivalent (one vectorized scatter)."""
        m, k = self.shape
        out = np.zeros((m, k), dtype=np.float64)
        if self.nnz:
            rows = np.repeat(np.arange(m), np.diff(self.row_ptr))
            out[rows, self.col_index] = self.values
        return out

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.values)

    @property
    def sparsity(self) -> float:
        """Fraction of zero entries."""
        m, k = self.shape
        return 1.0 - self.nnz / (m * k)

    def active_rows(self) -> np.ndarray:
        """Indices of rows holding at least one non-zero (``a_r``)."""
        return np.flatnonzero(np.diff(self.row_ptr) > 0)

    def active_cols(self) -> np.ndarray:
        """Indices of columns holding at least one non-zero (``a_c``)."""
        return np.unique(self.col_index)

    @property
    def n_active_rows(self) -> int:
        return len(self.active_rows())

    @property
    def n_active_cols(self) -> int:
        return len(self.active_cols())

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(columns, values) of row ``i``."""
        lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
        return self.col_index[lo:hi], self.values[lo:hi]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _check_b(self, dense_b) -> np.ndarray:
        b = check_array_2d(dense_b, "dense_b")
        if b.shape[0] != self.shape[1]:
            raise ValueError(
                f"B has {b.shape[0]} rows, expected k={self.shape[1]}"
            )
        return b

    def _as_scipy(self):
        """The scipy.sparse twin backing the SpMM fast path (cached)."""
        if self._scipy is None and _scipy_sparse is not None:
            self._scipy = _scipy_sparse.csr_matrix(
                (self.values, self.col_index, self.row_ptr), shape=self.shape
            )
        return self._scipy

    def matmul(self, dense_b) -> np.ndarray:
        """SDMM ``C = A @ B`` through the vectorized SpMM fast path.

        Dispatches to scipy's compiled CSR kernel, which accumulates each
        output row over the stored non-zeros in ascending order — exactly
        the reduction :meth:`matmul_reference` performs — so fast and
        reference paths are bit-identical, not merely close.  Without
        scipy the reference loop runs directly.
        """
        b = self._check_b(dense_b)
        a = self._as_scipy()
        if a is None:  # pragma: no cover - exercised only without scipy
            return self.matmul_reference(b)
        return np.asarray(a @ b)

    def matmul_reference(self, dense_b) -> np.ndarray:
        """Reference SDMM ``C = A @ B`` (Algorithm 1, the per-row loop).

        Each output row accumulates ``values[l] * B[col_index[l]]`` over
        the row's non-zeros strictly in storage order — the fixed
        reduction order the fast path must reproduce bit for bit.
        """
        b = self._check_b(dense_b)
        m, _ = self.shape
        out = np.zeros((m, b.shape[1]), dtype=np.float64)
        for i in self.active_rows():
            lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
            acc = np.zeros(b.shape[1], dtype=np.float64)
            for l in range(lo, hi):
                acc = acc + self.values[l] * b[self.col_index[l]]
            out[i] = acc
        return out

    def split_rows(self, n_parts: int) -> list["CsrMatrix"]:
        """Split along the M axis into ``n_parts`` row bands.

        LIBXSMM's JIT aborts when a kernel would contain too many
        instructions; the paper splits A vertically and stacks the partial
        results (Section 4.3).  Stacking the parts' products reproduces
        ``self.matmul`` exactly.
        """
        m, k = self.shape
        if not 1 <= n_parts <= m:
            raise ValueError(f"n_parts must be in [1, {m}], got {n_parts}")
        bounds = np.linspace(0, m, n_parts + 1).astype(np.int64)
        parts = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            v_lo, v_hi = self.row_ptr[lo], self.row_ptr[hi]
            parts.append(
                CsrMatrix(
                    values=self.values[v_lo:v_hi].copy(),
                    col_index=self.col_index[v_lo:v_hi].copy(),
                    row_ptr=(self.row_ptr[lo : hi + 1] - self.row_ptr[lo]).copy(),
                    shape=(int(hi - lo), k),
                )
            )
        return parts
