"""Blocked dense-dense matrix multiplication with simulated timing.

Implements the Goto algorithm exactly as Section 4.1 describes it — the
five-loop blocking (n_c / k_c / m_c partitions, then the macro- and
micro-kernel) with packing of the B panel "into L3" and the A panel "into
L2" — and *really computes* C block by block, so the blocking logic is
testable against ``A @ B``.

Because the physical i9-9900K is unavailable, each run also produces a
:class:`DmmReport` with a simulated execution time assembled from event
counts:

* micro-kernel FLOPs on micro-tile-rounded dimensions, at a pipeline
  efficiency ``eff(k) = 1 - A * exp(-k / tau)`` — the rank-1-update loop
  of the micro-kernel amortizes the load/store of the C register tile
  over ``k_c`` updates, so short k dominates (the paper's Figs. 4-6 show
  exactly this: ~90 GFLOPS below k=128, ~110 in 128..512, ~130 above);
  ``A`` and ``tau`` are calibrated on those published plateaus;
* packing traffic for the A panels (re-packed per n_c block) and B panels
  (re-packed per m_c block);
* C read-modify-write traffic once per k-block (rank-k updates
  accumulate into C).

The resulting GFLOPS surface is what the dense time predictor
(Section 4.2, Table 2) is fitted on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.hardware.cpu import CpuSpec, I9_9900K
from repro.matmul.onednn import (
    OneDnnParams,
    effective_params,
    packing_would_dominate,
    rnd_up,
)
from repro.utils.validation import check_array_2d


@dataclass(frozen=True)
class DenseTimingModel:
    """Calibrated per-event costs of the simulated dense kernel.

    ``eff_amplitude`` / ``eff_tau`` shape the k-dependent micro-kernel
    efficiency so the executor saturates near the CPU's calibrated peak
    for deep k and drops to ~2/3 of it for shallow k, matching the
    paper's measured 90/110/130 GFLOPS zones at n = 1000.
    """

    eff_amplitude: float = 0.38
    eff_tau: float = 220.0
    pack_a_ns_per_byte: float = 0.050
    pack_b_ns_per_byte: float = 0.020
    c_traffic_ns_per_byte: float = 0.010
    nopack_efficiency: float = 0.85

    def micro_efficiency(self, k: int) -> float:
        """Pipeline efficiency of the micro-kernel for reduction depth k."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return 1.0 - self.eff_amplitude * float(np.exp(-k / self.eff_tau))


@dataclass(frozen=True)
class DmmReport:
    """Event counts and simulated time of one dense multiplication."""

    m: int
    n: int
    k: int
    flops: int
    effective_flops: int
    pack_a_bytes: int
    pack_b_bytes: int
    c_traffic_bytes: int
    micro_invocations: int
    packed: bool
    params: OneDnnParams
    time_ns: float

    @property
    def gflops(self) -> float:
        """Useful-FLOP throughput (paper's y-axis in Figs. 4-6)."""
        return self.flops / self.time_ns if self.time_ns > 0 else 0.0

    @property
    def time_us(self) -> float:
        return self.time_ns / 1000.0


class DenseGemmExecutor:
    """Goto-blocked GEMM with oneDNN shape adaptation and simulated time."""

    def __init__(
        self,
        cpu: CpuSpec = I9_9900K,
        timing: DenseTimingModel | None = None,
        params: OneDnnParams | None = None,
    ) -> None:
        self.cpu = cpu
        self.timing = timing or DenseTimingModel()
        self.defaults = params or OneDnnParams()

    # ------------------------------------------------------------------
    def multiply(self, a, b, *, compute: bool = True) -> tuple[np.ndarray | None, DmmReport]:
        """``C = A @ B`` through the blocked algorithm.

        Parameters
        ----------
        a, b:
            Operands of shape (m, k) and (k, n).
        compute:
            When false, only the report is produced (used for wide
            parameter sweeps where the numerics are not needed).
        """
        a = check_array_2d(a, "a")
        b = check_array_2d(b, "b")
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"inner dimensions differ: {k} vs {k2}")

        report = self.report(m, n, k)
        # Lightweight timing hook: a no-op unless the process-wide tracer
        # is enabled (sweeps call this thousands of times).
        with obs.span("matmul.dense", m=m, n=n, k=k):
            c = self._blocked_multiply(a, b, report.params) if compute else None
        return c, report

    def _blocked_multiply(
        self, a: np.ndarray, b: np.ndarray, p: OneDnnParams
    ) -> np.ndarray:
        m, k = a.shape
        n = b.shape[1]
        c = np.zeros((m, n), dtype=np.float64)
        # Loop 5..3 of the Goto algorithm.  The macro-kernel (loops 2..1
        # and the micro-kernel) is performed with one BLAS call per
        # (ic, pc, jc) block: the packing order is what the simulation
        # charges for, the numerics are identical.
        for jc in range(0, n, p.n_c):
            nb = min(p.n_c, n - jc)
            for pc in range(0, k, p.k_c):
                kb = min(p.k_c, k - pc)
                b_panel = b[pc : pc + kb, jc : jc + nb]  # packed into L3
                for ic in range(0, m, p.m_c):
                    mb = min(p.m_c, m - ic)
                    a_panel = a[ic : ic + mb, pc : pc + kb]  # packed into L2
                    c[ic : ic + mb, jc : jc + nb] += a_panel @ b_panel
        return c

    # ------------------------------------------------------------------
    def report(self, m: int, n: int, k: int) -> DmmReport:
        """Event counts and simulated time for an ``m x k @ k x n``."""
        if min(m, n, k) <= 0:
            raise ValueError(f"dimensions must be positive, got {(m, n, k)}")
        p = effective_params(m, n, k, self.defaults)
        t = self.timing

        n_jc = -(-n // p.n_c)
        n_pc = -(-k // p.k_c)
        n_ic = -(-m // p.m_c)

        # Micro-tiles compute on rounded-up edges (oneDNN pads panels).
        m_eff = rnd_up(m, p.m_r)
        n_eff = rnd_up(n, p.n_r)
        flops = 2 * m * n * k
        effective_flops = 2 * m_eff * n_eff * k

        packed = not packing_would_dominate(m, n, k)
        if packed:
            # A panels are re-packed once per n_c block; B once per m_c.
            pack_a_bytes = 4 * m * k * n_jc
            pack_b_bytes = 4 * k * n * n_ic
        else:
            pack_a_bytes = 0
            pack_b_bytes = 0
        # C is read and written once per rank-k update pass.
        c_traffic_bytes = 8 * m * n * n_pc

        micro_invocations = (
            n_jc * n_pc * n_ic * (-(-min(p.m_c, m_eff) // p.m_r))
            * (-(-min(p.n_c, n_eff) // p.n_r))
        )

        eff = t.micro_efficiency(k)
        if not packed:
            eff *= t.nopack_efficiency
        time_ns = (
            effective_flops * self.cpu.flop_time_ns / eff
            + pack_a_bytes * t.pack_a_ns_per_byte
            + pack_b_bytes * t.pack_b_ns_per_byte
            + c_traffic_bytes * t.c_traffic_ns_per_byte
        )
        return DmmReport(
            m=m,
            n=n,
            k=k,
            flops=flops,
            effective_flops=effective_flops,
            pack_a_bytes=pack_a_bytes,
            pack_b_bytes=pack_b_bytes,
            c_traffic_bytes=c_traffic_bytes,
            micro_invocations=micro_invocations,
            packed=packed,
            params=p,
            time_ns=float(time_ns),
        )

    def measure_gflops(self, m: int, n: int, k: int) -> float:
        """Simulated sustained GFLOPS for a shape (Figs. 4-6 sweeps)."""
        return self.report(m, n, k).gflops
