"""Concrete :class:`~repro.runtime.base.Scorer` adapters.

One adapter per model family, each pairing an execution path with its
calibrated price:

==================  =============================  =========================
backend             executes                        priced by
==================  =============================  =========================
quickscorer         QuickScorer bitvector traversal QuickScorer cost model
quickscorer-gpu     (same traversal, CPU-simulated) GPU QuickScorer model
dense-network       chunk-stable FFN forward        dense predictor (Eq. 3)
sparse-network      chunk-stable FFN forward        hybrid dense+Eq. 5 price
quantized-network   fake-quantized FFN forward      int-``bits`` timing model
cascade             per-request early-exit cascade  expected amortized cost
compiled-network    AOT-compiled inference plan     the plan's chosen kernels
==================  =============================  =========================

All network adapters score through :func:`~repro.runtime.base.
stable_forward`, so micro-batched and whole-request scoring are
bit-identical (see ``base.py``).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.design.cascade import EarlyExitCascade
from repro.distill.student import DistilledStudent
from repro.forest.ensemble import TreeEnsemble
from repro.matmul.csr import CsrMatrix
from repro.quickscorer.scorer import QuickScorer
from repro.runtime.base import BaseScorer, stable_forward
from repro.runtime.context import PricingContext
from repro.runtime.pricing import (
    NetworkShape,
    price_forest_shape,
    price_network_shape,
    ForestShape,
)


class QuickScorerAdapter(BaseScorer):
    """A :class:`TreeEnsemble` scored through QuickScorer.

    Oblivious-tree ensembles flow through unchanged — they are plain
    ``TreeEnsemble`` objects and QuickScorer encodes them exactly.
    """

    backend = "quickscorer"

    def __init__(
        self,
        ensemble: TreeEnsemble,
        context: PricingContext,
        *,
        false_fraction: float | None = None,
        blockwise: bool = True,
    ) -> None:
        if not isinstance(ensemble, TreeEnsemble):
            raise TypeError(
                f"expected a TreeEnsemble, got {type(ensemble).__name__}"
            )
        self.ensemble = ensemble
        self._scorer = QuickScorer(ensemble)
        super().__init__(
            price_fn=lambda: context.qs_cost.scoring_time_for(
                ensemble, false_fraction=false_fraction, blockwise=blockwise
            ),
            input_dim=ensemble.n_features,
        )

    def score(self, features) -> np.ndarray:
        return self._scorer.score(features)

    def describe(self) -> str:
        return f"QuickScorer over {self.ensemble.describe()}"


class GpuQuickScorerAdapter(QuickScorerAdapter):
    """A forest priced by the GPU QuickScorer cost model.

    Execution still runs the (exact) CPU traversal — the environment has
    no device — while the price locates the model on the GPU engine's
    time axis, the same measured-vs-modeled split the library uses
    everywhere.
    """

    backend = "quickscorer-gpu"

    def __init__(
        self,
        ensemble: TreeEnsemble,
        context: PricingContext,
        *,
        batch_docs: int = 10_000,
    ) -> None:
        super().__init__(ensemble, context)
        self._price = None  # re-arm lazy pricing with the GPU model
        self._price_fn = lambda: context.gpu_cost.scoring_time_us(
            ensemble.n_trees,
            ensemble.max_leaves,
            batch_docs=batch_docs,
            n_features=ensemble.n_features,
        )

    def describe(self) -> str:
        return f"GPU QuickScorer over {self.ensemble.describe()}"


class DenseNetworkScorer(BaseScorer):
    """A distilled student priced as a dense network."""

    backend = "dense-network"

    def __init__(
        self, student: DistilledStudent, context: PricingContext
    ) -> None:
        if not isinstance(student, DistilledStudent):
            raise TypeError(
                f"expected a DistilledStudent, got {type(student).__name__}"
            )
        self.student = student
        super().__init__(
            price_fn=lambda: price_network_shape(
                self._shape(), context
            ),
            input_dim=student.input_dim,
        )

    def _shape(self) -> NetworkShape:
        return NetworkShape(self.student.input_dim, self.student.hidden)

    def score(self, features) -> np.ndarray:
        z = self.student.normalizer.transform(
            np.asarray(features, dtype=np.float64)
        )
        return stable_forward(self.student.network, z)

    def describe(self) -> str:
        return f"dense net {self.student.describe()}"


class SparseNetworkScorer(DenseNetworkScorer):
    """A first-layer-pruned student priced with the hybrid model.

    The price runs the (CSR-measured) first layer through the sparse
    predictor (Eq. 5) and the remaining layers densely — exactly the
    paper's deployment model for pruned networks.
    """

    backend = "sparse-network"

    def _shape(self) -> NetworkShape:
        first = self.student.network.first_layer
        return NetworkShape(
            self.student.input_dim,
            self.student.hidden,
            first_layer_matrix=CsrMatrix.from_dense(first.weight.data),
        )

    def describe(self) -> str:
        sparsity = self.student.first_layer_sparsity()
        return (
            f"sparse-first-layer net {self.student.describe()} "
            f"@ {sparsity:.1%}"
        )


class QuantizedNetworkScorer(BaseScorer):
    """A student executed (and priced) at int-``bits`` precision.

    Scoring uses the fake-quantized twin network (dequantized int
    weights, so ranking quality is measured faithfully); pricing scales
    the fp32 predictors by the calibrated int-kernel speed-ups.
    """

    backend = "quantized-network"

    def __init__(
        self,
        student: DistilledStudent,
        context: PricingContext,
        *,
        quantized_bits: int = 8,
    ) -> None:
        from repro.nn.quantization import quantize_student

        if not isinstance(student, DistilledStudent):
            raise TypeError(
                f"expected a DistilledStudent, got {type(student).__name__}"
            )
        self.student = student
        self.bits = int(quantized_bits)
        self.quantized = quantize_student(student, bits=self.bits)
        sparse = (
            student.first_layer_sparsity() > context.sparse_threshold
        )

        def _price() -> float:
            first = self.quantized.network.first_layer
            shape = NetworkShape(
                student.input_dim,
                student.hidden,
                first_layer_matrix=(
                    CsrMatrix.from_dense(first.weight.data) if sparse else None
                ),
                quantized_bits=self.bits,
            )
            return price_network_shape(shape, context)

        super().__init__(price_fn=_price, input_dim=student.input_dim)

    def score(self, features) -> np.ndarray:
        z = self.quantized.normalizer.transform(
            np.asarray(features, dtype=np.float64)
        )
        return stable_forward(self.quantized.network, z)

    def describe(self) -> str:
        return f"int{self.bits} net {self.student.describe()}"


class CompiledNetworkScorer(BaseScorer):
    """A student executed through an ahead-of-time compiled plan.

    Construction compiles the student's network into an
    :class:`~repro.runtime.compile.InferencePlan` — per-layer kernel
    selection via the calibrated predictors, frozen weight copies,
    fused epilogues and preallocated ping-pong buffers — so scoring is
    the plan's zero-allocation loop.  The price is the sum of the
    *chosen* kernels' predicted per-document costs, and the plan's
    weight digest doubles as the scorer ``fingerprint()``, keeping
    :class:`~repro.runtime.parallel.ScoreCache` entries sound across
    recompilations.

    The plan is compiled in **stable** mode by default: the adapter
    inherits the :class:`Scorer` chunk-invariance guarantee (sharding
    and micro-batching may never change a ranking), which BLAS GEMM
    bits cannot honour — the same trade ``stable_forward`` makes for
    the other network adapters.  Pass ``stable=False`` for the native
    BLAS kernels when the scorer will only ever see whole requests.

    Unlike the lazily-priced adapters, compilation itself consults the
    predictors (selection *is* pricing), so the cost models are built
    eagerly here.
    """

    backend = "compiled-network"

    def __init__(
        self,
        student: DistilledStudent,
        context: PricingContext,
        *,
        compiled: bool = True,  # registry dispatch flag; value unused
        plan_dtype: str = "float64",
        max_batch: int = 4096,
        kernels=None,
        stable: bool = True,
        quantize: str | None = None,
        tolerance: float | None = None,
        calibration=None,
        block_sparse: bool = False,
        block_shape: tuple[int, int] = (64, 8),
    ) -> None:
        from repro.runtime.compile import compile_network

        if not isinstance(student, DistilledStudent):
            raise TypeError(
                f"expected a DistilledStudent, got {type(student).__name__}"
            )
        self.student = student
        if calibration is not None:
            # Plans run on normalized features; calibrate on that scale.
            calibration = student.normalizer.transform(
                np.asarray(calibration, dtype=np.float64)
            )
        self.plan = compile_network(
            student.network,
            context=context,
            dtype=plan_dtype,
            max_batch=max_batch,
            kernels=kernels,
            stable=stable,
            quantize=quantize,
            tolerance=tolerance,
            calibration=calibration,
            block_sparse=block_sparse,
            block_shape=block_shape,
        )
        super().__init__(
            price_fn=lambda: self.plan.predicted_us_per_doc,
            input_dim=student.input_dim,
        )

    def fingerprint(self) -> str:
        """The plan's weight/kernel digest (see ``scorer_fingerprint``)."""
        return self.plan.fingerprint

    def score(self, features) -> np.ndarray:
        z = self.student.normalizer.transform(
            np.asarray(features, dtype=np.float64)
        )
        return self.plan.score(z)

    def describe(self) -> str:
        mix = " + ".join(
            f"{n} {name}" for name, n in self.plan.kernel_counts().items()
        )
        return (
            f"compiled net {self.student.describe()} "
            f"[{self.plan.dtype_name}, {mix}]"
        )


class CascadeScorer(BaseScorer):
    """An early-exit cascade served as one scorer.

    Cascades rank *within* a request (survivor cuts are per-query), so
    the adapter is **not batchable**: the batch engine hands it each
    request whole.

    Every scored query feeds the ``cascade.*`` series (survivor funnel,
    budget early-exits, predicted spend — see :mod:`repro.obs.cascade`)
    and, when request tracing is live, stamps one ``cascade:<stage>``
    detail stage per executed level onto the request's timeline plus
    ``cascade_*`` annotations.  Scores are unaffected.
    """

    backend = "cascade"
    batchable = False

    def __init__(
        self, cascade: EarlyExitCascade, context: PricingContext
    ) -> None:
        if not isinstance(cascade, EarlyExitCascade):
            raise TypeError(
                f"expected an EarlyExitCascade, got {type(cascade).__name__}"
            )
        self.cascade = cascade
        self.pipeline_name = getattr(cascade, "name", None) or "cascade"
        super().__init__(
            price_fn=cascade.expected_cost_us_per_doc,
            input_dim=None,
        )

    def score(self, features) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        result = self.cascade.score_query_detailed(x)
        if result.stages_run:
            stage_names = tuple(
                stage.name
                for stage in self.cascade.stages[: result.stages_run]
            )
            obs.record_cascade_query(
                self.pipeline_name,
                stage_names=stage_names,
                stage_docs=result.stage_docs,
                stage_us=tuple(
                    (end - start) * 1e6 for start, end in result.stage_spans
                ),
                predicted_spend_us=result.predicted_spend_us,
                exited_early=result.exited_early,
            )
            for ctx in obs.active_requests():
                for name, (start, end), docs in zip(
                    stage_names, result.stage_spans, result.stage_docs
                ):
                    ctx.stage(f"cascade:{name}", start, end, docs=docs)
                ctx.annotate(
                    cascade=self.pipeline_name,
                    cascade_stages=result.stages_run,
                    cascade_exited_early=result.exited_early,
                    cascade_predicted_spend_us=round(
                        result.predicted_spend_us, 3
                    ),
                )
        return result.scores

    def describe(self) -> str:
        return f"cascade [{self.cascade.describe()}]"


__all__ = [
    "QuickScorerAdapter",
    "GpuQuickScorerAdapter",
    "DenseNetworkScorer",
    "SparseNetworkScorer",
    "QuantizedNetworkScorer",
    "CompiledNetworkScorer",
    "CascadeScorer",
    "ForestShape",
]
