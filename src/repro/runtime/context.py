"""Shared pricing state for the scoring runtime.

A :class:`PricingContext` bundles every calibrated cost model a backend
may need — the QuickScorer analytic model, its GPU variant, the dense +
sparse network predictor, and the quantized-timing scaling — behind lazy
construction, so contexts are cheap to create and the expensive GFLOPS
calibration only runs when a network is actually priced.

One process-wide default context backs ``make_scorer``/``price`` when no
explicit context is passed; its :class:`NetworkTimePredictor` is the
library-wide shared instance (also handed out by
``EfficientRankingPipeline.network_predictor``), so every layer prices
against the same calibration.
"""

from __future__ import annotations

from repro.quickscorer.cost import QuickScorerCostModel
from repro.timing.network_predictor import NetworkTimePredictor

_SHARED_PREDICTOR: NetworkTimePredictor | None = None


def shared_predictor() -> NetworkTimePredictor:
    """The lazily-built, process-wide dense+sparse time predictor."""
    global _SHARED_PREDICTOR
    if _SHARED_PREDICTOR is None:
        _SHARED_PREDICTOR = NetworkTimePredictor()
    return _SHARED_PREDICTOR


class PricingContext:
    """Cost models and thresholds shared by every scorer backend.

    Parameters
    ----------
    predictor:
        Network time predictor; defaults to the process-wide shared
        instance (built on first use).
    qs_cost:
        QuickScorer cost model for tree ensembles.
    gpu_cost:
        GPU QuickScorer cost model; defaults to one wrapping ``qs_cost``.
    sparse_threshold:
        First-layer sparsity above which a student is auto-dispatched to
        the sparse (hybrid-priced) backend.
    quantized_efficiency, quantized_sparse_efficiency:
        Fractions of the SIMD lane-ratio ceiling the int8 dense/sparse
        kernels sustain (see :mod:`repro.timing.quantized`).
    """

    def __init__(
        self,
        *,
        predictor: NetworkTimePredictor | None = None,
        qs_cost: QuickScorerCostModel | None = None,
        gpu_cost=None,
        sparse_threshold: float = 0.5,
        quantized_efficiency: float = 0.6,
        quantized_sparse_efficiency: float = 0.8,
    ) -> None:
        if not 0.0 <= sparse_threshold <= 1.0:
            raise ValueError(
                f"sparse_threshold must be in [0, 1], got {sparse_threshold}"
            )
        self._predictor = predictor
        self.qs_cost = qs_cost or QuickScorerCostModel()
        self._gpu_cost = gpu_cost
        self.sparse_threshold = sparse_threshold
        self.quantized_efficiency = quantized_efficiency
        self.quantized_sparse_efficiency = quantized_sparse_efficiency

    @property
    def predictor(self) -> NetworkTimePredictor:
        """The network time predictor (lazily resolved)."""
        if self._predictor is None:
            self._predictor = shared_predictor()
        return self._predictor

    @property
    def gpu_cost(self):
        """GPU QuickScorer cost model, built around :attr:`qs_cost`."""
        if self._gpu_cost is None:
            from repro.quickscorer.gpu import GpuQuickScorerCostModel

            self._gpu_cost = GpuQuickScorerCostModel(cpu_model=self.qs_cost)
        return self._gpu_cost

    def quantized_timing(self, bits: int = 8):
        """The int-``bits`` timing model over this context's predictor."""
        from repro.timing.quantized import QuantizedTimingModel

        if not 2 <= bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {bits}")
        return QuantizedTimingModel(
            self.predictor,
            lane_ratio=32.0 / bits,
            efficiency=self.quantized_efficiency,
            sparse_efficiency=self.quantized_sparse_efficiency,
        )


_DEFAULT_CONTEXT: PricingContext | None = None


def default_context() -> PricingContext:
    """The process-wide default :class:`PricingContext`."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = PricingContext()
    return _DEFAULT_CONTEXT


def set_default_context(context: PricingContext) -> PricingContext:
    """Install a new default context, returning the previous one."""
    global _DEFAULT_CONTEXT
    previous = default_context()
    _DEFAULT_CONTEXT = context
    return previous
