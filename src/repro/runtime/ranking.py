"""Declarative budgeted ranking pipelines over the scoring runtime.

The execution core of a cascade lives in
:class:`repro.design.cascade.EarlyExitCascade`: banded per-query
refinement with ceil survivor cuts and an optional per-query µs budget.
This module gives it a first-class, *declarative* face so a staged
retrieval→rerank pipeline is configured the same way as batching,
parallelism or resilience — a typed, JSON-round-trippable config nested
in :class:`~repro.runtime.config.ServiceConfig`:

* :class:`PipelineStageConfig` — one stage: a model **role name**, the
  runtime backend to execute it with, the survivor keep fraction and
  optional backend options / price override.  Pure data; models never
  appear in the config.
* :class:`PipelineConfig` — the ordered stages plus the per-query
  budget.  ``to_dict()``/``from_dict()`` round-trip through JSON.
* :class:`RankingPipeline` — an :class:`EarlyExitCascade` built from a
  config and a ``{role: model}`` mapping via
  :func:`build_pipeline`; being a cascade subclass, ``make_scorer``
  dispatches it to the ``cascade`` backend unchanged, so it serves
  through :class:`~repro.serving.ScoringService`, the asyncio
  front-end, fallback chains and the batch engine like any scorer.

Stage prices come from the calibrated
:func:`~repro.runtime.pricing.price` through each stage's backend
adapter, which is what makes the per-query budget *predictive*: the
cascade stops promoting survivors once their predicted spend would
exceed the budget, before the expensive stage ever runs.  See
``docs/cascade.md``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.design.cascade import CascadeStage, EarlyExitCascade
from repro.exceptions import ConfigError

__all__ = [
    "PipelineConfig",
    "PipelineStageConfig",
    "RankingPipeline",
    "build_pipeline",
]


@dataclass(frozen=True)
class PipelineStageConfig:
    """One declarative stage of a :class:`PipelineConfig`.

    Parameters
    ----------
    model:
        Role name resolved against the ``{role: model}`` mapping handed
        to :func:`build_pipeline` (e.g. ``"pruned"``, ``"student"``,
        ``"teacher"``).  The config stays pure data; live models are
        attached at build time, the same split
        :class:`~repro.runtime.config.ResilienceConfig` makes for
        fallback models.
    backend:
        Runtime backend name executing the stage (``None`` = registry
        auto-dispatch for the bound model).
    keep_fraction:
        Share of each query's surviving documents this stage promotes
        (``ceil`` policy; ignored on the last stage).
    backend_options:
        Extra keyword options for the backend factory (e.g.
        ``{"compiled": True}`` or ``{"quantized_bits": 8}``).
    cost_us_per_doc:
        Optional price override; default is the bound scorer's
        calibrated ``predicted_us_per_doc``.
    name:
        Display name (defaults to ``model``).
    """

    model: str
    backend: str | None = None
    keep_fraction: float = 1.0
    backend_options: dict | None = None
    cost_us_per_doc: float | None = None
    name: str | None = None

    _FIELDS = (
        "model",
        "backend",
        "keep_fraction",
        "backend_options",
        "cost_us_per_doc",
        "name",
    )

    def __post_init__(self) -> None:
        if not self.model or not isinstance(self.model, str):
            raise ConfigError(
                f"stage model must be a non-empty role name, got {self.model!r}"
            )
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ConfigError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )
        if self.cost_us_per_doc is not None and not (
            math.isfinite(self.cost_us_per_doc) and self.cost_us_per_doc >= 0
        ):
            raise ConfigError(
                f"cost_us_per_doc must be finite and >= 0 (or None), "
                f"got {self.cost_us_per_doc}"
            )
        if self.backend_options is not None:
            if not isinstance(self.backend_options, Mapping):
                raise ConfigError(
                    "backend_options must be a mapping, got "
                    f"{type(self.backend_options).__name__}"
                )
            items = dict(self.backend_options)
            if any(not isinstance(k, str) for k in items):
                raise ConfigError("backend_options keys must be strings")
            object.__setattr__(self, "backend_options", items)

    @property
    def label(self) -> str:
        """The display name of this stage."""
        return self.name or self.model

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "model": self.model,
            "backend": self.backend,
            "keep_fraction": self.keep_fraction,
            "backend_options": (
                dict(self.backend_options) if self.backend_options else None
            ),
            "cost_us_per_doc": self.cost_us_per_doc,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineStageConfig":
        """Rebuild a stage config from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"pipeline stage must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise ConfigError(
                "unknown PipelineStageConfig keys: "
                + ", ".join(sorted(unknown))
            )
        if "model" not in data:
            raise ConfigError("pipeline stage needs a 'model' role name")
        defaults = {"keep_fraction": 1.0}
        return cls(
            model=data["model"],
            backend=data.get("backend"),
            keep_fraction=data.get("keep_fraction", defaults["keep_fraction"]),
            backend_options=data.get("backend_options"),
            cost_us_per_doc=data.get("cost_us_per_doc"),
            name=data.get("name"),
        )


@dataclass(frozen=True)
class PipelineConfig:
    """The declarative shape of a multi-stage ranking pipeline.

    Parameters
    ----------
    stages:
        Ordered :class:`PipelineStageConfig` entries (dicts are
        coerced), cheapest first; the last stage is the final reranker
        and its ``keep_fraction`` is ignored.
    budget_us_per_query:
        Optional per-query spending cap enforced by predicted cost —
        see :class:`~repro.design.cascade.EarlyExitCascade`.
    """

    stages: tuple = ()
    budget_us_per_query: float | None = None

    def __post_init__(self) -> None:
        stages = tuple(
            s
            if isinstance(s, PipelineStageConfig)
            else PipelineStageConfig.from_dict(s)
            for s in self.stages
        )
        if not stages:
            raise ConfigError("a pipeline needs at least one stage")
        object.__setattr__(self, "stages", stages)
        if self.budget_us_per_query is not None and not (
            math.isfinite(self.budget_us_per_query)
            and self.budget_us_per_query > 0
        ):
            raise ConfigError(
                f"budget_us_per_query must be finite and > 0 (or None), "
                f"got {self.budget_us_per_query}"
            )

    @property
    def roles(self) -> tuple[str, ...]:
        """Model role names the stages reference, in stage order."""
        return tuple(stage.model for stage in self.stages)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "stages": [stage.to_dict() for stage in self.stages],
            "budget_us_per_query": self.budget_us_per_query,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        unknown = set(data) - {"stages", "budget_us_per_query"}
        if unknown:
            raise ConfigError(
                f"unknown PipelineConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            stages=tuple(data.get("stages", ())),
            budget_us_per_query=data.get("budget_us_per_query"),
        )


class RankingPipeline(EarlyExitCascade):
    """An :class:`EarlyExitCascade` built from a declarative config.

    Constructed by :func:`build_pipeline`; carries the
    :class:`PipelineConfig` it was built from (``config``) so the
    serving layer can serialize the pipeline's shape, and a readable
    ``name``.  Everything behavioural — banded refinement scoring, ceil
    cuts, per-query budget exits — is inherited.
    """

    def __init__(
        self,
        stages,
        *,
        budget_us_per_query: float | None = None,
        config: PipelineConfig | None = None,
        name: str = "pipeline",
    ) -> None:
        super().__init__(stages, budget_us_per_query=budget_us_per_query)
        self.config = config
        self.name = name

    def describe(self) -> str:
        return f"{self.name}: {super().describe()}"


def build_pipeline(
    models: Mapping[str, Any],
    config: PipelineConfig,
    *,
    context=None,
    name: str = "pipeline",
) -> RankingPipeline:
    """Bind a :class:`PipelineConfig` to live models.

    ``models`` maps each role name a stage references to either a raw
    model (adapted through :func:`~repro.runtime.make_scorer` with the
    stage's backend and options) or an already-built
    :class:`~repro.runtime.base.Scorer` (used as-is; its calibrated
    price becomes the stage cost unless overridden).
    """
    from repro.runtime.base import is_scorer

    if isinstance(config, Mapping):
        config = PipelineConfig.from_dict(config)
    if not isinstance(config, PipelineConfig):
        raise ConfigError(
            f"expected a PipelineConfig, got {type(config).__name__}"
        )
    stages = []
    for stage_config in config.stages:
        role = stage_config.model
        if role not in models:
            raise ConfigError(
                f"pipeline stage {stage_config.label!r} references model "
                f"role {role!r} but only {sorted(models)} were provided"
            )
        model = models[role]
        if is_scorer(model):
            if stage_config.backend or stage_config.backend_options:
                raise ConfigError(
                    f"stage {stage_config.label!r}: role {role!r} is "
                    "already a built scorer; backend/backend_options "
                    "cannot be re-applied"
                )
            stages.append(
                CascadeStage(
                    name=stage_config.name or model.describe(),
                    score_fn=model.score,
                    cost_us_per_doc=(
                        model.predicted_us_per_doc
                        if stage_config.cost_us_per_doc is None
                        else stage_config.cost_us_per_doc
                    ),
                    keep_fraction=stage_config.keep_fraction,
                )
            )
        else:
            stages.append(
                CascadeStage.from_model(
                    model,
                    keep_fraction=stage_config.keep_fraction,
                    name=stage_config.name or role,
                    cost_us_per_doc=stage_config.cost_us_per_doc,
                    context=context,
                    backend=stage_config.backend,
                    **(stage_config.backend_options or {}),
                )
            )
    return RankingPipeline(
        stages,
        budget_us_per_query=config.budget_us_per_query,
        config=config,
        name=name,
    )
