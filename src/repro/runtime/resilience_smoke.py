"""Self-checking resilience smoke run (``make resilience-smoke``).

Exercises the degradation ladder end to end and *asserts* the outcomes,
so CI can gate on ``python -m repro.runtime.resilience_smoke``:

1. **Degradation** — each built-in probe backend (``quickscorer``,
   ``dense-network``, ``sparse-network``, plus the AOT
   ``compiled-network`` plan over the pruned student) is
   fault-injected on a deterministic schedule and chained onto a
   :class:`StubScorer`; every
   request must be answered (no failure reaches the caller), the
   fallback counts must match the schedule exactly, and with no fault
   the chain must reproduce the primary's scores bit for bit.
2. **Breaker recovery** — under a :class:`ManualClock`, a failing tier
   must trip its breaker open, reopen on a failed half-open probe, and
   close again after the configured number of successful probes.
3. **Admission bugfixes** — a NaN-priced scorer must be rejected by a
   finite budget (unless ``allow_unpriced=True``), zero-document
   requests must return empty scores without touching the stats, and
   ``top_k`` must equal ``rank()[:k]`` under tied scores.

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys

import numpy as np


def check_degradation() -> None:
    """Fault-inject each probe backend; the chain must absorb it."""
    from repro.obs.probe import build_probe_models
    from repro.runtime import (
        CircuitBreakerConfig,
        FallbackChain,
        FaultPolicy,
        ManualClock,
        RetryPolicy,
        StubScorer,
        make_scorer,
        with_faults,
    )

    # A breaker that alternating faults cannot trip, so the fallback
    # counts are a pure function of the fault schedule.
    lenient = CircuitBreakerConfig(
        window=8, min_samples=8, failure_rate_threshold=1.0
    )
    models = build_probe_models(n_queries=8, docs_per_query=8, seed=0)
    dataset = models["dataset"]
    requests = [
        dataset.features[start:stop]
        for start, stop in zip(dataset.query_ptr[:-1], dataset.query_ptr[1:])
    ]
    targets = [
        ("quickscorer", "quickscorer"),
        ("dense-network", "dense-network"),
        ("sparse-network", "sparse-network"),
        ("compiled-network", "sparse-network"),
    ]
    for backend, model_key in targets:
        clock = ManualClock()
        primary = make_scorer(models[model_key], backend=backend)
        healthy = FallbackChain(
            [make_scorer(models[model_key], backend=backend), StubScorer()],
            retry=RetryPolicy(max_attempts=1),
            clock=clock,
            sleep=clock.sleep,
        )
        faulty = with_faults(
            make_scorer(models[model_key], backend=backend),
            FaultPolicy.every(2),
            sleep=clock.sleep,
        )
        chain = FallbackChain(
            [faulty, StubScorer()],
            retry=RetryPolicy(max_attempts=1),
            breaker=lenient,
            clock=clock,
            sleep=clock.sleep,
        )
        for request in requests:
            reference = primary.score(request)
            np.testing.assert_array_equal(
                healthy.score(request),
                reference,
                err_msg=f"{backend}: healthy chain must be bit-identical",
            )
            scores = chain.score(request)  # never raises: stub absorbs
            assert scores.shape == (len(request),), (
                f"{backend}: degraded chain returned shape {scores.shape}"
            )
        n = len(requests)
        assert healthy.fallbacks == 0, (
            f"{backend}: healthy chain degraded {healthy.fallbacks} requests"
        )
        # FaultPolicy.every(2) faults calls 1, 3, 5, ... — half of them.
        expected = n // 2
        assert chain.fallbacks == expected, (
            f"{backend}: expected {expected} fallbacks over {n} requests, "
            f"got {chain.fallbacks}"
        )
        assert chain.served[0] == n - expected and chain.served[1] == expected
        print(
            f"degradation[{backend}]: {n} requests, "
            f"{chain.fallbacks} degraded to stub, 0 failed"
        )


def check_breaker_recovery() -> None:
    """Trip, reopen and recover a breaker under a deterministic clock."""
    from repro.runtime import (
        BreakerState,
        CircuitBreakerConfig,
        CircuitOpenError,
        FaultPolicy,
        InjectedFaultError,
        ManualClock,
        ResilientScorer,
        RetryPolicy,
        StubScorer,
        with_faults,
    )

    clock = ManualClock()
    faulty = with_faults(
        StubScorer(weights=[1.0]), FaultPolicy.first(3), sleep=clock.sleep
    )
    scorer = ResilientScorer(
        faulty,
        retry=RetryPolicy(max_attempts=1),
        breaker=CircuitBreakerConfig(
            window=4,
            min_samples=2,
            failure_rate_threshold=0.5,
            cooldown_seconds=1.0,
            half_open_probes=2,
        ),
        clock=clock,
        sleep=clock.sleep,
    )
    x = np.ones((2, 1))
    for _ in range(2):
        try:
            scorer.score(x)
            raise AssertionError("scheduled fault did not fire")
        except InjectedFaultError:
            pass
    assert scorer.breaker.state is BreakerState.OPEN
    try:
        scorer.score(x)
        raise AssertionError("open breaker admitted a call")
    except CircuitOpenError:
        pass
    clock.advance(1.5)
    assert scorer.breaker.state is BreakerState.HALF_OPEN
    try:
        scorer.score(x)  # third scheduled fault: probe fails, reopen
        raise AssertionError("faulty half-open probe did not fail")
    except InjectedFaultError:
        pass
    assert scorer.breaker.state is BreakerState.OPEN
    clock.advance(1.5)
    scorer.score(x)
    scorer.score(x)  # two healthy probes close the breaker
    assert scorer.breaker.state is BreakerState.CLOSED
    states = [state.value for state, _ in scorer.breaker.history]
    assert states == ["open", "half-open", "open", "half-open", "closed"], (
        f"unexpected transition sequence {states}"
    )
    print(f"breaker: deterministic recovery ({' -> '.join(states)})")


def check_admission_bugfixes() -> None:
    """NaN-price admission, zero-doc requests, top-k tie order."""
    from repro.runtime import BatchEngine, BudgetExceededError, StubScorer

    class UnpricedScorer(StubScorer):
        @property
        def predicted_us_per_doc(self) -> float:
            return float("nan")

    try:
        BatchEngine(UnpricedScorer(), budget_us_per_doc=10.0)
        raise AssertionError("NaN-priced scorer passed a finite budget")
    except BudgetExceededError:
        pass
    engine = BatchEngine(
        UnpricedScorer(), budget_us_per_doc=10.0, allow_unpriced=True
    )
    empty = engine.score(np.empty((0, 4)))
    assert empty.shape == (0,) and engine.stats.requests == 0, (
        "zero-document request touched the stats"
    )
    tie_engine = BatchEngine(StubScorer(weights=[1.0]))
    # scores: [1, 0, 1, 1, 0] — ties straddle every top-k boundary
    x = np.array([[1.0], [0.0], [1.0], [1.0], [0.0]])
    for k in range(1, 6):
        top = tie_engine.top_k(x, k)
        full = tie_engine.rank(x)[:k]
        assert np.array_equal(top, full), (
            f"top_k({k}) = {top} != rank()[:{k}] = {full}"
        )
    print("admission: NaN budget rejected, zero-doc no-op, top-k tie-stable")


def main() -> int:
    check_degradation()
    check_breaker_recovery()
    check_admission_bugfixes()
    from repro import obs

    print()
    print(obs.resilience_report().render())
    print("resilience-smoke: chain degrades and recovers, bugfixes hold")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
