"""Ahead-of-time compiled inference plans (the paper's kernel layer).

The paper's efficiency argument lives in the innermost loop: each linear
layer runs either a dense GEMM (oneDNN's Goto kernels) or a sparse
micro-kernel (LIBXSMM), chosen per layer by the analytic time predictors
of Sections 4.2/4.4.  :func:`compile_network` reproduces that decision
ahead of time and freezes it into an executable :class:`InferencePlan`:

* **per-layer kernel selection** — each layer's measured structure is
  fed through the calibrated predictors
  (:meth:`~repro.timing.network_predictor.NetworkTimePredictor.
  layer_kernel_times_all`); dense GEMM, scalar CSR SpMM, block-CSR SpMM
  and int8/int16 integer GEMM compete per layer;
* **weights pre-converted once** — C-contiguous dense copies, CSR
  arrays, gathered block panels or integer-valued quantized copies;
* **fused epilogues** — dequantization, bias-add, ReLU6 and (between
  consecutive int8 layers) requantization execute in-place on the GEMM
  output, no intermediate activation matrices;
* **ping-pong activation buffers** — scratch arenas sized once per
  ``(plan, max_batch)``; steady-state scoring allocates nothing on the
  heap (:meth:`InferencePlan.execute_into`).

Bit contract.  Different kernels cannot share bits — their reduction
trees differ — so the plan guarantees a *layered* identity:

* ``float64`` dense-GEMM layers run ``np.matmul(x, W.T, out=...)`` on
  the frozen copy of the eager weight — bit-identical to
  ``FeedForwardNetwork.predict`` at every batch size;
* ``float64`` CSR-SpMM **and block-SpMM** layers accumulate the stored
  non-zeros in ascending column order — bit-identical to
  :meth:`~repro.matmul.csr.CsrMatrix.matmul_reference` (a block layer
  executes its expanded explicit-zero CSR twin, whose inserted ``±0.0``
  terms cannot change any partial sum's bits for finite inputs);
* ``float32`` mode trades the bit contract for speed (the paper's
  kernels are fp32): tolerance-tested against the float64 reference;
* **quantized layers** (int8/int16) carry a *declared score tolerance*:
  ``plan.score_tolerance`` bounds ``|plan.score(x) -
  reference_scores(...)|`` the same way the float32 contract does,
  measured on the calibration batch at compile time.

Integer accumulation without integer hardware: int8 weights and
activations are stored as *integer-valued* float32 arrays and multiplied
through the ordinary BLAS sgemm.  Every product is ``<= 127 * 127`` and
a dot product over ``k <= 1040`` columns stays below ``2**24``, so every
partial sum is exactly representable in float32 **regardless of the
reduction order** — the GEMM is a true integer-accumulated kernel at
BLAS speed, and (unlike float GEMM) its bits cannot depend on the batch
shape.  int16 uses float64 dgemm the same way (sums below ``2**53``).
Consecutive int8 layers fuse their requantization: the feeder's epilogue
emits activations already on the int8 grid (ReLU6 bounds them to
``[0, 6]``, so the activation scale ``6/127`` is static), and the
consumer skips its quantization pass entirely.

Serving needs one more property: the :class:`~repro.runtime.base.Scorer`
contract guarantees *chunk-invariant* scoring, and BLAS GEMM bits depend
on the batch shape.  ``compile_network(..., stable=True)`` swaps the
dense float kernel for the fixed-order ``einsum`` contract; CSR, block
and quantized kernels are chunk-invariant already (row-independent or
exact-integer reductions), so stable quantized plans keep full BLAS
speed.  See ``docs/compiled.md`` and ``docs/quantized_kernels.md``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.matmul.blocks import BlockCsrMatrix, regroup_to_blocks
from repro.matmul.csr import CsrMatrix
from repro.nn.layers import Dropout, Linear, ReLU6
from repro.nn.network import FeedForwardNetwork
from repro.obs.compile import record_compile
from repro.obs.requests import active_requests, annotate_requests
from repro.obs.tracer import span

try:  # the zero-allocation SpMM entry point; gated like repro.matmul.csr
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparsetools = None

__all__ = [
    "BLOCK_KERNEL",
    "CompileError",
    "DEFAULT_TOLERANCE",
    "DENSE_KERNEL",
    "INT16_KERNEL",
    "INT8_KERNEL",
    "INT8_MAX_IN_WIDTH",
    "InferencePlan",
    "LayerPlan",
    "PLAN_DTYPES",
    "SPARSE_KERNEL",
    "compile_network",
    "reference_scores",
]

#: Supported execution dtypes.
PLAN_DTYPES = {"float64": np.float64, "float32": np.float32}

#: Kernel names, as they appear in plans, metrics and the CLI probe.
DENSE_KERNEL = "dense-gemm"
SPARSE_KERNEL = "csr-spmm"
BLOCK_KERNEL = "block-spmm"
INT8_KERNEL = "int8-gemm"
INT16_KERNEL = "int16-gemm"
KERNEL_NAMES = (DENSE_KERNEL, SPARSE_KERNEL, BLOCK_KERNEL, INT8_KERNEL, INT16_KERNEL)

#: Largest ``in_width`` whose int8 dot products stay exact in float32
#: accumulation: ``k * 127 * 127 < 2**24``.
INT8_MAX_IN_WIDTH = 1040

#: Score-tolerance budget ``quantize="auto"`` uses when none is given.
DEFAULT_TOLERANCE = 0.05

_Q8_MAX = 127.0
_Q16_MAX = 32767.0
#: ReLU6 bounds hidden activations to [0, 6] — the static activation
#: scale quantized hidden layers quantize their inputs with.
_ACT_BOUND = 6.0
#: Headroom on calibrated entry-activation scales, so features slightly
#: outside the calibration range are not clipped.
_ENTRY_HEADROOM = 1.25
#: Auto-calibration accepts a per-layer bit assignment only when the
#: measured calibration deviation is below ``tolerance / _AUTO_SAFETY``,
#: leaving margin for serving data the calibration batch did not cover.
_AUTO_SAFETY = 2.0
#: Declared tolerance for forced int8/int16 modes (no budget given):
#: ``max(_TOLERANCE_MARGIN * measured, _TOLERANCE_FLOOR)``.
_TOLERANCE_MARGIN = 3.0
_TOLERANCE_FLOOR = 1e-3


class CompileError(ReproError):
    """A network could not be compiled into an inference plan."""


@dataclass(frozen=True)
class LayerPlan:
    """One layer's frozen compilation decision."""

    index: int  # 1-based, matching the paper's Table 7
    in_width: int  # k of the weight matrix
    out_width: int  # m of the weight matrix
    kernel: str  # one of KERNEL_NAMES
    sparsity: float
    nnz: int
    predicted_dense_us_per_doc: float
    predicted_sparse_us_per_doc: float
    activation: str  # "relu6" or "none"
    predicted_block_us_per_doc: float | None = None
    predicted_quant_us_per_doc: float | None = None
    bits: int | None = None  # 8 / 16 for quantized kernels
    block_fill: float | None = None  # achieved fill for block layers
    weight_scale: float | None = None  # quantization scale of W
    input_scale: float | None = None  # quantization scale of the input
    emits_quantized: bool = False  # epilogue leaves int8-grid output

    @property
    def predicted_us_per_doc(self) -> float:
        """Predicted cost of the *chosen* kernel."""
        if self.kernel == SPARSE_KERNEL:
            return self.predicted_sparse_us_per_doc
        if self.kernel == BLOCK_KERNEL and self.predicted_block_us_per_doc is not None:
            return self.predicted_block_us_per_doc
        if self.kernel in (INT8_KERNEL, INT16_KERNEL) and (
            self.predicted_quant_us_per_doc is not None
        ):
            return self.predicted_quant_us_per_doc
        return self.predicted_dense_us_per_doc

    def describe(self) -> str:
        text = (
            f"L{self.index} {self.out_width}x{self.in_width} "
            f"{self.kernel} @ {self.sparsity:.1%}"
        )
        if self.kernel == BLOCK_KERNEL and self.block_fill is not None:
            text += f", fill {self.block_fill:.0%}"
        if self.bits is not None:
            text += f", w_scale {self.weight_scale:.3g}"
            if self.emits_quantized:
                text += ", fused requant"
        return text


def _finish(c, scale, bias, relu6: bool, q8: bool):
    """The fused epilogue: dequant scale, bias, activation, requant.

    Plain float layers pass ``scale=None, q8=False`` and execute the
    exact op sequence of the original fused epilogue (bit contract).
    ``q8`` emits the activation already on the int8 grid:
    ``clip(rint(y * 127/6), 0, 127)`` equals ``rint(relu6(y) * 127/6)``
    for every ``y``, so the ReLU6 is folded into the clip.
    """
    if scale is not None:
        np.multiply(c, scale, out=c)
    np.add(c, bias, out=c)
    if q8:
        np.rint(c, out=c)
        np.clip(c, 0.0, _Q8_MAX, out=c)
    elif relu6:
        np.maximum(c, 0.0, out=c)
        np.minimum(c, 6.0, out=c)
    return c


class _DenseKernel:
    """Frozen dense float layer: GEMM + fused epilogue.

    ``w`` is the C-contiguous ``(m, k)`` copy whose transposed view
    reproduces the eager forward bit for bit in float64; ``wt`` is the
    C-contiguous pre-transposed ``(k, m)`` copy the float32 mode
    multiplies by directly.  In stable mode the GEMM is the fixed-order
    ``einsum`` whose per-row bits do not depend on the batch shape.
    With ``out_gain`` (feeding a fused int8 layer) the frozen weights
    and bias are pre-scaled by ``127/6`` so the epilogue's requantize is
    a bare round+clip.
    """

    __slots__ = ("w", "wt", "bias", "relu6", "emit_q8", "scratch", "_exact", "_stable")

    def __init__(self, linear: Linear, dtype, stable: bool, *, relu6: bool, out_gain=None) -> None:
        w = np.asarray(linear.weight.data, dtype=np.float64)
        b = np.asarray(linear.bias.data, dtype=np.float64)
        if out_gain is not None:
            w = w * out_gain
            b = b * out_gain
        self.w = np.ascontiguousarray(w, dtype=dtype)
        self.wt = None if stable else np.ascontiguousarray(self.w.T)
        self.bias = np.ascontiguousarray(b, dtype=dtype)
        self.relu6 = relu6
        self.emit_q8 = out_gain is not None
        self.scratch: dict[str, int] = {}
        self._exact = dtype == np.float64
        self._stable = stable

    def make_views(self, buffers, n: int, c) -> "_LayerViews":
        return _LayerViews(c)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        c = views.c
        if self._stable:
            np.einsum("nk,mk->nm", a, self.w, out=c)
        elif self._exact:
            np.matmul(a, self.w.T, out=c)
        else:
            np.matmul(a, self.wt, out=c)
        return _finish(c, None, self.bias, self.relu6, self.emit_q8)


class _SparseKernel:
    """Frozen sparse layer: CSR SpMM into preallocated transposes.

    Computes ``C = (A @ X^T)^T`` through scipy's ``csr_matvecs``, which
    accumulates each output element over the stored non-zeros in
    ascending order — the reference reduction of
    :meth:`CsrMatrix.matmul_reference` — into a caller-provided buffer,
    so the hot path allocates nothing.  Also executes *block* layers in
    float64 plans via the expanded explicit-zero CSR twin (same bits as
    the scalar reference; see :mod:`repro.matmul.blocks`).
    """

    __slots__ = ("m", "k", "indptr", "indices", "data", "bias", "relu6", "emit_q8", "scratch")

    def __init__(self, linear: Linear, csr: CsrMatrix, dtype, *, relu6: bool, out_gain=None) -> None:
        self.m, self.k = csr.shape
        self.indptr = np.ascontiguousarray(csr.row_ptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(csr.col_index, dtype=np.int64)
        data = np.asarray(csr.values, dtype=np.float64)
        b = np.asarray(linear.bias.data, dtype=np.float64)
        if out_gain is not None:
            data = data * out_gain
            b = b * out_gain
        self.data = np.ascontiguousarray(data, dtype=dtype)
        self.bias = np.ascontiguousarray(b, dtype=dtype)
        self.relu6 = relu6
        self.emit_q8 = out_gain is not None
        self.scratch = {"xt": self.k, "yt": self.m}

    def make_views(self, buffers, n: int, c) -> "_LayerViews":
        xt = buffers["xt"][: self.k * n].reshape(self.k, n)
        yt = buffers["yt"][: self.m * n].reshape(self.m, n)
        return _LayerViews(c, xt=xt, yt=yt)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        c, xt, yt = views.c, views.xt, views.yt
        np.copyto(xt, a.T)
        yt.fill(0.0)
        _scipy_sparsetools.csr_matvecs(
            self.m,
            self.k,
            a.shape[0],
            self.indptr,
            self.indices,
            self.data,
            xt.ravel(),
            yt.ravel(),
        )
        np.copyto(c, yt.T)
        return _finish(c, None, self.bias, self.relu6, self.emit_q8)


class _BlockPanelKernel:
    """Frozen block-sparse layer: gather + dense GEMM per panel (fp32).

    Consecutive block rows sharing one column pattern merge into a
    *panel*; each panel gathers its active columns into compact scratch
    (``np.take`` with a preallocated out) and runs one dense GEMM on the
    gathered operand — the block-CSR layout guarantees those columns
    are dense tiles, so every lane does useful work (the paper's
    LIBXSMM micro-kernel story, Section 4.3).  Stable mode swaps the
    GEMM for the fixed-order einsum.  Column-block-pruned layers
    produce a single full-height panel, so the GEMM writes the whole
    contiguous output buffer.
    """

    __slots__ = ("panels", "zero_spans", "bias", "relu6", "emit_q8", "scratch", "_stable")

    def __init__(
        self, linear: Linear, block: BlockCsrMatrix, dtype, stable: bool, *, relu6: bool, out_gain=None
    ) -> None:
        m, k = block.shape
        r, c = block.block_shape
        dense = block.to_dense()
        b = np.asarray(linear.bias.data, dtype=np.float64)
        if out_gain is not None:
            dense = dense * out_gain
            b = b * out_gain
        panels: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        zero_spans: list[tuple[int, int]] = []
        i = 0
        while i < block.n_block_rows:
            lo, hi = block.row_ptr[i], block.row_ptr[i + 1]
            pattern = tuple(block.col_blocks[lo:hi])
            j = i + 1
            while j < block.n_block_rows and pattern == tuple(
                block.col_blocks[block.row_ptr[j] : block.row_ptr[j + 1]]
            ):
                j += 1
            r0, r1 = i * r, min(j * r, m)
            if not pattern:
                zero_spans.append((r0, r1))
            else:
                cols = np.concatenate(
                    [np.arange(jb * c, min((jb + 1) * c, k)) for jb in pattern]
                ).astype(np.int64)
                wp = np.ascontiguousarray(dense[r0:r1, cols].T, dtype=dtype)
                panels.append((r0, r1, cols, wp))
            i = j
        self.panels = panels
        self.zero_spans = zero_spans
        self.bias = np.ascontiguousarray(b, dtype=dtype)
        self.relu6 = relu6
        self.emit_q8 = out_gain is not None
        widest = max((len(p[2]) for p in panels), default=0)
        self.scratch = {"g": widest}
        self._stable = stable

    def make_views(self, buffers, n: int, c) -> "_LayerViews":
        g = tuple(
            buffers["g"][: n * len(cols)].reshape(n, len(cols))
            for _, _, cols, _ in self.panels
        )
        return _LayerViews(c, g=g)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        c = views.c
        for (r0, r1, cols, wp), g in zip(self.panels, views.g):
            np.take(a, cols, axis=1, out=g, mode="clip")
            if self._stable:
                np.einsum("nk,km->nm", g, wp, out=c[:, r0:r1])
            else:
                np.matmul(g, wp, out=c[:, r0:r1])
        for r0, r1 in self.zero_spans:
            c[:, r0:r1] = 0.0
        return _finish(c, None, self.bias, self.relu6, self.emit_q8)


class _Int8Kernel:
    """Frozen int8 layer: exact integer GEMM in float32 lanes.

    The quantized weight (``repro.nn.quantization`` numerics) is stored
    as an integer-valued array of the plan dtype; inputs arrive either
    already on the int8 grid (``self_quant=False``, the feeder's fused
    requantizing epilogue) or as floats that this kernel quantizes into
    scratch.  The GEMM's partial sums stay below ``2**24``
    (``in_width <= INT8_MAX_IN_WIDTH``), so accumulation is exact in
    float32 under any reduction order — the kernel is chunk-invariant
    by construction and needs no stable-mode einsum.  The epilogue
    fuses dequantization (``w_scale * in_scale``) with bias + ReLU6, or
    requantizes straight to the int8 grid for a fused int8 successor.
    """

    __slots__ = (
        "wt", "weight_scale", "bias", "post_scale", "relu6", "emit_q8",
        "self_quant", "inv_in_scale", "k", "scratch",
    )

    def __init__(
        self, linear: Linear, dtype, *, in_scale: float, self_quant: bool,
        relu6: bool, emit_q8: bool,
    ) -> None:
        from repro.nn.quantization import quantize_tensor

        q = quantize_tensor(linear.weight.data, bits=8)
        self.wt = np.ascontiguousarray(q.values.T, dtype=dtype)
        self.weight_scale = q.scale
        self.k = linear.in_features
        scale = q.scale * in_scale
        b = np.asarray(linear.bias.data, dtype=np.float64)
        if emit_q8:
            scale *= _Q8_MAX / _ACT_BOUND
            b = b * (_Q8_MAX / _ACT_BOUND)
        self.post_scale = float(scale)
        self.bias = np.ascontiguousarray(b, dtype=dtype)
        self.relu6 = relu6
        self.emit_q8 = emit_q8
        self.self_quant = self_quant
        self.inv_in_scale = 1.0 / in_scale
        self.scratch = {"qx": self.k} if self_quant else {}

    def make_views(self, buffers, n: int, c) -> "_LayerViews":
        if not self.self_quant:
            return _LayerViews(c)
        qx = buffers["qx"][: n * self.k].reshape(n, self.k)
        return _LayerViews(c, qx=qx)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        x = a
        if self.self_quant:
            x = views.qx
            np.multiply(a, self.inv_in_scale, out=x)
            np.rint(x, out=x)
            np.clip(x, -_Q8_MAX, _Q8_MAX, out=x)
        np.matmul(x, self.wt, out=views.c)
        return _finish(views.c, self.post_scale, self.bias, self.relu6, self.emit_q8)


class _Int16Kernel:
    """Frozen int16 layer: exact integer GEMM in float64 lanes.

    For accuracy-sensitive layers: int16 weights (scale from the same
    symmetric quantizer) and int16-grid inputs multiply in float64
    scratch, where products below ``2**30`` and sums below ``2**53``
    are always exact — chunk-invariant like the int8 kernel.  The
    epilogue dequantizes + bias + ReLU6 in float64, then casts into the
    plan-dtype arena.
    """

    __slots__ = (
        "wt", "weight_scale", "bias", "post_scale", "relu6",
        "inv_in_scale", "k", "m", "scratch", "emit_q8",
    )

    def __init__(self, linear: Linear, *, in_scale: float, relu6: bool) -> None:
        from repro.nn.quantization import quantize_tensor

        q = quantize_tensor(linear.weight.data, bits=16)
        self.wt = np.ascontiguousarray(q.values.T, dtype=np.float64)
        self.weight_scale = q.scale
        self.k = linear.in_features
        self.m = linear.out_features
        self.post_scale = float(q.scale * in_scale)
        self.bias = np.ascontiguousarray(linear.bias.data, dtype=np.float64)
        self.relu6 = relu6
        self.emit_q8 = False
        self.inv_in_scale = 1.0 / in_scale
        self.scratch = {"qx64": self.k, "qc64": self.m}

    def make_views(self, buffers, n: int, c) -> "_LayerViews":
        qx = buffers["qx64"][: n * self.k].reshape(n, self.k)
        qc = buffers["qc64"][: n * self.m].reshape(n, self.m)
        return _LayerViews(c, qx=qx, qc=qc)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        qx, qc = views.qx, views.qc
        np.multiply(a, self.inv_in_scale, out=qx)
        np.rint(qx, out=qx)
        np.clip(qx, -_Q16_MAX, _Q16_MAX, out=qx)
        np.matmul(qx, self.wt, out=qc)
        _finish(qc, self.post_scale, self.bias, self.relu6, False)
        np.copyto(views.c, qc)
        return views.c


class _LayerViews:
    """Per-(layer, batch) buffer views, built once and reused."""

    __slots__ = ("c", "xt", "yt", "g", "qx", "qc")

    def __init__(self, c, xt=None, yt=None, g=None, qx=None, qc=None) -> None:
        self.c = c
        self.xt = xt
        self.yt = yt
        self.g = g
        self.qx = qx
        self.qc = qc


#: Scratch pools and their dtypes: plan-dtype pools vs fixed-f64 pools.
_PLAN_POOLS = ("xt", "yt", "g", "qx")
_F64_POOLS = ("qx64", "qc64")


class InferencePlan:
    """An executable, frozen forward pass (built by :func:`compile_network`).

    The plan owns pre-converted weights, two ping-pong activation arenas
    and per-kernel scratch pools (transposes, gather panels, quantized
    activations), all sized once from ``max_batch`` and held **per
    thread** so concurrent shard workers never share in-flight
    activations.  :meth:`score` is the allocating convenience wrapper;
    :meth:`execute_into` is the zero-allocation steady-state entry point
    the smoke gate measures.
    """

    def __init__(
        self,
        *,
        layers: tuple[LayerPlan, ...],
        kernels: list,
        input_dim: int,
        max_batch: int,
        dtype_name: str,
        stable: bool,
        fingerprint: str,
        compile_us: float,
        source: str,
        quantize: str = "none",
        score_tolerance: float | None = None,
        block_shape: tuple[int, int] = (64, 8),
    ) -> None:
        self.layers = layers
        self._kernels = kernels
        self.input_dim = int(input_dim)
        self.max_batch = int(max_batch)
        self.dtype_name = dtype_name
        self.dtype = PLAN_DTYPES[dtype_name]
        self.stable = bool(stable)
        self.fingerprint = fingerprint
        self.compile_us = compile_us
        self.source = source
        self.quantize = quantize
        self.score_tolerance = score_tolerance
        self.block_shape = tuple(int(v) for v in block_shape)

        widths = [self.input_dim] + [lp.out_width for lp in layers]
        itemsize = np.dtype(self.dtype).itemsize
        self._arena = self.max_batch * max(widths)
        pools = {key: 0 for key in _PLAN_POOLS + _F64_POOLS}
        for kernel in kernels:
            for key, per_doc in kernel.scratch.items():
                pools[key] = max(pools[key], per_doc)
        self._pool_sizes = {k: v * self.max_batch for k, v in pools.items()}
        #: per-thread footprint of the arenas + all scratch pools.
        self.buffer_bytes = itemsize * (
            2 * self._arena + sum(self._pool_sizes[k] for k in _PLAN_POOLS)
        ) + 8 * sum(self._pool_sizes[k] for k in _F64_POOLS)
        # Arenas and view caches live per thread: ShardedScorer scores
        # shards of one plan concurrently, and two in-flight batches
        # must never share the ping-pong activation scratch.  Within a
        # thread the views are still built once per batch size, so
        # steady-state scoring allocates nothing.
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def predicted_us_per_doc(self) -> float:
        """Sum of the chosen kernels' predicted per-document costs."""
        return sum(lp.predicted_us_per_doc for lp in self.layers)

    def kernel_counts(self) -> dict[str, int]:
        """Layer count per kernel name, in canonical kernel order."""
        counts = {name: 0 for name in KERNEL_NAMES}
        for lp in self.layers:
            counts[lp.kernel] += 1
        return {name: n for name, n in counts.items() if n}

    def describe(self) -> str:
        mix = " + ".join(f"{n} {name}" for name, n in self.kernel_counts().items())
        mode = "stable" if self.stable else "native"
        text = (
            f"plan[{self.source}] {self.dtype_name}/{mode}, "
            f"{mix}, max_batch {self.max_batch}, "
            f"{self.predicted_us_per_doc:.2f} us/doc predicted"
        )
        if self.score_tolerance is not None:
            text += f", tol {self.score_tolerance:.1e}"
        return text

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _views_for(self, n: int) -> tuple:
        local = self._local
        cache = getattr(local, "views", None)
        if cache is None:
            local.ping = np.empty(self._arena, dtype=self.dtype)
            local.pong = np.empty(self._arena, dtype=self.dtype)
            local.buffers = {
                key: np.empty(
                    size, dtype=np.float64 if key in _F64_POOLS else self.dtype
                )
                for key, size in self._pool_sizes.items()
                if size
            }
            cache = local.views = {}
        views = cache.get(n)
        if views is None:
            built = []
            src, dst = local.ping, local.pong
            for lp, kernel in zip(self.layers, self._kernels):
                c = dst[: n * lp.out_width].reshape(n, lp.out_width)
                built.append(kernel.make_views(local.buffers, n, c))
                src, dst = dst, src
            entry = local.ping[: n * self.input_dim].reshape(n, self.input_dim)
            views = cache[n] = (entry, tuple(built))
        return views

    def execute_into(self, features: np.ndarray, out: np.ndarray) -> None:
        """Score ``features`` into ``out`` with zero heap allocations.

        ``features`` must be 2-D with ``input_dim`` columns and at most
        ``max_batch`` rows; ``out`` must be a float64 vector of matching
        length.  After the first call at a given batch size, repeated
        calls at that size allocate nothing (the smoke gate asserts
        this with ``tracemalloc``).
        """
        n = features.shape[0]
        if n == 0:
            return
        if n > self.max_batch:
            raise CompileError(
                f"batch {n} exceeds the plan's max_batch {self.max_batch}"
            )
        entry, views = self._views_for(n)
        np.copyto(entry, features)
        self._run(entry, views)
        np.copyto(out, views[-1].c[:, 0], casting="unsafe")

    def _run(self, a: np.ndarray, views, timings=None) -> np.ndarray:
        for i, kernel in enumerate(self._kernels):
            start = time.perf_counter() if timings is not None else 0.0
            a = kernel.apply(a, views[i])
            if timings is not None:
                timings[i] = min(
                    timings[i], time.perf_counter() - start
                )
        return a

    def score(self, features) -> np.ndarray:
        """Scores as float64, chunked by ``max_batch``; allocates only
        the returned vector (and, in float32 mode, casts on the way in
        and out of the fp32 arenas)."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(
                f"features must be 2-dimensional, got shape {x.shape}"
            )
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {x.shape[1]}"
            )
        out = np.empty(len(x), dtype=np.float64)
        # Request tracing: stamp the plan identity onto whichever
        # coalesced requests are live in this thread's context.  The
        # kernel string is only built when a traced request is present.
        if active_requests():
            annotate_requests(
                plan=self.fingerprint[:12],
                plan_dtype=self.dtype_name,
                plan_kernels="/".join(lp.kernel for lp in self.layers),
            )
        with span(
            "plan.execute", dtype=self.dtype_name, rows=len(x)
        ):
            for start in range(0, len(x), self.max_batch):
                chunk = x[start : start + self.max_batch]
                self.execute_into(chunk, out[start : start + len(chunk)])
        return out

    def profile_layers(self, features, repeats: int = 20) -> list[float]:
        """Best-of-``repeats`` measured µs/doc per layer.

        Drives the normal buffers layer by layer with a timer around
        each kernel (epilogue included) — the measurement half of the
        CLI probe's predicted-vs-measured table.
        """
        x = np.asarray(features, dtype=np.float64)
        n = x.shape[0]
        if not 0 < n <= self.max_batch:
            raise CompileError(
                f"profile batch must be in [1, {self.max_batch}], got {n}"
            )
        entry, views = self._views_for(n)
        timings = [float("inf")] * self.n_layers
        for _ in range(max(1, repeats)):
            np.copyto(entry, x)
            self._run(entry, views, timings=timings)
        return [t * 1e6 / n for t in timings]


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
@dataclass
class _LayerChoice:
    """Per-layer structure decision plus everything wiring needs."""

    linear: Linear
    structure: str  # DENSE_KERNEL, SPARSE_KERNEL or BLOCK_KERNEL
    csr: CsrMatrix
    block: BlockCsrMatrix | None
    activation: str
    dense_us: float
    sparse_us: float
    block_us: float | None
    int8_us: float
    int16_us: float
    forced_bits: int | None = None  # explicit int8/int16 kernel override
    forced_float: bool = False  # explicit float-structure override


def _plan_fingerprint(
    network: FeedForwardNetwork, dtype_name: str, stable: bool, tags
) -> str:
    """BLAKE2b over dtype, mode, per-layer kernel/quantization tags and
    the weights.  The tags carry kernel name, bit width, quantization
    scales, requant-fusion flags and block shape, so an int8 plan, an
    f32 plan and a block plan of the same weights never share a
    fingerprint (and therefore never share ``ScoreCache`` entries)."""
    digest = hashlib.blake2b(digest_size=16)
    mode = "stable" if stable else "native"
    digest.update(f"plan:{dtype_name}:{mode}:{network.input_dim}".encode())
    for linear, tag in zip(network.linears, tags):
        digest.update(tag.encode())
        digest.update(np.ascontiguousarray(linear.weight.data).tobytes())
        digest.update(np.ascontiguousarray(linear.bias.data).tobytes())
    return digest.hexdigest()


def _linear_activations(network: FeedForwardNetwork) -> list[str]:
    """Activation following each linear layer, from the layer sequence."""
    acts: list[str] = []
    for layer in network.layers:
        if isinstance(layer, Linear):
            acts.append("none")
        elif isinstance(layer, ReLU6):
            if not acts or acts[-1] != "none":
                raise CompileError("ReLU6 without a preceding linear layer")
            acts[-1] = "relu6"
        elif isinstance(layer, Dropout):
            continue  # identity at inference
        else:
            raise CompileError(
                f"cannot compile layer type {type(layer).__name__}"
            )
    return acts


def _calibration_features(network: FeedForwardNetwork, calibration) -> np.ndarray:
    """Validated calibration batch, or the deterministic default.

    The default draws standard-normal features (the scale z-scored
    serving features arrive at) from a fixed seed, so two compilations
    of the same network produce identical plans.
    """
    if calibration is None:
        rng = np.random.default_rng(20240808)
        return rng.standard_normal((256, network.input_dim))
    x = np.asarray(calibration, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 1:
        raise CompileError(
            f"calibration must be a non-empty 2-d batch, got shape {x.shape}"
        )
    if x.shape[1] != network.input_dim:
        raise CompileError(
            f"calibration has {x.shape[1]} features, expected {network.input_dim}"
        )
    if not np.all(np.isfinite(x)):
        raise CompileError("calibration features must be finite")
    return x


def _layer_input_maxima(network: FeedForwardNetwork, calib: np.ndarray) -> list[float]:
    """Max-abs input each linear layer sees on the calibration batch."""
    maxima: list[float] = []
    x = calib
    for linear, act in zip(network.linears, _linear_activations(network)):
        maxima.append(float(np.max(np.abs(x))) if x.size else 0.0)
        x = x @ linear.weight.data.T + linear.bias.data
        if act == "relu6":
            x = np.minimum(np.maximum(x, 0.0), 6.0)
    return maxima


def _wire_plan(
    network: FeedForwardNetwork,
    choices: list[_LayerChoice],
    bits: list,
    *,
    np_dtype,
    dtype_name: str,
    stable: bool,
    max_batch: int,
    entry_maxima,
    quantize_label: str,
    score_tolerance: float | None,
    block_shape,
    started: float,
) -> InferencePlan:
    """Build the executable plan for one (structure, bits) assignment."""
    n = len(choices)
    fuse = np_dtype == np.float32
    # A layer's feeder emits int8-grid activations when the consumer is
    # int8, the feeder applies ReLU6 (static 6/127 grid) and is not an
    # int16 kernel (whose epilogue runs in f64 scratch).  Fusion is a
    # float32-plan optimization: float64 plans keep their non-quantized
    # layers on the eager bit contract.
    emits = [False] * n
    for i in range(1, n):
        if fuse and bits[i] == 8 and choices[i - 1].activation == "relu6" and bits[i - 1] != 16:
            emits[i - 1] = True

    kernels: list = []
    layer_plans: list[LayerPlan] = []
    tags: list[str] = []
    r_blk, c_blk = block_shape
    for i, choice in enumerate(choices):
        linear = choice.linear
        relu6 = choice.activation == "relu6"
        out_gain = (_Q8_MAX / _ACT_BOUND) if emits[i] else None
        in_scale = None
        self_quant = False
        if bits[i] is not None:
            qmax = _Q8_MAX if bits[i] == 8 else _Q16_MAX
            if i > 0 and emits[i - 1]:
                in_scale = _ACT_BOUND / _Q8_MAX
            elif i > 0 and choices[i - 1].activation == "relu6":
                in_scale = _ACT_BOUND / qmax
                self_quant = True
            else:
                in_scale = _ENTRY_HEADROOM * max(entry_maxima[i], 1e-12) / qmax
                self_quant = True

        if bits[i] == 8:
            kernel_name = INT8_KERNEL
            kern = _Int8Kernel(
                linear, np_dtype, in_scale=in_scale, self_quant=self_quant,
                relu6=relu6, emit_q8=emits[i],
            )
            weight_scale = kern.weight_scale
        elif bits[i] == 16:
            kernel_name = INT16_KERNEL
            kern = _Int16Kernel(linear, in_scale=in_scale, relu6=relu6)
            weight_scale = kern.weight_scale
        elif choice.structure == SPARSE_KERNEL:
            kernel_name = SPARSE_KERNEL
            kern = _SparseKernel(linear, choice.csr, np_dtype, relu6=relu6, out_gain=out_gain)
            weight_scale = None
        elif choice.structure == BLOCK_KERNEL:
            kernel_name = BLOCK_KERNEL
            if np_dtype == np.float64:
                # Bit-contract path: the expanded explicit-zero CSR twin
                # reproduces the scalar reference bits (see blocks.py).
                kern = _SparseKernel(
                    linear, choice.block.expanded_csr(), np_dtype,
                    relu6=relu6, out_gain=out_gain,
                )
            else:
                kern = _BlockPanelKernel(
                    linear, choice.block, np_dtype, stable,
                    relu6=relu6, out_gain=out_gain,
                )
            weight_scale = None
        else:
            kernel_name = DENSE_KERNEL
            kern = _DenseKernel(linear, np_dtype, stable, relu6=relu6, out_gain=out_gain)
            weight_scale = None

        kernels.append(kern)
        quant_us = None
        if bits[i] is not None:
            quant_us = choice.int8_us if bits[i] == 8 else choice.int16_us
        layer_plans.append(
            LayerPlan(
                index=i + 1,
                in_width=linear.in_features,
                out_width=linear.out_features,
                kernel=kernel_name,
                sparsity=choice.csr.sparsity,
                nnz=choice.csr.nnz,
                predicted_dense_us_per_doc=choice.dense_us,
                predicted_sparse_us_per_doc=choice.sparse_us,
                activation=choice.activation,
                predicted_block_us_per_doc=choice.block_us,
                predicted_quant_us_per_doc=quant_us,
                bits=bits[i],
                block_fill=choice.block.fill if choice.block is not None else None,
                weight_scale=weight_scale,
                input_scale=in_scale,
                emits_quantized=emits[i],
            )
        )
        ws = weight_scale if weight_scale is not None else 0.0
        ins = in_scale if in_scale is not None else 0.0
        tags.append(
            f"{kernel_name}:{bits[i] or 0}:{ws:.17g}:{ins:.17g}:"
            f"{int(emits[i])}:{r_blk}x{c_blk}"
        )

    fingerprint = _plan_fingerprint(network, dtype_name, stable, tags)
    compile_us = (time.perf_counter() - started) * 1e6
    return InferencePlan(
        layers=tuple(layer_plans),
        kernels=kernels,
        input_dim=network.input_dim,
        max_batch=max_batch,
        dtype_name=dtype_name,
        stable=stable,
        fingerprint=fingerprint,
        compile_us=compile_us,
        source=network.describe(),
        quantize=quantize_label,
        score_tolerance=score_tolerance,
        block_shape=block_shape,
    )


def _score_deviation(
    network: FeedForwardNetwork, plan: InferencePlan, calib: np.ndarray
) -> float:
    """Max |plan score - float64 reference| over the calibration batch."""
    got = plan.score(calib)
    ref = reference_scores(network, plan, calib)
    return float(np.max(np.abs(got - ref))) if len(got) else 0.0


def compile_network(
    network: FeedForwardNetwork,
    *,
    context=None,
    dtype: str = "float64",
    max_batch: int = 4096,
    kernels=None,
    stable: bool = False,
    quantize: str | None = None,
    tolerance: float | None = None,
    calibration=None,
    block_sparse: bool = False,
    block_shape: tuple[int, int] = (64, 8),
    min_block_fill: float = 0.5,
) -> InferencePlan:
    """Compile a trained/pruned network into an :class:`InferencePlan`.

    Parameters
    ----------
    network:
        The :class:`FeedForwardNetwork` to freeze.  Weights are copied;
        later training steps do not leak into the plan (and change its
        fingerprint, so caches stay sound).
    context:
        :class:`~repro.runtime.context.PricingContext` supplying the
        calibrated predictors that arbitrate the kernels per layer
        (defaults to the process-wide context).
    dtype:
        ``"float64"`` (bit-exact, the default) or ``"float32"`` (the
        paper's kernel precision; tolerance-bounded, not bit-exact).
    max_batch:
        Largest chunk the ping-pong buffers must hold; requests larger
        than this are split by :meth:`InferencePlan.score`.
    kernels:
        Optional per-layer override, a sequence drawn from
        ``"dense-gemm"`` / ``"csr-spmm"`` / ``"block-spmm"`` /
        ``"int8-gemm"`` / ``"int16-gemm"`` / ``None`` (``None`` = let
        the predictors decide).  Forcing ``"csr-spmm"`` without scipy
        raises; forcing ``"int8-gemm"`` on a layer wider than
        :data:`INT8_MAX_IN_WIDTH` raises (the exact-accumulation bound);
        an explicit float kernel exempts that layer from ``quantize``.
    stable:
        Swap the dense float kernel for the fixed-order ``einsum``
        kernel, making per-row bits independent of the batch shape —
        the chunk-invariance contract the serving adapters guarantee.
        Quantized kernels are exact-integer reductions and therefore
        chunk-invariant in *both* modes.
    quantize:
        ``None``/``"none"`` (default, float kernels), ``"int8"``
        (int8 everywhere it is exact, int16 on wider layers),
        ``"int16"``, or ``"auto"`` — calibrate per layer, starting from
        the all-int8 assignment and walking the most score-sensitive
        layers up to int16 and then back to float until the measured
        deviation fits ``tolerance / 2`` (safety margin).  Quantization
        applies to dense-structure layers; sparse layers stay float.
    tolerance:
        The score-tolerance budget.  Under ``"auto"`` it is the target
        (default :data:`DEFAULT_TOLERANCE`); under forced modes it is
        verified against the measured calibration deviation and a
        violation raises :class:`CompileError`.  The declared bound is
        published as ``plan.score_tolerance``.
    calibration:
        Optional ``(rows, input_dim)`` feature batch used to calibrate
        entry-layer activation scales and measure score deviation;
        defaults to a fixed-seed standard-normal batch.
    block_sparse:
        Try to regroup each layer's non-zeros into dense ``block_shape``
        tiles (:func:`repro.matmul.blocks.regroup_to_blocks`).  When the
        achieved fill reaches ``min_block_fill`` the block-SpMM kernel
        *replaces* scalar CSR as the layer's sparse candidate — the fill
        gate is the CSR-vs-block arbiter — and the predictors then pick
        dense vs that candidate; below the gate the layer falls back to
        scalar CSR exactly as before.
    block_shape / min_block_fill:
        Tile shape ``(rows, cols)`` and the minimum achieved fill for
        block regrouping to stick.
    """
    if not isinstance(network, FeedForwardNetwork):
        raise CompileError(
            f"expected a FeedForwardNetwork, got {type(network).__name__}"
        )
    if dtype not in PLAN_DTYPES:
        raise CompileError(
            f"dtype must be one of {sorted(PLAN_DTYPES)}, got {dtype!r}"
        )
    if max_batch < 1:
        raise CompileError(f"max_batch must be >= 1, got {max_batch}")
    quantize = quantize or "none"
    if quantize not in ("none", "int8", "int16", "auto"):
        raise CompileError(
            f"quantize must be 'none', 'int8', 'int16' or 'auto', "
            f"got {quantize!r}"
        )
    if tolerance is not None and not tolerance > 0.0:
        raise CompileError(f"tolerance must be > 0, got {tolerance}")
    if not 0.0 <= min_block_fill <= 1.0:
        raise CompileError(
            f"min_block_fill must be in [0, 1], got {min_block_fill}"
        )
    block_shape = (int(block_shape[0]), int(block_shape[1]))
    overrides = list(kernels) if kernels is not None else [None] * network.n_layers
    if len(overrides) != network.n_layers:
        raise CompileError(
            f"kernels has {len(overrides)} entries for a "
            f"{network.n_layers}-layer network"
        )
    from repro.runtime.context import default_context

    ctx = context or default_context()
    predictor = ctx.predictor
    np_dtype = PLAN_DTYPES[dtype]

    started = time.perf_counter()
    with span(
        "compile.plan",
        dtype=dtype,
        layers=network.n_layers,
        mode="stable" if stable else "native",
        quantize=quantize,
    ):
        activations = _linear_activations(network)

        # ---- structure selection (dense vs csr vs block) -------------
        choices: list[_LayerChoice] = []
        for i, (linear, override) in enumerate(
            zip(network.linears, overrides), start=1
        ):
            csr = CsrMatrix.from_dense(linear.weight.data)
            block = None
            if block_sparse or override == BLOCK_KERNEL:
                fill_floor = 0.0 if override == BLOCK_KERNEL else min_block_fill
                regrouped = regroup_to_blocks(
                    csr, block_shape, min_fill=fill_floor
                )
                if isinstance(regrouped, BlockCsrMatrix):
                    block = regrouped
            times = predictor.layer_kernel_times_all(csr, block=block)
            dense_us = times[DENSE_KERNEL]
            sparse_us = times[SPARSE_KERNEL]
            block_us = times.get(BLOCK_KERNEL)
            forced_bits = None
            forced_float = False
            if override is None:
                # Block replaces scalar CSR as the sparse candidate when
                # regrouping met the fill gate; a float64 block layer
                # executes through scipy's SpMM, so it is gated like CSR.
                if block is not None and (
                    np_dtype == np.float32 or _scipy_sparsetools is not None
                ):
                    candidate, candidate_us = BLOCK_KERNEL, block_us
                elif _scipy_sparsetools is not None:
                    candidate, candidate_us = SPARSE_KERNEL, sparse_us
                else:
                    candidate, candidate_us = None, float("inf")
                structure = (
                    candidate
                    if candidate is not None and candidate_us < dense_us
                    else DENSE_KERNEL
                )
            elif override == DENSE_KERNEL:
                structure = DENSE_KERNEL
                forced_float = True
            elif override == SPARSE_KERNEL:
                if _scipy_sparsetools is None:
                    raise CompileError(
                        "csr-spmm was forced but scipy is unavailable"
                    )
                structure = SPARSE_KERNEL
                forced_float = True
            elif override == BLOCK_KERNEL:
                if block is None or block.n_blocks == 0:
                    raise CompileError(
                        f"block-spmm was forced for layer {i} but the "
                        f"matrix regroups to no stored blocks"
                    )
                if np_dtype == np.float64 and _scipy_sparsetools is None:
                    raise CompileError(
                        "block-spmm in float64 requires scipy "
                        "(expanded-CSR execution)"
                    )
                structure = BLOCK_KERNEL
                forced_float = True
            elif override == INT8_KERNEL:
                if linear.in_features > INT8_MAX_IN_WIDTH:
                    raise CompileError(
                        f"layer {i} in_width {linear.in_features} exceeds "
                        f"the int8 exact-accumulation bound "
                        f"({INT8_MAX_IN_WIDTH})"
                    )
                structure = DENSE_KERNEL
                forced_bits = 8
            elif override == INT16_KERNEL:
                structure = DENSE_KERNEL
                forced_bits = 16
            else:
                raise CompileError(
                    f"unknown kernel {override!r} for layer {i}; "
                    f"use one of {KERNEL_NAMES}"
                )
            choices.append(
                _LayerChoice(
                    linear=linear,
                    structure=structure,
                    csr=csr,
                    block=block,
                    activation=activations[i - 1],
                    dense_us=dense_us,
                    sparse_us=sparse_us,
                    block_us=block_us,
                    int8_us=times[INT8_KERNEL],
                    int16_us=times[INT16_KERNEL],
                    forced_bits=forced_bits,
                    forced_float=forced_float,
                )
            )

        # ---- bit-width assignment (dtype selection) ------------------
        n = len(choices)
        bits: list = [choice.forced_bits for choice in choices]
        eligible = [
            j
            for j, choice in enumerate(choices)
            if choice.structure == DENSE_KERNEL
            and not choice.forced_float
            and choice.forced_bits is None
        ]

        def default_bits(j: int) -> int:
            k = choices[j].linear.in_features
            return 8 if k <= INT8_MAX_IN_WIDTH else 16

        if quantize == "int8":
            for j in eligible:
                bits[j] = default_bits(j)
        elif quantize == "int16":
            for j in eligible:
                bits[j] = 16

        need_quant = quantize == "auto" and bool(eligible) or any(
            b is not None for b in bits
        )
        calib = None
        entry_maxima = [0.0] * n
        if need_quant:
            calib = _calibration_features(network, calibration)
            entry_maxima = _layer_input_maxima(network, calib)

        def build(bit_list, *, declared=None) -> InferencePlan:
            return _wire_plan(
                network,
                choices,
                bit_list,
                np_dtype=np_dtype,
                dtype_name=dtype,
                stable=stable,
                max_batch=max_batch,
                entry_maxima=entry_maxima,
                quantize_label=quantize,
                score_tolerance=declared,
                block_shape=block_shape,
                started=started,
            )

        declared: float | None = None
        if quantize == "auto" and eligible:
            budget = tolerance if tolerance is not None else DEFAULT_TOLERANCE
            target = budget / _AUTO_SAFETY
            for j in eligible:
                bits[j] = default_bits(j)
            dev = _score_deviation(network, build(bits), calib)
            if dev > target:
                # Rank the layers by solo quantization damage, then walk
                # the most sensitive ones up to int16 and back to float,
                # re-measuring after each step.
                sensitivity: dict[int, float] = {}
                for j in eligible:
                    solo: list = [choice.forced_bits for choice in choices]
                    solo[j] = default_bits(j)
                    sensitivity[j] = _score_deviation(
                        network, build(solo), calib
                    )
                order = sorted(eligible, key=lambda j: -sensitivity[j])
                for j in order:
                    if dev <= target or bits[j] != 8:
                        continue
                    bits[j] = 16
                    dev = _score_deviation(network, build(bits), calib)
                for j in order:
                    if dev <= target or bits[j] is None:
                        continue
                    bits[j] = None
                    dev = _score_deviation(network, build(bits), calib)
                if dev > target:
                    raise CompileError(
                        f"auto quantization cannot meet tolerance {budget} "
                        f"(deviation {dev:.3g} even without quantized "
                        f"layers); widen the tolerance or use float64"
                    )
            declared = budget
        elif need_quant:
            dev = _score_deviation(network, build(bits), calib)
            if tolerance is not None:
                if dev > tolerance:
                    raise CompileError(
                        f"quantized plan deviates {dev:.3g} from the "
                        f"float64 reference, above the declared "
                        f"tolerance {tolerance}"
                    )
                declared = tolerance
            else:
                declared = max(_TOLERANCE_MARGIN * dev, _TOLERANCE_FLOOR)

        plan = build(bits, declared=declared)

    record_compile(
        dtype=dtype,
        kernel_counts=plan.kernel_counts(),
        buffer_bytes=plan.buffer_bytes,
        compile_us=plan.compile_us,
    )
    return plan


def reference_scores(
    network: FeedForwardNetwork,
    plan: InferencePlan,
    features,
    *,
    strict_spmm: bool = False,
) -> np.ndarray:
    """The float64 hybrid reference a compiled plan must reproduce.

    Dense-GEMM layers run the eager ``x @ W.T + b`` op (or, for a
    stable-mode plan, the fixed-order ``einsum`` that kernel executes);
    CSR-SpMM **and block-SpMM** layers run :meth:`CsrMatrix.matmul` (or,
    with ``strict_spmm``, the per-non-zero
    :meth:`CsrMatrix.matmul_reference` loop — same bits, independently
    derived).  Quantized layers run the *unquantized* eager float64 op:
    the reference is what the exact network computes, and the plan's
    declared ``score_tolerance`` bounds the quantization deviation from
    it.  A float64 all-float plan must match this bit for bit; float32
    and quantized plans are tolerance-tested against it.
    """
    out = np.asarray(features, dtype=np.float64)
    if out.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    for lp, linear in zip(plan.layers, network.linears):
        if lp.kernel in (SPARSE_KERNEL, BLOCK_KERNEL):
            csr = CsrMatrix.from_dense(linear.weight.data)
            product = (
                csr.matmul_reference(out.T) if strict_spmm else csr.matmul(out.T)
            ).T
            # C-order like the plan's arenas: BLAS bits depend on the
            # operand layout, so the F-order ``.T`` view must not leak
            # into the next dense layer's GEMM.
            out = np.ascontiguousarray(product) + linear.bias.data
        elif plan.stable and lp.bits is None:
            out = (
                np.einsum("nk,mk->nm", out, linear.weight.data)
                + linear.bias.data
            )
        else:
            out = out @ linear.weight.data.T + linear.bias.data
        if lp.activation == "relu6":
            out = np.minimum(np.maximum(out, 0.0), 6.0)
    return out[:, 0]
