"""Ahead-of-time compiled inference plans (the paper's kernel layer).

The paper's efficiency argument lives in the innermost loop: each linear
layer runs either a dense GEMM (oneDNN's Goto kernels) or a sparse
micro-kernel (LIBXSMM), chosen per layer by the analytic time predictors
of Sections 4.2/4.4.  :func:`compile_network` reproduces that decision
ahead of time and freezes it into an executable :class:`InferencePlan`:

* **per-layer kernel selection** — each layer's measured sparsity is fed
  through the calibrated predictors
  (:meth:`~repro.timing.network_predictor.NetworkTimePredictor.
  layer_kernel_times`); the cheaper of dense GEMM and CSR SpMM wins;
* **weights pre-converted once** — a C-contiguous ``(m, k)`` copy plus a
  C-contiguous pre-transposed ``(k, m)`` copy for dense layers, CSR
  arrays for layers where sparse wins;
* **fused epilogues** — bias-add and ReLU6 execute in-place on the GEMM
  output, no intermediate activation matrices;
* **ping-pong activation buffers** — two scratch arenas sized once per
  ``(plan, max_batch)``; steady-state scoring allocates nothing on the
  heap (:meth:`InferencePlan.execute_into`).

Bit contract.  Dense and sparse kernels cannot share bits — their
reduction trees differ — so the plan guarantees a *layered* identity:

* ``float64`` dense-GEMM layers run ``np.matmul(x, W.T, out=...)`` on
  the frozen copy of the eager weight — bit-identical to
  ``FeedForwardNetwork.predict`` at every batch size (the transposed
  *view* is deliberate: a pre-transposed operand changes BLAS's kernel
  dispatch, and with it the last bit, at small batches);
* ``float64`` CSR-SpMM layers accumulate the stored non-zeros in
  ascending order — bit-identical to
  :meth:`~repro.matmul.csr.CsrMatrix.matmul_reference` (and to
  ``CsrMatrix.matmul``); :func:`reference_scores` materializes the
  matching hybrid reference;
* ``float32`` mode trades the bit contract for speed (the paper's
  kernels are fp32): pre-transposed operands, fp32 accumulation, and a
  tolerance-tested error bound against the float64 reference.

Serving needs one more property: the :class:`~repro.runtime.base.Scorer`
contract guarantees *chunk-invariant* scoring (micro-batching and
sharding may never change a ranking), and BLAS GEMM bits depend on the
batch shape — the same reason ``stable_forward`` routes serving matmuls
through a fixed-order ``einsum``.  ``compile_network(..., stable=True)``
therefore swaps the dense kernel for that einsum contract (the CSR
kernel is row-independent already) while keeping the frozen weights,
fused epilogues and preallocated buffers.  The ``compiled-network``
adapter compiles in stable mode, so it composes bit-identically with
:class:`~repro.runtime.parallel.ShardedScorer` and the batch engine;
native (default) plans keep the BLAS kernels and the ``predict`` bit
contract for offline scoring and benchmarking.  See
``docs/compiled.md``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError
from repro.matmul.csr import CsrMatrix
from repro.nn.layers import Dropout, Linear, ReLU6
from repro.nn.network import FeedForwardNetwork
from repro.obs.compile import record_compile
from repro.obs.requests import active_requests, annotate_requests
from repro.obs.tracer import span

try:  # the zero-allocation SpMM entry point; gated like repro.matmul.csr
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparsetools = None

__all__ = [
    "CompileError",
    "InferencePlan",
    "LayerPlan",
    "PLAN_DTYPES",
    "compile_network",
    "reference_scores",
]

#: Supported execution dtypes.
PLAN_DTYPES = {"float64": np.float64, "float32": np.float32}

#: Kernel names, as they appear in plans, metrics and the CLI probe.
DENSE_KERNEL = "dense-gemm"
SPARSE_KERNEL = "csr-spmm"


class CompileError(ReproError):
    """A network could not be compiled into an inference plan."""


@dataclass(frozen=True)
class LayerPlan:
    """One layer's frozen compilation decision."""

    index: int  # 1-based, matching the paper's Table 7
    in_width: int  # k of the weight matrix
    out_width: int  # m of the weight matrix
    kernel: str  # DENSE_KERNEL or SPARSE_KERNEL
    sparsity: float
    nnz: int
    predicted_dense_us_per_doc: float
    predicted_sparse_us_per_doc: float
    activation: str  # "relu6" or "none"

    @property
    def predicted_us_per_doc(self) -> float:
        """Predicted cost of the *chosen* kernel."""
        if self.kernel == SPARSE_KERNEL:
            return self.predicted_sparse_us_per_doc
        return self.predicted_dense_us_per_doc

    def describe(self) -> str:
        return (
            f"L{self.index} {self.out_width}x{self.in_width} "
            f"{self.kernel} @ {self.sparsity:.1%}"
        )


class _DenseKernel:
    """Frozen dense layer: GEMM + in-place bias (+ ReLU6 by the plan).

    ``w`` is the C-contiguous ``(m, k)`` copy whose transposed view
    reproduces the eager forward bit for bit in float64; ``wt`` is the
    C-contiguous pre-transposed ``(k, m)`` copy the float32 mode
    multiplies by directly (fastest layout on this axis, no bit
    contract to honour).  In stable mode the GEMM is replaced by the
    fixed-order ``einsum`` kernel whose per-row bits do not depend on
    the batch shape — the chunk-invariance contract serving requires
    (see :func:`~repro.runtime.base.stable_forward`).
    """

    __slots__ = ("w", "wt", "bias", "_exact", "_stable")

    def __init__(self, linear: Linear, dtype, stable: bool) -> None:
        self.w = np.ascontiguousarray(linear.weight.data, dtype=dtype)
        self.wt = None if stable else np.ascontiguousarray(self.w.T)
        self.bias = np.ascontiguousarray(linear.bias.data, dtype=dtype)
        self._exact = dtype == np.float64
        self._stable = stable

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        c = views.c
        if self._stable:
            np.einsum("nk,mk->nm", a, self.w, out=c)
        elif self._exact:
            np.matmul(a, self.w.T, out=c)
        else:
            np.matmul(a, self.wt, out=c)
        np.add(c, self.bias, out=c)
        return c


class _SparseKernel:
    """Frozen sparse layer: CSR SpMM into preallocated transposes.

    Computes ``C = (A @ X^T)^T`` through scipy's ``csr_matvecs``, which
    accumulates each output element over the stored non-zeros in
    ascending order — the reference reduction of
    :meth:`CsrMatrix.matmul_reference` — into a caller-provided buffer,
    so the hot path allocates nothing.
    """

    __slots__ = ("m", "k", "indptr", "indices", "data", "bias")

    def __init__(self, linear: Linear, csr: CsrMatrix, dtype) -> None:
        self.m, self.k = csr.shape
        self.indptr = np.ascontiguousarray(csr.row_ptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(csr.col_index, dtype=np.int64)
        self.data = np.ascontiguousarray(csr.values, dtype=dtype)
        self.bias = np.ascontiguousarray(linear.bias.data, dtype=dtype)

    def apply(self, a: np.ndarray, views) -> np.ndarray:
        c, xt, yt = views.c, views.xt, views.yt
        np.copyto(xt, a.T)
        yt.fill(0.0)
        _scipy_sparsetools.csr_matvecs(
            self.m,
            self.k,
            a.shape[0],
            self.indptr,
            self.indices,
            self.data,
            xt.ravel(),
            yt.ravel(),
        )
        np.copyto(c, yt.T)
        np.add(c, self.bias, out=c)
        return c


class _LayerViews:
    """Per-(layer, batch) buffer views, built once and reused."""

    __slots__ = ("c", "xt", "yt")

    def __init__(self, c, xt=None, yt=None) -> None:
        self.c = c
        self.xt = xt
        self.yt = yt


class InferencePlan:
    """An executable, frozen forward pass (built by :func:`compile_network`).

    The plan owns pre-converted weights, two ping-pong activation arenas
    and (for sparse layers) transpose scratch, all sized once from
    ``max_batch`` and held **per thread** so concurrent shard workers
    never share in-flight activations.  :meth:`score` is the allocating convenience wrapper;
    :meth:`execute_into` is the zero-allocation steady-state entry point
    the smoke gate measures.
    """

    def __init__(
        self,
        *,
        layers: tuple[LayerPlan, ...],
        kernels: list,
        input_dim: int,
        max_batch: int,
        dtype_name: str,
        stable: bool,
        fingerprint: str,
        compile_us: float,
        source: str,
    ) -> None:
        self.layers = layers
        self._kernels = kernels
        self.input_dim = int(input_dim)
        self.max_batch = int(max_batch)
        self.dtype_name = dtype_name
        self.dtype = PLAN_DTYPES[dtype_name]
        self.stable = bool(stable)
        self.fingerprint = fingerprint
        self.compile_us = compile_us
        self.source = source

        widths = [self.input_dim] + [lp.out_width for lp in layers]
        itemsize = np.dtype(self.dtype).itemsize
        self._arena = self.max_batch * max(widths)
        sparse_x = [lp.in_width for lp in layers if lp.kernel == SPARSE_KERNEL]
        sparse_y = [lp.out_width for lp in layers if lp.kernel == SPARSE_KERNEL]
        self._xt_size = self.max_batch * max(sparse_x) if sparse_x else 0
        self._yt_size = self.max_batch * max(sparse_y) if sparse_y else 0
        #: per-thread footprint of the arenas + transpose scratch.
        self.buffer_bytes = itemsize * (
            2 * self._arena + self._xt_size + self._yt_size
        )
        # Arenas and view caches live per thread: ShardedScorer scores
        # shards of one plan concurrently, and two in-flight batches
        # must never share the ping-pong activation scratch.  Within a
        # thread the views are still built once per batch size, so
        # steady-state scoring allocates nothing.
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def predicted_us_per_doc(self) -> float:
        """Sum of the chosen kernels' predicted per-document costs."""
        return sum(lp.predicted_us_per_doc for lp in self.layers)

    def kernel_counts(self) -> tuple[int, int]:
        """``(dense, sparse)`` layer counts."""
        sparse = sum(1 for lp in self.layers if lp.kernel == SPARSE_KERNEL)
        return len(self.layers) - sparse, sparse

    def describe(self) -> str:
        dense, sparse = self.kernel_counts()
        mode = "stable" if self.stable else "native"
        return (
            f"plan[{self.source}] {self.dtype_name}/{mode}, "
            f"{dense} dense + {sparse} sparse layers, "
            f"max_batch {self.max_batch}, "
            f"{self.predicted_us_per_doc:.2f} us/doc predicted"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _views_for(self, n: int) -> tuple:
        local = self._local
        cache = getattr(local, "views", None)
        if cache is None:
            local.ping = np.empty(self._arena, dtype=self.dtype)
            local.pong = np.empty(self._arena, dtype=self.dtype)
            local.xt = (
                np.empty(self._xt_size, dtype=self.dtype)
                if self._xt_size
                else None
            )
            local.yt = (
                np.empty(self._yt_size, dtype=self.dtype)
                if self._yt_size
                else None
            )
            cache = local.views = {}
        views = cache.get(n)
        if views is None:
            built = []
            src, dst = local.ping, local.pong
            for lp, kernel in zip(self.layers, self._kernels):
                c = dst[: n * lp.out_width].reshape(n, lp.out_width)
                if lp.kernel == SPARSE_KERNEL:
                    xt = local.xt[: lp.in_width * n].reshape(lp.in_width, n)
                    yt = local.yt[: lp.out_width * n].reshape(lp.out_width, n)
                    built.append(_LayerViews(c, xt, yt))
                else:
                    built.append(_LayerViews(c))
                src, dst = dst, src
            entry = local.ping[: n * self.input_dim].reshape(n, self.input_dim)
            views = cache[n] = (entry, tuple(built))
        return views

    def execute_into(self, features: np.ndarray, out: np.ndarray) -> None:
        """Score ``features`` into ``out`` with zero heap allocations.

        ``features`` must be 2-D with ``input_dim`` columns and at most
        ``max_batch`` rows; ``out`` must be a float64 vector of matching
        length.  After the first call at a given batch size, repeated
        calls at that size allocate nothing (the smoke gate asserts
        this with ``tracemalloc``).
        """
        n = features.shape[0]
        if n == 0:
            return
        if n > self.max_batch:
            raise CompileError(
                f"batch {n} exceeds the plan's max_batch {self.max_batch}"
            )
        entry, views = self._views_for(n)
        np.copyto(entry, features)
        self._run(entry, views)
        np.copyto(out, views[-1].c[:, 0], casting="unsafe")

    def _run(self, a: np.ndarray, views, timings=None) -> np.ndarray:
        for i, (lp, kernel) in enumerate(zip(self.layers, self._kernels)):
            start = time.perf_counter() if timings is not None else 0.0
            a = kernel.apply(a, views[i])
            if lp.activation == "relu6":
                np.maximum(a, 0.0, out=a)
                np.minimum(a, 6.0, out=a)
            if timings is not None:
                timings[i] = min(
                    timings[i], time.perf_counter() - start
                )
        return a

    def score(self, features) -> np.ndarray:
        """Scores as float64, chunked by ``max_batch``; allocates only
        the returned vector (and, in float32 mode, casts on the way in
        and out of the fp32 arenas)."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(
                f"features must be 2-dimensional, got shape {x.shape}"
            )
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {x.shape[1]}"
            )
        out = np.empty(len(x), dtype=np.float64)
        # Request tracing: stamp the plan identity onto whichever
        # coalesced requests are live in this thread's context.  The
        # kernel string is only built when a traced request is present.
        if active_requests():
            annotate_requests(
                plan=self.fingerprint[:12],
                plan_dtype=self.dtype_name,
                plan_kernels="/".join(lp.kernel for lp in self.layers),
            )
        with span(
            "plan.execute", dtype=self.dtype_name, rows=len(x)
        ):
            for start in range(0, len(x), self.max_batch):
                chunk = x[start : start + self.max_batch]
                self.execute_into(chunk, out[start : start + len(chunk)])
        return out

    def profile_layers(self, features, repeats: int = 20) -> list[float]:
        """Best-of-``repeats`` measured µs/doc per layer.

        Drives the normal buffers layer by layer with a timer around
        each kernel — the measurement half of the CLI probe's
        predicted-vs-measured table.
        """
        x = np.asarray(features, dtype=np.float64)
        n = x.shape[0]
        if not 0 < n <= self.max_batch:
            raise CompileError(
                f"profile batch must be in [1, {self.max_batch}], got {n}"
            )
        entry, views = self._views_for(n)
        timings = [float("inf")] * self.n_layers
        for _ in range(max(1, repeats)):
            np.copyto(entry, x)
            self._run(entry, views, timings=timings)
        return [t * 1e6 / n for t in timings]


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _plan_fingerprint(
    network: FeedForwardNetwork, dtype_name: str, stable: bool, choices
) -> str:
    """BLAKE2b over dtype, mode, architecture, kernels and the weights."""
    digest = hashlib.blake2b(digest_size=16)
    mode = "stable" if stable else "native"
    digest.update(f"plan:{dtype_name}:{mode}:{network.input_dim}".encode())
    for linear, kernel in zip(network.linears, choices):
        digest.update(kernel.encode())
        digest.update(np.ascontiguousarray(linear.weight.data).tobytes())
        digest.update(np.ascontiguousarray(linear.bias.data).tobytes())
    return digest.hexdigest()


def _linear_activations(network: FeedForwardNetwork) -> list[str]:
    """Activation following each linear layer, from the layer sequence."""
    acts: list[str] = []
    for layer in network.layers:
        if isinstance(layer, Linear):
            acts.append("none")
        elif isinstance(layer, ReLU6):
            if not acts or acts[-1] != "none":
                raise CompileError("ReLU6 without a preceding linear layer")
            acts[-1] = "relu6"
        elif isinstance(layer, Dropout):
            continue  # identity at inference
        else:
            raise CompileError(
                f"cannot compile layer type {type(layer).__name__}"
            )
    return acts


def compile_network(
    network: FeedForwardNetwork,
    *,
    context=None,
    dtype: str = "float64",
    max_batch: int = 4096,
    kernels=None,
    stable: bool = False,
) -> InferencePlan:
    """Compile a trained/pruned network into an :class:`InferencePlan`.

    Parameters
    ----------
    network:
        The :class:`FeedForwardNetwork` to freeze.  Weights are copied;
        later training steps do not leak into the plan (and change its
        fingerprint, so caches stay sound).
    context:
        :class:`~repro.runtime.context.PricingContext` supplying the
        calibrated predictors that arbitrate dense vs sparse per layer
        (defaults to the process-wide context).
    dtype:
        ``"float64"`` (bit-exact, the default) or ``"float32"`` (the
        paper's kernel precision; tolerance-bounded, not bit-exact).
    max_batch:
        Largest chunk the ping-pong buffers must hold; requests larger
        than this are split by :meth:`InferencePlan.score`.
    kernels:
        Optional per-layer override, a sequence of ``"dense-gemm"`` /
        ``"csr-spmm"`` / ``None`` (``None`` = let the predictors
        decide).  Forcing ``"csr-spmm"`` without scipy raises.
    stable:
        Swap the dense BLAS kernel for the fixed-order ``einsum``
        kernel, making per-row bits independent of the batch shape —
        the chunk-invariance contract the serving adapters guarantee.
        Native plans (the default) are faster and bit-identical to
        ``predict`` in float64, but their GEMM bits shift with chunk
        boundaries.
    """
    if not isinstance(network, FeedForwardNetwork):
        raise CompileError(
            f"expected a FeedForwardNetwork, got {type(network).__name__}"
        )
    if dtype not in PLAN_DTYPES:
        raise CompileError(
            f"dtype must be one of {sorted(PLAN_DTYPES)}, got {dtype!r}"
        )
    if max_batch < 1:
        raise CompileError(f"max_batch must be >= 1, got {max_batch}")
    overrides = list(kernels) if kernels is not None else [None] * network.n_layers
    if len(overrides) != network.n_layers:
        raise CompileError(
            f"kernels has {len(overrides)} entries for a "
            f"{network.n_layers}-layer network"
        )
    from repro.runtime.context import default_context

    ctx = context or default_context()
    predictor = ctx.predictor
    np_dtype = PLAN_DTYPES[dtype]

    started = time.perf_counter()
    with span(
        "compile.plan",
        dtype=dtype,
        layers=network.n_layers,
        mode="stable" if stable else "native",
    ):
        activations = _linear_activations(network)
        layer_plans: list[LayerPlan] = []
        built_kernels: list = []
        choices: list[str] = []
        for i, (linear, override) in enumerate(
            zip(network.linears, overrides), start=1
        ):
            csr = CsrMatrix.from_dense(linear.weight.data)
            dense_us, sparse_us = predictor.layer_kernel_times(csr)
            if override is None:
                chosen = SPARSE_KERNEL if sparse_us < dense_us else DENSE_KERNEL
                if _scipy_sparsetools is None:  # no SpMM entry point: gate
                    chosen = DENSE_KERNEL
            elif override in (DENSE_KERNEL, SPARSE_KERNEL):
                chosen = override
                if chosen == SPARSE_KERNEL and _scipy_sparsetools is None:
                    raise CompileError(
                        "csr-spmm was forced but scipy is unavailable"
                    )
            else:
                raise CompileError(
                    f"unknown kernel {override!r} for layer {i}; "
                    f"use {DENSE_KERNEL!r} or {SPARSE_KERNEL!r}"
                )
            layer_plans.append(
                LayerPlan(
                    index=i,
                    in_width=linear.in_features,
                    out_width=linear.out_features,
                    kernel=chosen,
                    sparsity=csr.sparsity,
                    nnz=csr.nnz,
                    predicted_dense_us_per_doc=dense_us,
                    predicted_sparse_us_per_doc=sparse_us,
                    activation=activations[i - 1],
                )
            )
            choices.append(chosen)
            if chosen == SPARSE_KERNEL:
                built_kernels.append(_SparseKernel(linear, csr, np_dtype))
            else:
                built_kernels.append(_DenseKernel(linear, np_dtype, stable))
        fingerprint = _plan_fingerprint(network, dtype, stable, choices)
        compile_us = (time.perf_counter() - started) * 1e6
        plan = InferencePlan(
            layers=tuple(layer_plans),
            kernels=built_kernels,
            input_dim=network.input_dim,
            max_batch=max_batch,
            dtype_name=dtype,
            stable=stable,
            fingerprint=fingerprint,
            compile_us=compile_us,
            source=network.describe(),
        )
    dense_n, sparse_n = plan.kernel_counts()
    record_compile(
        dtype=dtype,
        dense_layers=dense_n,
        sparse_layers=sparse_n,
        buffer_bytes=plan.buffer_bytes,
        compile_us=compile_us,
    )
    return plan


def reference_scores(
    network: FeedForwardNetwork,
    plan: InferencePlan,
    features,
    *,
    strict_spmm: bool = False,
) -> np.ndarray:
    """The float64 hybrid reference a compiled plan must reproduce.

    Dense-GEMM layers run the eager ``x @ W.T + b`` op (or, for a
    stable-mode plan, the fixed-order ``einsum`` that kernel executes);
    CSR-SpMM layers run :meth:`CsrMatrix.matmul` (or, with
    ``strict_spmm``, the per-non-zero
    :meth:`CsrMatrix.matmul_reference` loop — same bits, independently
    derived).  A float64 plan must match this bit for bit; a float32
    plan is tolerance-tested against it.
    """
    out = np.asarray(features, dtype=np.float64)
    if out.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    for lp, linear in zip(plan.layers, network.linears):
        if lp.kernel == SPARSE_KERNEL:
            csr = CsrMatrix.from_dense(linear.weight.data)
            product = (
                csr.matmul_reference(out.T) if strict_spmm else csr.matmul(out.T)
            ).T
            # C-order like the plan's arenas: BLAS bits depend on the
            # operand layout, so the F-order ``.T`` view must not leak
            # into the next dense layer's GEMM.
            out = np.ascontiguousarray(product) + linear.bias.data
        elif plan.stable:
            out = (
                np.einsum("nk,mk->nm", out, linear.weight.data)
                + linear.bias.data
            )
        else:
            out = out @ linear.weight.data.T + linear.bias.data
        if lp.activation == "relu6":
            out = np.minimum(np.maximum(out, 0.0), 6.0)
    return out[:, 0]
