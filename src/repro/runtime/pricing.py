"""One pricing surface for every model family.

``price(model_or_shape)`` is the single entry point that used to be
re-implemented as three separate dense/sparse/QuickScorer blocks in
``serving.py``, ``core/pipeline.py`` and the CLI.  It accepts either

* a **concrete model** (``TreeEnsemble``, ``DistilledStudent``,
  ``EarlyExitCascade``, or anything a registered backend handles) —
  priced by building its scorer and reading ``predicted_us_per_doc``; or
* a **shape** (:class:`ForestShape` / :class:`NetworkShape`, or any
  object carrying ``n_trees``/``n_leaves`` such as a zoo ``ForestSpec``)
  — priced analytically without training anything, which is how the
  paper's design loop and the benchmark tables locate paper-*named*
  models on the time axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forest.ensemble import TreeEnsemble
from repro.matmul.csr import CsrMatrix
from repro.runtime.context import PricingContext, default_context
from repro.timing.network_predictor import NetworkTimeReport


@dataclass(frozen=True)
class ForestShape:
    """A tree-ensemble shape to price (no trained trees required)."""

    n_trees: int
    n_leaves: int
    false_fraction: float | None = None
    blockwise: bool = True
    footprint_bytes: int | None = None

    def describe(self) -> str:
        return f"{self.n_trees} trees, {self.n_leaves} leaves"


@dataclass(frozen=True, eq=False)
class NetworkShape:
    """A feed-forward architecture to price.

    ``first_layer_matrix`` (a concrete pruned CSR weight matrix) takes
    precedence over ``first_layer_sparsity`` (worst-case Eq. 5); either
    selects hybrid sparse-first-layer pricing.  ``quantized_bits`` prices
    the same architecture executed on int-``bits`` kernels.
    """

    input_dim: int
    hidden: tuple[int, ...]
    first_layer_sparsity: float | None = None
    first_layer_matrix: CsrMatrix | None = None
    quantized_bits: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "hidden", tuple(int(h) for h in self.hidden))

    @property
    def is_sparse(self) -> bool:
        return (
            self.first_layer_matrix is not None
            or self.first_layer_sparsity is not None
        )

    def describe(self) -> str:
        return "x".join(str(w) for w in self.hidden)


def price_forest_shape(
    shape: ForestShape,
    context: PricingContext | None = None,
    *,
    device: str = "cpu",
    batch_docs: int = 10_000,
    n_features: int = 136,
) -> float:
    """µs/doc of a forest shape under the (CPU or GPU) QuickScorer model."""
    ctx = context or default_context()
    if device == "gpu":
        return ctx.gpu_cost.scoring_time_us(
            shape.n_trees,
            shape.n_leaves,
            batch_docs=batch_docs,
            n_features=n_features,
        )
    if device != "cpu":
        raise ValueError(f"device must be 'cpu' or 'gpu', got {device!r}")
    return ctx.qs_cost.scoring_time_us(
        shape.n_trees,
        shape.n_leaves,
        false_fraction=shape.false_fraction,
        blockwise=shape.blockwise,
        forest_footprint_bytes=shape.footprint_bytes,
    )


def network_report(
    shape: NetworkShape, context: PricingContext | None = None
) -> NetworkTimeReport:
    """Full dense/sparse timing report for an architecture."""
    ctx = context or default_context()
    return ctx.predictor.predict(
        shape.input_dim,
        shape.hidden,
        first_layer_sparsity=shape.first_layer_sparsity,
        first_layer_matrix=shape.first_layer_matrix,
    )


def price_network_shape(
    shape: NetworkShape, context: PricingContext | None = None
) -> float:
    """µs/doc of a network shape: dense, hybrid sparse, or quantized."""
    ctx = context or default_context()
    if shape.quantized_bits is not None:
        timing = ctx.quantized_timing(shape.quantized_bits)
        if shape.is_sparse:
            return timing.hybrid_time_us(
                shape.input_dim,
                shape.hidden,
                first_layer_matrix=shape.first_layer_matrix,
                first_layer_sparsity=shape.first_layer_sparsity,
            )
        return timing.dense_time_us(shape.input_dim, shape.hidden)
    report = network_report(shape, ctx)
    if shape.is_sparse:
        return float(report.hybrid_total_us_per_doc)
    return float(report.dense_total_us_per_doc)


def price(
    model,
    *,
    context: PricingContext | None = None,
    backend: str | None = None,
    **opts,
) -> float:
    """Predicted µs/doc of a model or shape — the one pricing function.

    Concrete models go through the scorer registry (``make_scorer``),
    so a backend registered by downstream code is priced with no change
    here; shapes are priced analytically.  Extra keyword arguments are
    forwarded to the backend builder (for models) or the shape pricer
    (for shapes, e.g. ``device="gpu"``).
    """
    ctx = context or default_context()
    if isinstance(model, ForestShape):
        return price_forest_shape(model, ctx, **opts)
    if isinstance(model, NetworkShape):
        return price_network_shape(model, ctx)
    if (
        not isinstance(model, TreeEnsemble)
        and hasattr(model, "n_trees")
        and hasattr(model, "n_leaves")
    ):
        # Duck-typed forest shapes, e.g. the zoo's ForestSpec: priced at
        # the *named* shape, the paper's convention for scaled forests.
        return price_forest_shape(
            ForestShape(model.n_trees, model.n_leaves), ctx, **opts
        )
    from repro.runtime.registry import make_scorer

    return make_scorer(
        model, backend=backend, context=ctx, **opts
    ).predicted_us_per_doc
