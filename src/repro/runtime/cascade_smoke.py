"""Self-checking cascade pipeline smoke run (``make cascade-smoke``).

Exercises the budgeted ranking pipeline end to end and *asserts* the
outcomes, so CI can gate on ``python -m repro.runtime.cascade_smoke``:

1. **Bit-determinism** — a fixed-seed three-stage pipeline scored twice,
   and a second pipeline rebuilt from the same JSON-round-tripped
   :class:`~repro.runtime.ranking.PipelineConfig`, must reproduce every
   score bit for bit.
2. **Refinement invariant** — on every query, every document cut at
   stage ``i`` must rank strictly below every document the next stage
   evaluated ("refinement, never a shuffle"), and survivor sets must
   nest.
3. **Budget** — each query's ``predicted_spend_us`` must equal the
   closed-form :meth:`predicted_query_spend_us` replay and never exceed
   ``max(budget, n_docs * cost_1)``; a deliberately tight budget must
   actually trigger early exits.
4. **Zero-doc no-op** — an empty query returns an empty float64 array
   and ``score_dataset`` tolerates a dataset containing an empty query
   slice, matching the batch engine's contract.
5. **Observability** — the ``cascade.*`` series must have recorded the
   traffic, including the early exits, and the funnel report renders.

Exits non-zero on any violation.
"""

from __future__ import annotations

import json
import sys

import numpy as np


def _build(budget_us: float | None, registry=None):
    """A three-stage probe pipeline behind a fresh ScoringService."""
    from repro.obs.probe import build_probe_models
    from repro.runtime import PipelineConfig, ServiceConfig
    from repro.serving import ScoringService

    models = build_probe_models(n_queries=10, docs_per_query=24, seed=3)
    config = PipelineConfig(
        stages=[
            {"model": "sparse-network", "keep_fraction": 0.4},
            {"model": "dense-network", "keep_fraction": 0.5},
            {"model": "quickscorer"},
        ],
        budget_us_per_query=budget_us,
    )
    # The config must survive JSON — it is the deployable artifact.
    config = PipelineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    service = ScoringService(
        {name: m for name, m in models.items() if name != "dataset"},
        ServiceConfig(pipeline=config, max_batch_size=None),
    )
    return models["dataset"], service


def check_determinism() -> None:
    """Same seed, same config => the same bits, across rebuilds."""
    dataset, service = _build(budget_us=None)
    first = [
        service.score(dataset.features[dataset.query_slice(q)])
        for q in range(dataset.n_queries)
    ]
    second = [
        service.score(dataset.features[dataset.query_slice(q)])
        for q in range(dataset.n_queries)
    ]
    _, rebuilt = _build(budget_us=None)
    third = [
        rebuilt.score(dataset.features[dataset.query_slice(q)])
        for q in range(dataset.n_queries)
    ]
    for q, (a, b, c) in enumerate(zip(first, second, third)):
        np.testing.assert_array_equal(
            a, b, err_msg=f"query {q}: repeat scoring diverged"
        )
        np.testing.assert_array_equal(
            a, c, err_msg=f"query {q}: rebuilt pipeline diverged"
        )
    print(
        f"determinism: {dataset.n_queries} queries scored bit-identically "
        "across repeats and a config-rebuilt pipeline"
    )


def check_refinement() -> None:
    """Dropouts of stage i rank below everything stage i+1 evaluated."""
    dataset, service = _build(budget_us=None)
    pipeline = service.pipeline
    checked = 0
    for q in range(dataset.n_queries):
        x = dataset.features[dataset.query_slice(q)]
        result = pipeline.score_query_detailed(x)
        for level in range(result.stages_run - 1):
            upper = set(result.survivors[level + 1].tolist())
            assert upper <= set(result.survivors[level].tolist()), (
                f"query {q}: stage {level + 1} evaluated documents "
                "stage {level} never promoted"
            )
            dropped = [
                d for d in result.survivors[level].tolist() if d not in upper
            ]
            if not dropped:
                continue
            floor = min(result.scores[sorted(upper)])
            ceiling = max(result.scores[dropped])
            assert ceiling < floor, (
                f"query {q}: a stage-{level} dropout (score {ceiling}) "
                f"outranks a stage-{level + 1} survivor (score {floor})"
            )
            checked += 1
    assert checked > 0, "no survivor cuts were exercised"
    print(f"refinement: {checked} stage cuts kept dropouts below survivors")


def check_budget() -> None:
    """Predicted spend matches the closed form and respects the budget."""
    budget_us = 2.0  # deliberately tight: forces early exits
    dataset, service = _build(budget_us=budget_us)
    pipeline = service.pipeline
    first_cost = pipeline.stages[0].cost_us_per_doc
    exits = 0
    for q in range(dataset.n_queries):
        x = dataset.features[dataset.query_slice(q)]
        result = pipeline.score_query_detailed(x)
        bound = max(budget_us, len(x) * first_cost)
        assert result.predicted_spend_us <= bound + 1e-9, (
            f"query {q}: predicted spend {result.predicted_spend_us:.3f} us "
            f"exceeds the bound max(budget, n*c1) = {bound:.3f} us"
        )
        replay = pipeline.predicted_query_spend_us(len(x))
        assert abs(result.predicted_spend_us - replay) < 1e-9, (
            f"query {q}: detailed spend {result.predicted_spend_us:.6f} != "
            f"closed-form replay {replay:.6f}"
        )
        exits += result.exited_early
        # Also serve the query through the adapter so the early exit
        # lands in the cascade.* series check_observability reads back.
        service.score(x)
    assert exits > 0, (
        f"a {budget_us} us/query budget never triggered an early exit"
    )
    # An unbudgeted run must execute every stage on every query.
    dataset2, unbudgeted = _build(budget_us=None)
    full = unbudgeted.pipeline.score_query_detailed(
        dataset2.features[dataset2.query_slice(0)]
    )
    assert full.stages_run == len(unbudgeted.pipeline.stages)
    assert not full.exited_early
    print(
        f"budget: spend == closed form on {dataset.n_queries} queries, "
        f"{exits} early exits under a {budget_us:.0f} us/query budget"
    )


class _DatasetWithEmptyQuery:
    """Duck-typed dataset exposing an empty middle query slice."""

    def __init__(self, features: np.ndarray) -> None:
        self.features = features
        self.n_docs = len(features)
        self.n_queries = 3
        half = self.n_docs // 2
        self._slices = [
            slice(0, half),
            slice(half, half),  # the empty query
            slice(half, self.n_docs),
        ]

    def query_slice(self, qi: int) -> slice:
        return self._slices[qi]


def check_zero_doc() -> None:
    """Empty queries are no-ops, alone and inside a dataset sweep."""
    dataset, service = _build(budget_us=None)
    pipeline = service.pipeline
    n_features = dataset.features.shape[1]
    empty = pipeline.score_query(np.zeros((0, n_features)))
    assert empty.shape == (0,) and empty.dtype == np.float64, (
        f"zero-doc query must return an empty float64 array, "
        f"got shape {empty.shape} dtype {empty.dtype}"
    )
    via_engine = service.score(np.zeros((0, n_features)))
    assert via_engine.shape == (0,), "engine zero-doc no-op broken"
    stub = _DatasetWithEmptyQuery(dataset.features[:30])
    scores = pipeline.score_dataset(stub)
    assert scores.shape == (30,) and np.isfinite(scores).all(), (
        "score_dataset over an empty query slice corrupted its output"
    )
    print("zero-doc: empty queries no-op alone and inside score_dataset")


def check_observability() -> None:
    """The cascade.* series must reflect the traffic just served."""
    from repro import obs

    report = obs.cascade_report()
    assert report.rows, "no cascade.* series recorded"
    funnel = report.pipeline("pipeline")
    assert funnel, "pipeline funnel rows missing from the report"
    assert funnel[0].queries > 0, "cascade.stage_queries counter is empty"
    assert funnel[0].docs_per_query >= funnel[-1].docs_per_query, (
        "the survivor funnel must narrow from first to last stage"
    )
    total_exits = sum(report.early_exits.values())
    assert total_exits > 0, "the budgeted run's early exits were not recorded"
    rendered = report.render()
    assert "Cascade funnel" in rendered and "sparse-network" in rendered
    print(
        f"obs: {sum(report.queries.values())} cascade queries recorded, "
        f"{total_exits} early exits in the series"
    )


def main() -> int:
    check_determinism()
    check_refinement()
    check_budget()
    check_zero_doc()
    check_observability()
    from repro import obs

    print()
    print(obs.cascade_report().render())
    print(
        "cascade-smoke: pipelines are deterministic refinements that "
        "respect their budgets"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
