"""Self-checking model-lifecycle smoke run (``make lifecycle-smoke``).

Exercises the versioned registry, the zero-downtime hot swap and the
shadow-scored promotion gate end to end and *asserts* the outcomes, so
CI can gate on ``python -m repro.runtime.lifecycle_smoke``:

1. **Atomic hot swap under load** — a closed-loop load run fires a
   forced swap halfway through its offered requests.  Zero requests may
   fail or shed, every request must be served by exactly one of the two
   versions (counts add up), pre-swap scoring must be bit-identical to
   the incumbent and post-swap scoring bit-identical to the candidate,
   and the promotion must invalidate the incumbent's fingerprint-keyed
   :class:`~repro.runtime.parallel.ScoreCache` rows.
2. **Shadow gate** — a near-identical candidate must pass the
   drift/NDCG-agreement gate and promote automatically; a deliberately
   regressed candidate (negated output layer) must trip the gate and be
   rolled back automatically, leaving the incumbent active and its
   shadow-warmed cache rows invalidated.
3. **Replay → redistill** — served traffic must fill the Zipf-aware
   replay reservoir (with dedup observed), and
   :meth:`~repro.runtime.lifecycle.LifecycleManager.redistill` must
   fine-tune the active student on it and swap the result in.
4. **Observability** — the ``lifecycle.*`` series must have recorded
   per-version traffic, the swaps and the rollback, and the report
   renders.

Exits non-zero on any violation.
"""

from __future__ import annotations

import sys

import numpy as np


def _make_candidates(seed: int = 0):
    """The incumbent student plus a good and a regressed candidate."""
    from repro.obs.probe import build_probe_models

    models = build_probe_models(n_queries=8, docs_per_query=12, seed=seed)
    incumbent = models["dense-network"]
    good = incumbent.clone()
    for param in (good.network.linears[-1].weight, good.network.linears[-1].bias):
        param.data *= 1.001
    regressed = incumbent.clone()
    for param in (
        regressed.network.linears[-1].weight,
        regressed.network.linears[-1].bias,
    ):
        param.data *= -1.0
    return models["dataset"], incumbent, good, regressed


def _service(incumbent, lifecycle=None, cache_entries: int = 4096):
    from repro.runtime import LifecycleConfig, ParallelConfig, ServiceConfig
    from repro.serving import ScoringService

    return ScoringService(
        incumbent,
        ServiceConfig(
            max_batch_size=None,
            parallel=ParallelConfig(workers=2, cache_entries=cache_entries),
            lifecycle=lifecycle or LifecycleConfig(shadow_mode="sync"),
        ),
    )


def check_hot_swap_under_load() -> None:
    """A forced mid-run swap loses nothing and splits traffic cleanly."""
    from repro.serving import LoadSpec, ScoringService, make_queries, run_load

    dataset, incumbent, good, _ = _make_candidates(seed=0)
    n_features = dataset.features.shape[1]
    probe = dataset.features[dataset.query_slice(0)]
    ref_incumbent = ScoringService(incumbent).score(probe)
    ref_candidate = ScoringService(good).score(probe)
    assert not np.array_equal(ref_incumbent, ref_candidate), (
        "the candidate must actually score differently for the "
        "bit-identity check to mean anything"
    )

    service = _service(incumbent)
    np.testing.assert_array_equal(
        service.score(probe),
        ref_incumbent,
        err_msg="pre-swap scoring diverged from the incumbent",
    )
    spec = LoadSpec(
        mode="closed",
        workers=4,
        requests_per_worker=12,
        n_queries=8,
        docs_per_query=12,
        seed=7,
    )
    queries = make_queries(spec, n_features)
    report = run_load(
        service,
        spec,
        queries,
        swap_at=0.5,
        swap_fn=lambda front: front.swap(good, version="v2", force=True),
    )
    assert report.errors == 0, f"{report.errors} requests errored"
    assert report.shed == 0, f"{report.shed} requests shed during the swap"
    assert report.served == report.offered, (
        f"served {report.served} != offered {report.offered}"
    )
    assert len(report.swap_events) == 1, report.swap_events
    event = report.swap_events[0]
    assert event["action"] == "forced", event
    assert event["event"]["invalidated"] > 0, (
        "the promotion must invalidate the incumbent's fingerprint-keyed "
        f"cache rows, got {event['event']}"
    )
    assert set(report.served_by_version) == {"v1", "v2"}, (
        f"expected both versions to serve, got {report.served_by_version}"
    )
    assert all(n > 0 for n in report.served_by_version.values())
    total = sum(report.served_by_version.values())
    assert total == report.served, (
        f"per-version counts {report.served_by_version} do not add up to "
        f"{report.served} served requests"
    )
    np.testing.assert_array_equal(
        service.score(probe),
        ref_candidate,
        err_msg="post-swap scoring diverged from the candidate",
    )
    assert service.registry.active.version_id == "v2"
    service.close()
    print(
        f"hot swap: {report.served}/{report.offered} served across "
        f"{report.served_by_version}, 0 shed, 0 errors, "
        f"{event['event']['invalidated']} cache rows invalidated, "
        "pre/post bits exact"
    )


def check_shadow_gate() -> None:
    """Good candidates promote through the gate; regressed ones roll back."""
    from repro.runtime import LifecycleConfig

    dataset, incumbent, good, regressed = _make_candidates(seed=1)
    service = _service(
        incumbent,
        lifecycle=LifecycleConfig(
            shadow_mode="sync",
            shadow_fraction=1.0,
            shadow_min_requests=6,
        ),
    )
    queries = [
        dataset.features[dataset.query_slice(q)]
        for q in range(dataset.n_queries)
    ]

    outcome = service.swap(good, version="good")
    assert outcome["action"] == "shadowing", outcome
    for q in range(6):
        service.score(queries[q % len(queries)])
    summary = service.lifecycle_summary()
    assert summary["state"] == "serving", summary["state"]
    assert service.registry.active.version_id == "good", (
        f"gate did not promote the good candidate: {summary['gate']}"
    )
    gate = summary["gate"]
    assert gate["passed"] and gate["compared"] >= 6, gate
    assert gate["mean_drift_pct"] < 1.0, gate
    assert gate["mean_agreement"] > 0.99, gate

    outcome = service.swap(regressed, version="bad")
    assert outcome["action"] == "shadowing", outcome
    for q in range(6):
        service.score(queries[q % len(queries)])
    summary = service.lifecycle_summary()
    assert service.registry.active.version_id == "good", (
        "the regressed candidate must never activate"
    )
    gate = summary["gate"]
    assert not gate["passed"] and gate["reasons"], gate
    last = summary["swap_events"][-1]
    assert last["kind"] == "rolled-back", last
    assert last["invalidated"] > 0, (
        "the rejected candidate's shadow-warmed cache rows must be "
        f"invalidated, got {last}"
    )
    service.close()
    print(
        f"shadow gate: good candidate promoted "
        f"(drift {summary['swap_events'][0]['mean_drift_pct']:.3f}%), "
        f"regressed candidate rolled back on: {'; '.join(gate['reasons'])}"
    )


def check_replay_redistill() -> None:
    """Served traffic fills the replay reservoir and redistill swaps in."""
    from repro.runtime import LifecycleConfig

    dataset, incumbent, _, _ = _make_candidates(seed=2)
    service = _service(
        incumbent,
        lifecycle=LifecycleConfig(
            shadow_mode="sync", replay_capacity=64, replay_seed=3
        ),
        cache_entries=0,
    )
    queries = [
        dataset.features[dataset.query_slice(q)]
        for q in range(dataset.n_queries)
    ]
    for _ in range(3):  # repeats: the reservoir must dedup
        for x in queries:
            service.score(x)
    replay = service.lifecycle.replay
    assert len(replay) > 0, "replay buffer stayed empty"
    assert replay.total_rows > replay.distinct, (
        "repeated queries must register as duplicate popularity, got "
        f"{replay.snapshot()}"
    )
    outcome = service.redistill(
        epochs=1, version="redistilled", force=True, seed=0
    )
    assert outcome["action"] == "forced", outcome
    active = service.registry.active
    assert active.version_id == "redistilled"
    assert active.source == "redistilled"
    scores = service.score(queries[0])
    assert scores.shape == (len(queries[0]),) and np.isfinite(scores).all()
    service.close()
    print(
        f"replay/redistill: {len(replay)} rows "
        f"({replay.total_rows} offered) fine-tuned and swapped in as "
        f"{active.version_id!r}"
    )


def check_observability() -> None:
    """The lifecycle.* series must reflect the traffic just served."""
    from repro import obs

    report = obs.lifecycle_report()
    assert report.rows, "no lifecycle.* series recorded"
    by_version = {row.version: row for row in report.rows}
    for version in ("v1", "v2", "good", "bad"):
        assert version in by_version, f"no lifecycle rows for {version!r}"
    assert by_version["v1"].requests > 0
    assert by_version["bad"].shadow_requests > 0, (
        "the regressed candidate's shadow comparisons were not recorded"
    )
    assert report.swaps >= 2, f"expected >= 2 swaps, got {report.swaps}"
    assert report.rollbacks >= 1, "the rollback was not recorded"
    rendered = report.render()
    assert "Model lifecycle" in rendered and "rollbacks:" in rendered
    print(
        f"obs: {len(report.rows)} versions in the series, "
        f"{report.swaps} swaps, {report.rollbacks} rollback(s) recorded"
    )


def main() -> int:
    check_hot_swap_under_load()
    check_shadow_gate()
    check_replay_redistill()
    check_observability()
    from repro import obs

    print()
    print(obs.lifecycle_report().render())
    print(
        "lifecycle-smoke: hot swaps are atomic, gated by shadow evidence, "
        "and lose no requests"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
