"""Self-checking parallel-scoring smoke run (``make parallel-smoke``).

Exercises the sharded scoring engine end to end and *asserts* the
outcomes, so CI can gate on ``python -m repro.runtime.parallel_smoke``:

1. **Bit-identity** — every probe backend (``quickscorer``,
   ``dense-network``, ``sparse-network``, and the AOT
   ``compiled-network`` plan over the pruned student), sharded under
   every strategy and several worker counts, cache cold and warm, must
   reproduce plain ``Scorer.score`` bit for bit.  This is the property
   that makes the engine adoptable: parallelism may never change a
   ranking.
2. **Cache effectiveness** — a warm second pass over the same workload
   must be fully served from the :class:`ScoreCache` (hit ratio over
   the two passes >= 0.5) and must be measurably *faster* than the cold
   pass (speedup > 1) on a heavy student network, where scoring
   dominates row hashing.
3. **Pool speedup** — with >= 2 physical cores, 2 workers must beat 1
   worker on a large dense batch (numpy releases the GIL, so shards
   overlap).  On single-core hosts this check is skipped with a note:
   no thread pool can beat sequential execution there.
4. **Observability** — the ``parallel.*`` series must have recorded the
   traffic and the report must render with a finite hit ratio.

Exits non-zero on any violation.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np


def check_bit_identity() -> None:
    """Sharded == plain, across backends x strategies x cache states."""
    from repro.obs.probe import build_probe_models
    from repro.runtime import ParallelConfig, ShardedScorer, make_scorer

    models = build_probe_models(n_queries=8, docs_per_query=16, seed=0)
    features = models["dataset"].features
    configs = [
        ParallelConfig(workers=1),
        ParallelConfig(workers=2),
        ParallelConfig(workers=3, strategy="size-capped", max_shard_rows=17),
        ParallelConfig(workers=2, strategy="cost-weighted", target_shard_us=200.0),
        ParallelConfig(workers=2, cache_entries=4096),
    ]
    targets = [
        ("quickscorer", "quickscorer"),
        ("dense-network", "dense-network"),
        ("sparse-network", "sparse-network"),
        # the AOT plan over the pruned probe student: sharding composes
        # with compiled execution without touching either layer
        ("compiled-network", "sparse-network"),
    ]
    checked = 0
    for backend, model_key in targets:
        plain = make_scorer(models[model_key], backend=backend)
        reference = plain.score(features)
        for config in configs:
            if config.strategy == "cost-weighted" and not np.isfinite(
                plain.predicted_us_per_doc
            ):
                continue
            with ShardedScorer(plain, config) as sharded:
                for label in ("cold", "warm"):
                    got = sharded.score(features)
                    np.testing.assert_array_equal(
                        got,
                        reference,
                        err_msg=(
                            f"{backend} under {config} ({label}) diverged "
                            "from plain scoring"
                        ),
                    )
                    checked += 1
    assert checked >= 32, f"only {checked} identity checks ran"
    print(
        f"bit-identity: {checked} sharded/cached passes reproduce plain "
        "scoring exactly"
    )


def _heavy_student(n_features: int, seed: int):
    """A wide student whose scoring cost dwarfs per-row hashing."""
    from repro.datasets import ZNormalizer
    from repro.distill.student import DistilledStudent
    from repro.nn import FeedForwardNetwork

    rng = np.random.default_rng(seed)
    normalizer = ZNormalizer()
    normalizer.fit(rng.standard_normal((64, n_features)))
    network = FeedForwardNetwork(n_features, (256, 128, 64), seed=seed)
    return DistilledStudent(network, normalizer)


def check_cache_speedup() -> None:
    """A warm cache pass must be fully hit and faster than cold."""
    from repro.runtime import ParallelConfig, ShardedScorer, make_scorer

    rng = np.random.default_rng(7)
    n_rows, n_features = 3000, 136
    x = rng.standard_normal((n_rows, n_features))
    scorer = make_scorer(_heavy_student(n_features, 7), backend="dense-network")
    with ShardedScorer(
        scorer, ParallelConfig(workers=1, cache_entries=2 * n_rows)
    ) as sharded:
        best_cold = best_warm = float("inf")
        for _ in range(3):
            sharded.cache.clear()
            start = time.perf_counter()
            sharded.score(x)
            best_cold = min(best_cold, time.perf_counter() - start)
            start = time.perf_counter()
            sharded.score(x)
            best_warm = min(best_warm, time.perf_counter() - start)
        hit_ratio = sharded.cache.hit_ratio
    assert hit_ratio >= 0.5, f"warm pass not cache-served: {hit_ratio:.1%}"
    speedup = best_cold / best_warm
    assert speedup > 1.0, (
        f"cache-warm pass must beat cold scoring, got {speedup:.2f}x "
        f"(cold {best_cold * 1e3:.1f} ms, warm {best_warm * 1e3:.1f} ms)"
    )
    print(
        f"cache: warm pass {speedup:.1f}x faster than cold "
        f"(hit ratio {hit_ratio:.0%})"
    )


def check_pool_speedup() -> None:
    """Two workers must beat one on a large batch — given two cores."""
    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            f"pool: skipped multi-worker speedup check "
            f"(host has {cores} core; threads cannot beat sequential)"
        )
        return
    from repro.runtime import ParallelConfig, ShardedScorer, make_scorer

    rng = np.random.default_rng(11)
    x = rng.standard_normal((6000, 136))
    scorer = make_scorer(_heavy_student(136, 11), backend="dense-network")

    def best_of(workers: int, repeats: int = 5) -> float:
        best = float("inf")
        with ShardedScorer(scorer, ParallelConfig(workers=workers)) as s:
            for _ in range(repeats):
                start = time.perf_counter()
                s.score(x)
                best = min(best, time.perf_counter() - start)
        return best

    one, two = best_of(1), best_of(2)
    speedup = one / two
    assert speedup > 1.0, (
        f"2 workers must beat 1 on {cores} cores, got {speedup:.2f}x "
        f"(1w {one * 1e3:.1f} ms, 2w {two * 1e3:.1f} ms)"
    )
    print(f"pool: 2 workers {speedup:.2f}x faster than 1 ({cores} cores)")


def check_observability() -> None:
    """The parallel.* series must reflect the traffic just served."""
    import math

    from repro import obs

    report = obs.parallel_report()
    assert report.rows, "no parallel.* series recorded"
    total_requests = sum(row.requests for row in report.rows)
    assert total_requests > 0, "parallel.requests counter is empty"
    dense = report.backend("dense-network")
    assert dense is not None, "dense-network row missing from the report"
    assert math.isfinite(dense.cache_hit_ratio) and dense.cache_hit_ratio > 0, (
        f"expected a finite positive cache hit ratio, got "
        f"{dense.cache_hit_ratio}"
    )
    rendered = report.render()
    assert "Parallel scoring" in rendered and "dense-network" in rendered
    print(
        f"obs: {total_requests} sharded requests recorded, "
        f"dense cache hit ratio {dense.cache_hit_ratio:.0%}"
    )


def main() -> int:
    check_bit_identity()
    check_cache_speedup()
    check_pool_speedup()
    check_observability()
    from repro import obs

    print()
    print(obs.parallel_report().render())
    print("parallel-smoke: sharding is bit-identical and the cache pays off")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
