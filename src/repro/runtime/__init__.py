"""The unified scoring runtime.

One surface for "score documents with any model at a known price":

* :class:`Scorer` — the protocol every backend adapts to;
* :func:`make_scorer` — registry-dispatched adapter construction;
* :func:`price` — the single pricing function over models *and* shapes;
* :class:`BatchEngine` — micro-batched, budget-checked execution with
  latency percentiles;
* :func:`register_backend` — the plug-in point for new model families;
* :class:`ResilientScorer` / :class:`FallbackChain` — retries,
  deadlines, circuit breaking and graceful degradation over any
  backend (see ``docs/resilience.md``);
* :class:`FaultPolicy` / :class:`FaultyScorer` — deterministic fault
  injection so the resilience layer is testable without real outages;
* :class:`ShardedScorer` / :class:`ScoreCache` — row-sharded parallel
  execution over a persistent worker pool with an optional LRU score
  cache, bit-identical to unsharded scoring (see ``docs/parallel.md``);
* :class:`ServiceConfig` / :class:`ResilienceConfig` /
  :class:`ParallelConfig` / :class:`AsyncConfig` / :class:`TenantConfig`
  — the typed configuration surface a
  :class:`~repro.serving.ScoringService` (and its asyncio front-end,
  :class:`~repro.serving.AsyncScoringService`) is built from;
* :func:`compile_network` / :class:`InferencePlan` — ahead-of-time
  compiled forward passes: per-layer dense/sparse kernel selection by
  the calibrated predictors, frozen weights, fused epilogues and
  zero-allocation ping-pong buffers, served through the
  ``compiled-network`` backend (see ``docs/compiled.md``);
* :class:`RankingPipeline` / :class:`PipelineConfig` /
  :func:`build_pipeline` — declarative multi-stage budgeted ranking
  cascades served through the ``cascade`` backend (see
  ``docs/cascade.md``);
* :class:`ModelRegistry` / :class:`VersionedScorer` /
  :class:`LifecycleManager` / :class:`LifecycleConfig` — versioned,
  fingerprinted model entries with zero-downtime hot swap,
  shadow-scored promotion gates and automatic rollback (see
  ``docs/lifecycle.md``).

See ``docs/runtime.md`` for the design and extension guide.
"""

from repro.runtime.adapters import (
    CascadeScorer,
    CompiledNetworkScorer,
    DenseNetworkScorer,
    GpuQuickScorerAdapter,
    QuantizedNetworkScorer,
    QuickScorerAdapter,
    SparseNetworkScorer,
)
from repro.runtime.base import BaseScorer, Scorer, is_scorer, stable_forward
from repro.runtime.batching import BatchEngine, BudgetExceededError, ServiceStats
from repro.runtime.compile import (
    BLOCK_KERNEL,
    CompileError,
    DENSE_KERNEL,
    INT8_KERNEL,
    INT16_KERNEL,
    InferencePlan,
    LayerPlan,
    SPARSE_KERNEL,
    compile_network,
    reference_scores,
)
from repro.runtime.config import (
    AsyncConfig,
    ResilienceConfig,
    ServiceConfig,
    TenantConfig,
)
from repro.runtime.context import (
    PricingContext,
    default_context,
    set_default_context,
    shared_predictor,
)
from repro.runtime.lifecycle import (
    GateReport,
    LifecycleConfig,
    LifecycleError,
    LifecycleManager,
    ModelRegistry,
    ModelVersion,
    ShadowStats,
    SwapEvent,
    VersionedScorer,
    ranking_agreement,
    score_drift_pct,
)
from repro.runtime.faults import (
    FaultPolicy,
    FaultSpec,
    FaultyScorer,
    InjectedFaultError,
    ManualClock,
    with_faults,
)
from repro.runtime.parallel import (
    ParallelConfig,
    ParallelError,
    PoolClosedError,
    ScoreCache,
    ShardPlan,
    ShardedScorer,
    plan_shards,
    scorer_fingerprint,
)
from repro.runtime.pricing import (
    ForestShape,
    NetworkShape,
    network_report,
    price,
    price_forest_shape,
    price_network_shape,
)
from repro.runtime.ranking import (
    PipelineConfig,
    PipelineStageConfig,
    RankingPipeline,
    build_pipeline,
)
from repro.runtime.registry import (
    ScorerBackend,
    UnknownBackendError,
    backend_names,
    get_backend,
    make_scorer,
    register_backend,
    unregister_backend,
)
from repro.runtime.resilience import (
    AllTiersFailedError,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    CircuitOpenError,
    DeadlineExceededError,
    FallbackChain,
    ResilienceError,
    ResilientScorer,
    RetryPolicy,
    ScorerFaultError,
    StubScorer,
    make_fallback_chain,
)

__all__ = [
    "AllTiersFailedError",
    "AsyncConfig",
    "BLOCK_KERNEL",
    "BaseScorer",
    "BatchEngine",
    "BreakerState",
    "BudgetExceededError",
    "CascadeScorer",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "CircuitOpenError",
    "CompileError",
    "CompiledNetworkScorer",
    "DENSE_KERNEL",
    "DeadlineExceededError",
    "DenseNetworkScorer",
    "FallbackChain",
    "FaultPolicy",
    "FaultSpec",
    "FaultyScorer",
    "ForestShape",
    "GateReport",
    "GpuQuickScorerAdapter",
    "INT16_KERNEL",
    "INT8_KERNEL",
    "InferencePlan",
    "InjectedFaultError",
    "LayerPlan",
    "LifecycleConfig",
    "LifecycleError",
    "LifecycleManager",
    "ManualClock",
    "ModelRegistry",
    "ModelVersion",
    "NetworkShape",
    "ParallelConfig",
    "ParallelError",
    "PipelineConfig",
    "PipelineStageConfig",
    "PoolClosedError",
    "PricingContext",
    "QuantizedNetworkScorer",
    "QuickScorerAdapter",
    "RankingPipeline",
    "ResilienceConfig",
    "ResilienceError",
    "ResilientScorer",
    "RetryPolicy",
    "SPARSE_KERNEL",
    "ScoreCache",
    "Scorer",
    "ScorerBackend",
    "ScorerFaultError",
    "ServiceConfig",
    "ServiceStats",
    "ShadowStats",
    "ShardPlan",
    "ShardedScorer",
    "SparseNetworkScorer",
    "StubScorer",
    "SwapEvent",
    "TenantConfig",
    "UnknownBackendError",
    "VersionedScorer",
    "backend_names",
    "build_pipeline",
    "compile_network",
    "default_context",
    "get_backend",
    "is_scorer",
    "make_fallback_chain",
    "make_scorer",
    "network_report",
    "plan_shards",
    "price",
    "price_forest_shape",
    "price_network_shape",
    "ranking_agreement",
    "reference_scores",
    "register_backend",
    "score_drift_pct",
    "scorer_fingerprint",
    "set_default_context",
    "shared_predictor",
    "stable_forward",
    "unregister_backend",
    "with_faults",
]
