"""The unified scoring runtime.

One surface for "score documents with any model at a known price":

* :class:`Scorer` — the protocol every backend adapts to;
* :func:`make_scorer` — registry-dispatched adapter construction;
* :func:`price` — the single pricing function over models *and* shapes;
* :class:`BatchEngine` — micro-batched, budget-checked execution with
  latency percentiles;
* :func:`register_backend` — the plug-in point for new model families.

See ``docs/runtime.md`` for the design and extension guide.
"""

from repro.runtime.adapters import (
    CascadeScorer,
    DenseNetworkScorer,
    GpuQuickScorerAdapter,
    QuantizedNetworkScorer,
    QuickScorerAdapter,
    SparseNetworkScorer,
)
from repro.runtime.base import BaseScorer, Scorer, is_scorer, stable_forward
from repro.runtime.batching import BatchEngine, BudgetExceededError, ServiceStats
from repro.runtime.context import (
    PricingContext,
    default_context,
    set_default_context,
    shared_predictor,
)
from repro.runtime.pricing import (
    ForestShape,
    NetworkShape,
    network_report,
    price,
    price_forest_shape,
    price_network_shape,
)
from repro.runtime.registry import (
    ScorerBackend,
    UnknownBackendError,
    backend_names,
    get_backend,
    make_scorer,
    register_backend,
    unregister_backend,
)

__all__ = [
    "BaseScorer",
    "BatchEngine",
    "BudgetExceededError",
    "CascadeScorer",
    "DenseNetworkScorer",
    "ForestShape",
    "GpuQuickScorerAdapter",
    "NetworkShape",
    "PricingContext",
    "QuantizedNetworkScorer",
    "QuickScorerAdapter",
    "Scorer",
    "ScorerBackend",
    "ServiceStats",
    "SparseNetworkScorer",
    "UnknownBackendError",
    "backend_names",
    "default_context",
    "get_backend",
    "is_scorer",
    "make_scorer",
    "network_report",
    "price",
    "price_forest_shape",
    "price_network_shape",
    "register_backend",
    "set_default_context",
    "shared_predictor",
    "stable_forward",
    "unregister_backend",
]
