"""Typed service configuration: one object instead of sprawling kwargs.

:class:`~repro.serving.ScoringService` grew organically — budgets, then
batching, then five resilience kwargs, and now parallelism and caching.
This module consolidates that surface into a family of dataclasses:

* :class:`~repro.runtime.parallel.ParallelConfig` — workers, shard
  strategy, score cache (defined next to the engine it tunes);
* :class:`ResilienceConfig` — fallback ladder, retry policy, breaker
  tuning, deadline;
* :class:`TenantConfig` / :class:`AsyncConfig` — per-tenant admission,
  QoS and cross-request coalescing knobs of the asyncio front-end
  (:class:`~repro.serving.AsyncScoringService`);
* :class:`ServiceConfig` — the top-level bundle a service is built
  from, with ``to_dict()``/``from_dict()`` for JSON-able round-trips.

The old keyword arguments keep working as deprecated aliases (they emit
``DeprecationWarning`` and map onto these configs), so no caller breaks;
see the migration table in ``docs/runtime.md``.

``to_dict`` is declarative-only: ``fallback_models`` hold *live model
objects* and cannot be serialized — a config carrying them raises
:class:`~repro.exceptions.ConfigError` on ``to_dict()`` rather than
silently dropping tiers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.exceptions import ConfigError
from repro.runtime.lifecycle import LifecycleConfig
from repro.runtime.parallel import ParallelConfig
from repro.runtime.ranking import PipelineConfig
from repro.runtime.resilience import CircuitBreakerConfig, RetryPolicy

__all__ = ["AsyncConfig", "ResilienceConfig", "ServiceConfig", "TenantConfig"]


def _rebuild(cls, data: Any, label: str):
    """Reconstruct a frozen dataclass from its ``asdict`` form."""
    if data is None:
        return None
    if isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise ConfigError(
            f"{label} must be a dict or {cls.__name__}, "
            f"got {type(data).__name__}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigError(f"invalid {label}: {exc}") from None


@dataclass(frozen=True)
class ResilienceConfig:
    """Degradation-ladder tuning for a scoring service.

    Any non-default field routes the service through a
    :class:`~repro.runtime.resilience.FallbackChain` (a config with only
    defaults still does — constructing one *is* the opt-in).

    Parameters
    ----------
    fallback_models:
        Models (or pre-built scorers) to degrade to, in order, cheapest
        last.  These are live objects and are **not** serialized.
    retry:
        Shared :class:`~repro.runtime.resilience.RetryPolicy` for every
        tier (``None`` = the policy's defaults).
    breaker:
        Shared :class:`~repro.runtime.resilience.CircuitBreakerConfig`
        (each tier still gets its own breaker instance).
    deadline_us:
        Per-request deadline in microseconds.
    """

    fallback_models: tuple = ()
    retry: RetryPolicy | None = None
    breaker: CircuitBreakerConfig | None = None
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.fallback_models, tuple):
            object.__setattr__(
                self, "fallback_models", tuple(self.fallback_models)
            )
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ConfigError(
                f"deadline_us must be > 0, got {self.deadline_us}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation of the declarative fields.

        Raises :class:`ConfigError` when ``fallback_models`` is
        non-empty — live models have no dict form, and dropping them
        silently would serialize a *different* service.
        """
        if self.fallback_models:
            raise ConfigError(
                "fallback_models hold live model objects and cannot be "
                "serialized; attach them when constructing the service"
            )
        return {
            "retry": asdict(self.retry) if self.retry else None,
            "breaker": asdict(self.breaker) if self.breaker else None,
            "deadline_us": self.deadline_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        unknown = set(data) - {"retry", "breaker", "deadline_us"}
        if unknown:
            raise ConfigError(
                f"unknown ResilienceConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            retry=_rebuild(RetryPolicy, data.get("retry"), "retry"),
            breaker=_rebuild(
                CircuitBreakerConfig, data.get("breaker"), "breaker"
            ),
            deadline_us=data.get("deadline_us"),
        )


@dataclass(frozen=True)
class TenantConfig:
    """Admission and QoS contract of one tenant of the async front-end.

    Fully declarative (JSON round-trips through
    ``to_dict``/``from_dict``): a tenant is a name plus numbers, never a
    live object.

    Parameters
    ----------
    name:
        Tenant identifier, matched against the ``tenant=`` argument of
        :meth:`~repro.serving.AsyncScoringService.score`.
    rate_per_s:
        Token-bucket refill rate in requests per second; ``None``
        disables rate limiting for this tenant.
    burst:
        Token-bucket capacity — how many requests the tenant may issue
        back to back before the refill rate binds.
    priority:
        QoS class; **lower is more urgent**.  The batcher drains pending
        requests in ascending priority order (FIFO within a class), so
        an interactive tenant at priority 0 coalesces ahead of a batch
        tenant at priority 2.
    max_queue_depth:
        Per-tenant cap on queued-but-unserved requests; arrivals beyond
        it are shed with reason ``tenant-queue-depth``.  ``None`` leaves
        only the front-end-wide cap.
    deadline_us:
        Per-tenant SLO on **enqueue→response** wall time.  Responses
        are still delivered when it is overrun, but each overrun counts
        as an SLO miss (``serving.slo_miss``).  ``None`` falls back to
        :attr:`AsyncConfig.slo_us`.
    """

    name: str = "default"
    rate_per_s: float | None = None
    burst: int = 32
    priority: int = 1
    max_queue_depth: int | None = None
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ConfigError(
                f"rate_per_s must be > 0 (or None), got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ConfigError(f"burst must be >= 1, got {self.burst}")
        if self.priority < 0:
            raise ConfigError(
                f"priority must be >= 0, got {self.priority}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1 (or None), "
                f"got {self.max_queue_depth}"
            )
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ConfigError(
                f"deadline_us must be > 0 (or None), got {self.deadline_us}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        unknown = set(data) - {
            "name",
            "rate_per_s",
            "burst",
            "priority",
            "max_queue_depth",
            "deadline_us",
        }
        if unknown:
            raise ConfigError(
                f"unknown TenantConfig keys: {', '.join(sorted(unknown))}"
            )
        defaults = cls()
        return cls(
            name=data.get("name", defaults.name),
            rate_per_s=data.get("rate_per_s"),
            burst=data.get("burst", defaults.burst),
            priority=data.get("priority", defaults.priority),
            max_queue_depth=data.get("max_queue_depth"),
            deadline_us=data.get("deadline_us"),
        )


@dataclass(frozen=True)
class AsyncConfig:
    """Queueing, coalescing and tenancy tuning of the async front-end.

    Consumed by :class:`~repro.serving.AsyncScoringService`: requests
    admitted past the per-tenant token buckets wait in priority queues
    until the batcher coalesces them — many users' small candidate lists
    concatenated into one cross-request micro-batch per engine call,
    sliced back out bit-identically (chunk-invariant scorers only; see
    ``docs/serving_async.md``).

    Parameters
    ----------
    max_wait_us:
        How long the batcher lingers for more arrivals once at least one
        request is pending.  ``0`` coalesces only what is already queued
        when the batcher wakes (lowest latency, still coalesces
        concurrent arrivals).
    max_batch_requests:
        Most requests folded into one coalesced engine call.
    max_batch_docs:
        Most document rows folded into one coalesced engine call (a
        request is never split across coalesced batches).
    max_queue_depth:
        Front-end-wide cap on queued requests; arrivals beyond it are
        shed with reason ``queue-depth`` — load shedding under burst.
    slo_us:
        Default enqueue→response SLO applied to tenants without their
        own ``deadline_us``; ``None`` disables SLO accounting for them.
    tenants:
        Declared :class:`TenantConfig` entries.  Unknown tenant names
        arriving at the front-end are admitted under an implicit
        default-constructed ``TenantConfig`` (rate-unlimited,
        priority 1).
    """

    max_wait_us: float = 0.0
    max_batch_requests: int = 64
    max_batch_docs: int = 4096
    max_queue_depth: int = 1024
    slo_us: float | None = None
    tenants: tuple = ()

    def __post_init__(self) -> None:
        if self.max_wait_us < 0:
            raise ConfigError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )
        if self.max_batch_requests < 1:
            raise ConfigError(
                f"max_batch_requests must be >= 1, "
                f"got {self.max_batch_requests}"
            )
        if self.max_batch_docs < 1:
            raise ConfigError(
                f"max_batch_docs must be >= 1, got {self.max_batch_docs}"
            )
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.slo_us is not None and self.slo_us <= 0:
            raise ConfigError(
                f"slo_us must be > 0 (or None), got {self.slo_us}"
            )
        tenants = tuple(
            t if isinstance(t, TenantConfig) else TenantConfig(**t)
            for t in self.tenants
        )
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"tenant names must be unique, got {names}"
            )
        object.__setattr__(self, "tenants", tenants)

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantConfig | None:
        """The declared config for ``name``, or ``None`` if undeclared."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "max_wait_us": self.max_wait_us,
            "max_batch_requests": self.max_batch_requests,
            "max_batch_docs": self.max_batch_docs,
            "max_queue_depth": self.max_queue_depth,
            "slo_us": self.slo_us,
            "tenants": [t.to_dict() for t in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AsyncConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {
            "max_wait_us",
            "max_batch_requests",
            "max_batch_docs",
            "max_queue_depth",
            "slo_us",
            "tenants",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown AsyncConfig keys: {', '.join(sorted(unknown))}"
            )
        defaults = cls()
        tenants = tuple(
            _rebuild(TenantConfig, t, "tenant") if isinstance(t, dict) else t
            for t in data.get("tenants", ())
        )
        return cls(
            max_wait_us=data.get("max_wait_us", defaults.max_wait_us),
            max_batch_requests=data.get(
                "max_batch_requests", defaults.max_batch_requests
            ),
            max_batch_docs=data.get(
                "max_batch_docs", defaults.max_batch_docs
            ),
            max_queue_depth=data.get(
                "max_queue_depth", defaults.max_queue_depth
            ),
            slo_us=data.get("slo_us"),
            tenants=tenants,
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.serving.ScoringService` is tuned by.

    Parameters
    ----------
    budget_us_per_doc:
        Per-document latency budget checked against the calibrated cost
        model at construction (the paper's design rule at deploy time).
    max_batch_size:
        Micro-batch size of the underlying
        :class:`~repro.runtime.batching.BatchEngine`; ``None`` disables
        splitting (recommended when ``parallel`` is set, so the sharder
        sees whole requests).
    backend:
        Explicit runtime backend name (``None`` = registry
        auto-dispatch).
    backend_options:
        Extra keyword options forwarded to the backend factory by
        ``make_scorer`` — e.g. ``{"compiled": True, "plan_dtype":
        "float32"}`` for the ``compiled-network`` backend or
        ``{"quantized_bits": 8}`` for the quantized one.  Per-call
        ``scorer_opts`` passed to the service constructor override
        same-named keys.
    allow_unpriced:
        Admit a scorer with a non-finite predicted cost under a budget.
    resilience:
        Optional :class:`ResilienceConfig`; presence routes the service
        through a fallback chain.
    parallel:
        Optional :class:`~repro.runtime.parallel.ParallelConfig`;
        presence shards requests over a worker pool (and, with
        ``cache_entries``, short-circuits repeated documents).
    frontend:
        Optional :class:`AsyncConfig` consumed by the asyncio front-end
        (:class:`~repro.serving.AsyncScoringService`): coalescing
        windows, queue depths, and per-tenant admission/QoS.  Ignored by
        the synchronous :class:`~repro.serving.ScoringService`.
    pipeline:
        Optional :class:`~repro.runtime.ranking.PipelineConfig` turning
        the service into a multi-stage budgeted ranking cascade.  When
        set, the service's ``model`` argument must be a mapping of the
        role names the stages reference to live models, and ``backend``
        / ``backend_options`` must stay unset (each stage names its
        own).  See ``docs/cascade.md``.
    lifecycle:
        Optional :class:`~repro.runtime.lifecycle.LifecycleConfig`
        tuning the versioned-model lifecycle: shadow-scored promotion
        gates for :meth:`~repro.serving.ScoringService.swap`, automatic
        rollback, and the replay buffer behind ``redistill()``.  The
        service always serves through a versioned registry; this config
        only changes the promotion policy.  See ``docs/lifecycle.md``.
    """

    budget_us_per_doc: float | None = None
    max_batch_size: int | None = 256
    backend: str | None = None
    backend_options: dict | None = None
    allow_unpriced: bool = False
    resilience: ResilienceConfig | None = None
    parallel: ParallelConfig | None = None
    frontend: AsyncConfig | None = None
    pipeline: PipelineConfig | None = None
    lifecycle: LifecycleConfig | None = None

    def __post_init__(self) -> None:
        if self.lifecycle is not None and not isinstance(
            self.lifecycle, LifecycleConfig
        ):
            if isinstance(self.lifecycle, dict):
                object.__setattr__(
                    self,
                    "lifecycle",
                    LifecycleConfig.from_dict(self.lifecycle),
                )
            else:
                raise ConfigError(
                    "lifecycle must be a LifecycleConfig or dict, "
                    f"got {type(self.lifecycle).__name__}"
                )
        if self.pipeline is not None:
            if not isinstance(self.pipeline, PipelineConfig):
                if isinstance(self.pipeline, dict):
                    object.__setattr__(
                        self,
                        "pipeline",
                        PipelineConfig.from_dict(self.pipeline),
                    )
                else:
                    raise ConfigError(
                        "pipeline must be a PipelineConfig or dict, "
                        f"got {type(self.pipeline).__name__}"
                    )
            if self.backend is not None or self.backend_options:
                raise ConfigError(
                    "pipeline and backend/backend_options are mutually "
                    "exclusive: each pipeline stage names its own backend"
                )
        if self.backend_options is not None:
            if not isinstance(self.backend_options, dict):
                try:
                    items = dict(self.backend_options)
                except (TypeError, ValueError):
                    raise ConfigError(
                        "backend_options must be a mapping of option name "
                        f"to value, got {type(self.backend_options).__name__}"
                    ) from None
            else:
                items = dict(self.backend_options)
            if any(not isinstance(k, str) for k in items):
                raise ConfigError("backend_options keys must be strings")
            object.__setattr__(self, "backend_options", items)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "budget_us_per_doc": self.budget_us_per_doc,
            "max_batch_size": self.max_batch_size,
            "backend": self.backend,
            "backend_options": (
                dict(self.backend_options) if self.backend_options else None
            ),
            "allow_unpriced": self.allow_unpriced,
            "resilience": (
                self.resilience.to_dict() if self.resilience else None
            ),
            "parallel": self.parallel.to_dict() if self.parallel else None,
            "frontend": self.frontend.to_dict() if self.frontend else None,
            "pipeline": self.pipeline.to_dict() if self.pipeline else None,
            "lifecycle": (
                self.lifecycle.to_dict() if self.lifecycle else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {
            "budget_us_per_doc",
            "max_batch_size",
            "backend",
            "backend_options",
            "allow_unpriced",
            "resilience",
            "parallel",
            "frontend",
            "pipeline",
            "lifecycle",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown ServiceConfig keys: {', '.join(sorted(unknown))}"
            )
        resilience = data.get("resilience")
        if isinstance(resilience, dict):
            resilience = ResilienceConfig.from_dict(resilience)
        parallel = data.get("parallel")
        if isinstance(parallel, dict):
            parallel = ParallelConfig.from_dict(parallel)
        frontend = data.get("frontend")
        if isinstance(frontend, dict):
            frontend = AsyncConfig.from_dict(frontend)
        pipeline = data.get("pipeline")
        if isinstance(pipeline, dict):
            pipeline = PipelineConfig.from_dict(pipeline)
        lifecycle = data.get("lifecycle")
        if isinstance(lifecycle, dict):
            lifecycle = LifecycleConfig.from_dict(lifecycle)
        defaults = cls()
        return cls(
            budget_us_per_doc=data.get("budget_us_per_doc"),
            max_batch_size=data.get(
                "max_batch_size", defaults.max_batch_size
            ),
            backend=data.get("backend"),
            backend_options=data.get("backend_options"),
            allow_unpriced=data.get(
                "allow_unpriced", defaults.allow_unpriced
            ),
            resilience=resilience,
            parallel=parallel,
            frontend=frontend,
            pipeline=pipeline,
            lifecycle=lifecycle,
        )
