"""Typed service configuration: one object instead of sprawling kwargs.

:class:`~repro.serving.ScoringService` grew organically — budgets, then
batching, then five resilience kwargs, and now parallelism and caching.
This module consolidates that surface into three dataclasses:

* :class:`~repro.runtime.parallel.ParallelConfig` — workers, shard
  strategy, score cache (defined next to the engine it tunes);
* :class:`ResilienceConfig` — fallback ladder, retry policy, breaker
  tuning, deadline;
* :class:`ServiceConfig` — the top-level bundle a service is built
  from, with ``to_dict()``/``from_dict()`` for JSON-able round-trips.

The old keyword arguments keep working as deprecated aliases (they emit
``DeprecationWarning`` and map onto these configs), so no caller breaks;
see the migration table in ``docs/runtime.md``.

``to_dict`` is declarative-only: ``fallback_models`` hold *live model
objects* and cannot be serialized — a config carrying them raises
:class:`~repro.exceptions.ConfigError` on ``to_dict()`` rather than
silently dropping tiers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.exceptions import ConfigError
from repro.runtime.parallel import ParallelConfig
from repro.runtime.resilience import CircuitBreakerConfig, RetryPolicy

__all__ = ["ResilienceConfig", "ServiceConfig"]


def _rebuild(cls, data: Any, label: str):
    """Reconstruct a frozen dataclass from its ``asdict`` form."""
    if data is None:
        return None
    if isinstance(data, cls):
        return data
    if not isinstance(data, dict):
        raise ConfigError(
            f"{label} must be a dict or {cls.__name__}, "
            f"got {type(data).__name__}"
        )
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigError(f"invalid {label}: {exc}") from None


@dataclass(frozen=True)
class ResilienceConfig:
    """Degradation-ladder tuning for a scoring service.

    Any non-default field routes the service through a
    :class:`~repro.runtime.resilience.FallbackChain` (a config with only
    defaults still does — constructing one *is* the opt-in).

    Parameters
    ----------
    fallback_models:
        Models (or pre-built scorers) to degrade to, in order, cheapest
        last.  These are live objects and are **not** serialized.
    retry:
        Shared :class:`~repro.runtime.resilience.RetryPolicy` for every
        tier (``None`` = the policy's defaults).
    breaker:
        Shared :class:`~repro.runtime.resilience.CircuitBreakerConfig`
        (each tier still gets its own breaker instance).
    deadline_us:
        Per-request deadline in microseconds.
    """

    fallback_models: tuple = ()
    retry: RetryPolicy | None = None
    breaker: CircuitBreakerConfig | None = None
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.fallback_models, tuple):
            object.__setattr__(
                self, "fallback_models", tuple(self.fallback_models)
            )
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ConfigError(
                f"deadline_us must be > 0, got {self.deadline_us}"
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation of the declarative fields.

        Raises :class:`ConfigError` when ``fallback_models`` is
        non-empty — live models have no dict form, and dropping them
        silently would serialize a *different* service.
        """
        if self.fallback_models:
            raise ConfigError(
                "fallback_models hold live model objects and cannot be "
                "serialized; attach them when constructing the service"
            )
        return {
            "retry": asdict(self.retry) if self.retry else None,
            "breaker": asdict(self.breaker) if self.breaker else None,
            "deadline_us": self.deadline_us,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        unknown = set(data) - {"retry", "breaker", "deadline_us"}
        if unknown:
            raise ConfigError(
                f"unknown ResilienceConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            retry=_rebuild(RetryPolicy, data.get("retry"), "retry"),
            breaker=_rebuild(
                CircuitBreakerConfig, data.get("breaker"), "breaker"
            ),
            deadline_us=data.get("deadline_us"),
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.serving.ScoringService` is tuned by.

    Parameters
    ----------
    budget_us_per_doc:
        Per-document latency budget checked against the calibrated cost
        model at construction (the paper's design rule at deploy time).
    max_batch_size:
        Micro-batch size of the underlying
        :class:`~repro.runtime.batching.BatchEngine`; ``None`` disables
        splitting (recommended when ``parallel`` is set, so the sharder
        sees whole requests).
    backend:
        Explicit runtime backend name (``None`` = registry
        auto-dispatch).
    backend_options:
        Extra keyword options forwarded to the backend factory by
        ``make_scorer`` — e.g. ``{"compiled": True, "plan_dtype":
        "float32"}`` for the ``compiled-network`` backend or
        ``{"quantized_bits": 8}`` for the quantized one.  Per-call
        ``scorer_opts`` passed to the service constructor override
        same-named keys.
    allow_unpriced:
        Admit a scorer with a non-finite predicted cost under a budget.
    resilience:
        Optional :class:`ResilienceConfig`; presence routes the service
        through a fallback chain.
    parallel:
        Optional :class:`~repro.runtime.parallel.ParallelConfig`;
        presence shards requests over a worker pool (and, with
        ``cache_entries``, short-circuits repeated documents).
    """

    budget_us_per_doc: float | None = None
    max_batch_size: int | None = 256
    backend: str | None = None
    backend_options: dict | None = None
    allow_unpriced: bool = False
    resilience: ResilienceConfig | None = None
    parallel: ParallelConfig | None = None

    def __post_init__(self) -> None:
        if self.backend_options is not None:
            if not isinstance(self.backend_options, dict):
                try:
                    items = dict(self.backend_options)
                except (TypeError, ValueError):
                    raise ConfigError(
                        "backend_options must be a mapping of option name "
                        f"to value, got {type(self.backend_options).__name__}"
                    ) from None
            else:
                items = dict(self.backend_options)
            if any(not isinstance(k, str) for k in items):
                raise ConfigError("backend_options keys must be strings")
            object.__setattr__(self, "backend_options", items)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "budget_us_per_doc": self.budget_us_per_doc,
            "max_batch_size": self.max_batch_size,
            "backend": self.backend,
            "backend_options": (
                dict(self.backend_options) if self.backend_options else None
            ),
            "allow_unpriced": self.allow_unpriced,
            "resilience": (
                self.resilience.to_dict() if self.resilience else None
            ),
            "parallel": self.parallel.to_dict() if self.parallel else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        known = {
            "budget_us_per_doc",
            "max_batch_size",
            "backend",
            "backend_options",
            "allow_unpriced",
            "resilience",
            "parallel",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown ServiceConfig keys: {', '.join(sorted(unknown))}"
            )
        resilience = data.get("resilience")
        if isinstance(resilience, dict):
            resilience = ResilienceConfig.from_dict(resilience)
        parallel = data.get("parallel")
        if isinstance(parallel, dict):
            parallel = ParallelConfig.from_dict(parallel)
        defaults = cls()
        return cls(
            budget_us_per_doc=data.get("budget_us_per_doc"),
            max_batch_size=data.get(
                "max_batch_size", defaults.max_batch_size
            ),
            backend=data.get("backend"),
            backend_options=data.get("backend_options"),
            allow_unpriced=data.get(
                "allow_unpriced", defaults.allow_unpriced
            ),
            resilience=resilience,
            parallel=parallel,
        )
