"""Versioned model lifecycle: registry, hot swap, shadow-scored promotion.

The serving substrate froze its model at construction time; this module
makes the model a *versioned, swappable* dependency without giving up
the substrate's core guarantee (bit-identical, chunk-invariant
scoring):

* :class:`ModelRegistry` — an append-mostly store of fingerprinted,
  immutable :class:`ModelVersion` entries (model + adapted scorer +
  calibrated price), exactly one of which is *active*;
* :class:`VersionedScorer` — a :class:`~repro.runtime.base.Scorer` that
  resolves the active version **once per engine call** via the request
  pin (:func:`~repro.runtime.base.pinned_scope`): in-flight requests
  finish on the incumbent, new arrivals score on the candidate, and no
  single request ever mixes versions across its micro-batches;
* :class:`LifecycleManager` — owns promotion policy.  ``swap(candidate)``
  registers the candidate and either promotes it atomically (``force``)
  or opens a *shadow-scoring* phase that mirrors a configurable
  fraction of live traffic to the candidate off the hot path, compares
  per-request score drift and NDCG@k ranking agreement against the
  incumbent, and promotes only if the gate passes — otherwise the
  candidate is rolled back automatically.  Promotion invalidates
  :class:`~repro.runtime.parallel.ScoreCache` entries by the outgoing
  version's fingerprint and refreshes the engine's advertised price.

Policy lives in :class:`LifecycleConfig`, JSON round-trippable and
nested in :class:`~repro.runtime.config.ServiceConfig` like
``parallel``/``resilience``/``frontend``/``pipeline``.

Import discipline: this module must not import
:mod:`repro.runtime.config` (config imports it for the nested
dataclass); the backend registry (``make_scorer``) and the replay
buffer are imported lazily for the same reason.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import RLock, local
from typing import Any, Mapping

import numpy as np

from repro.exceptions import ConfigError, ReproError
from repro.metrics.ranking import ndcg
from repro.obs.lifecycle import (
    record_replay,
    record_rollback,
    record_served_version,
    record_shadow_comparison,
    record_shadow_dropped,
    record_shadow_error,
    record_swap,
    record_version_documents,
)
from repro.obs.requests import annotate_requests
from repro.runtime.base import current_pin, is_scorer
from repro.runtime.batching import BudgetExceededError
from repro.runtime.parallel import (
    ParallelConfig,
    ScoreCache,
    ShardedScorer,
    scorer_fingerprint,
)


class LifecycleError(ReproError):
    """Raised on invalid registry/lifecycle operations."""


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
_SHADOW_MODES = ("sync", "background")


@dataclass(frozen=True)
class LifecycleConfig:
    """Promotion policy for candidate model versions.

    shadow_fraction:
        Fraction of live requests mirrored to the candidate during a
        shadow phase (0 disables shadowing: every swap is immediate).
    shadow_min_requests:
        Comparisons to accumulate before the promotion gate decides.
    max_drift_pct:
        Gate: mean absolute candidate-vs-incumbent score drift, as a
        percentage of the incumbent's score scale, must not exceed this.
    min_agreement:
        Gate: mean NDCG@``agreement_k`` of the candidate's scores
        against the incumbent's ranking must reach this.
    agreement_k:
        Cutoff for the ranking-agreement NDCG.
    shadow_mode:
        ``"background"`` scores mirrors on a single worker thread off
        the hot path (bounded by ``shadow_queue``, overflow mirrors are
        dropped and counted); ``"sync"`` scores them inline — fully
        deterministic, for tests and smoke probes.
    shadow_queue:
        Max in-flight background mirrors before new ones are dropped.
    replay_capacity:
        Distinct rows retained by the Zipf-aware replay reservoir that
        feeds :meth:`LifecycleManager.redistill` (0 disables it).
    replay_seed:
        Seed for the replay reservoir's RNG.
    auto_rollback:
        Reject (roll back) a candidate automatically when the gate
        trips; when false the shadow phase keeps accumulating until
        an explicit :meth:`LifecycleManager.decide`.
    """

    shadow_fraction: float = 0.25
    shadow_min_requests: int = 16
    max_drift_pct: float = 10.0
    min_agreement: float = 0.95
    agreement_k: int = 10
    shadow_mode: str = "background"
    shadow_queue: int = 64
    replay_capacity: int = 0
    replay_seed: int = 0
    auto_rollback: bool = True

    def __post_init__(self) -> None:
        f = self.shadow_fraction
        if not isinstance(f, (int, float)) or not 0.0 <= float(f) <= 1.0:
            raise ConfigError(
                f"shadow_fraction must be in [0, 1], got {f!r}"
            )
        if self.shadow_min_requests < 1:
            raise ConfigError(
                f"shadow_min_requests must be >= 1, "
                f"got {self.shadow_min_requests}"
            )
        if not math.isfinite(self.max_drift_pct) or self.max_drift_pct <= 0:
            raise ConfigError(
                f"max_drift_pct must be finite and > 0, "
                f"got {self.max_drift_pct}"
            )
        if not 0.0 <= float(self.min_agreement) <= 1.0:
            raise ConfigError(
                f"min_agreement must be in [0, 1], got {self.min_agreement}"
            )
        if self.agreement_k < 1:
            raise ConfigError(
                f"agreement_k must be >= 1, got {self.agreement_k}"
            )
        if self.shadow_mode not in _SHADOW_MODES:
            raise ConfigError(
                f"shadow_mode must be one of {_SHADOW_MODES}, "
                f"got {self.shadow_mode!r}"
            )
        if self.shadow_queue < 1:
            raise ConfigError(
                f"shadow_queue must be >= 1, got {self.shadow_queue}"
            )
        if self.replay_capacity < 0:
            raise ConfigError(
                f"replay_capacity must be >= 0, got {self.replay_capacity}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "shadow_fraction": self.shadow_fraction,
            "shadow_min_requests": self.shadow_min_requests,
            "max_drift_pct": self.max_drift_pct,
            "min_agreement": self.min_agreement,
            "agreement_k": self.agreement_k,
            "shadow_mode": self.shadow_mode,
            "shadow_queue": self.shadow_queue,
            "replay_capacity": self.replay_capacity,
            "replay_seed": self.replay_seed,
            "auto_rollback": self.auto_rollback,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LifecycleConfig":
        known = {
            "shadow_fraction",
            "shadow_min_requests",
            "max_drift_pct",
            "min_agreement",
            "agreement_k",
            "shadow_mode",
            "shadow_queue",
            "replay_capacity",
            "replay_seed",
            "auto_rollback",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown LifecycleConfig keys: {sorted(unknown)}"
            )
        return cls(**dict(data))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelVersion:
    """One immutable registered model version."""

    version_id: str
    model: Any = field(repr=False)
    scorer: Any = field(repr=False)
    fingerprint: str
    price: float
    sequence: int
    source: str = "registered"

    def summary(self) -> dict[str, Any]:
        """JSON-safe description of this version."""
        return {
            "version": self.version_id,
            "fingerprint": self.fingerprint,
            "backend": getattr(self.scorer, "backend", "?"),
            "price_us_per_doc": (
                self.price if math.isfinite(self.price) else None
            ),
            "sequence": self.sequence,
            "source": self.source,
            "description": self.scorer.describe(),
        }


class ModelRegistry:
    """Versioned store of fingerprinted, immutable model entries.

    Exactly one entry is *active* at a time; :meth:`activate` is an
    atomic pointer flip under the registry lock, which is what makes
    the hot swap zero-downtime — readers
    (:class:`VersionedScorer`) snapshot :attr:`active` once per pinned
    request and never observe a half-switched state.

    The registry adapts plain models through the backend registry
    (:func:`~repro.runtime.registry.make_scorer`) using the default
    ``backend``/``backend_options``/``context`` it was built with;
    objects already satisfying the Scorer protocol pass through.
    """

    def __init__(
        self,
        model: Any | None = None,
        *,
        context: Any | None = None,
        backend: str | None = None,
        backend_options: Mapping[str, Any] | None = None,
        version: str | None = None,
        source: str = "seed",
    ) -> None:
        self._lock = RLock()
        self._entries: dict[str, ModelVersion] = {}
        self._order: list[str] = []
        self._active_id: str | None = None
        self._previous_id: str | None = None
        self._seq = 0
        self.history: list[dict[str, Any]] = []
        self.context = context
        self.default_backend = backend
        self.default_options = dict(backend_options or {})
        if model is not None:
            self.register(model, version=version, source=source)

    @classmethod
    def wrap(cls, model: Any, **kwargs: Any) -> "ModelRegistry":
        """A single-version registry around ``model`` (the auto-wrap)."""
        return cls(model, **kwargs)

    # ------------------------------------------------------------------
    def register(
        self,
        model: Any,
        *,
        version: str | None = None,
        backend: str | None = None,
        source: str = "registered",
        activate: bool | None = None,
        **backend_options: Any,
    ) -> ModelVersion:
        """Adapt, fingerprint and store ``model`` as a new version.

        The first registered version auto-activates; later ones stay
        inactive unless ``activate=True`` (the lifecycle manager's
        promotion path is the intended activator).
        """
        if is_scorer(model):
            scorer = model
        else:
            from repro.runtime.registry import make_scorer

            opts = {**self.default_options, **backend_options}
            scorer = make_scorer(
                model,
                backend=backend or self.default_backend,
                context=self.context,
                **opts,
            )
        try:
            price = float(scorer.predicted_us_per_doc)
        except Exception:
            price = float("nan")
        fingerprint = scorer_fingerprint(scorer)
        with self._lock:
            incumbent = (
                self._entries[self._active_id] if self._active_id else None
            )
            if incumbent is not None:
                if bool(getattr(scorer, "batchable", True)) != bool(
                    getattr(incumbent.scorer, "batchable", True)
                ):
                    raise LifecycleError(
                        "candidate batchability differs from the incumbent; "
                        "a hot swap cannot change the engine's chunking "
                        "contract"
                    )
                cand_dim = scorer.input_dim
                inc_dim = incumbent.scorer.input_dim
                if (
                    cand_dim is not None
                    and inc_dim is not None
                    and cand_dim != inc_dim
                ):
                    raise LifecycleError(
                        f"candidate expects {cand_dim} features but the "
                        f"incumbent serves {inc_dim}"
                    )
            self._seq += 1
            version_id = version or f"v{self._seq}"
            if version_id in self._entries:
                raise LifecycleError(
                    f"version {version_id!r} is already registered"
                )
            entry = ModelVersion(
                version_id=version_id,
                model=model,
                scorer=scorer,
                fingerprint=fingerprint,
                price=price,
                sequence=self._seq,
                source=source,
            )
            self._entries[version_id] = entry
            self._order.append(version_id)
            self.history.append(
                {
                    "event": "registered",
                    "version": version_id,
                    "source": source,
                    "at_s": time.time(),
                }
            )
            if activate or (activate is None and self._active_id is None):
                self.activate(version_id)
            return entry

    def discard(self, version_id: str) -> None:
        """Drop a non-active version (a candidate that failed admission)."""
        with self._lock:
            if version_id == self._active_id:
                raise LifecycleError(
                    f"cannot discard the active version {version_id!r}"
                )
            if version_id in self._entries:
                del self._entries[version_id]
                self._order.remove(version_id)
                if self._previous_id == version_id:
                    self._previous_id = None
                self.history.append(
                    {
                        "event": "discarded",
                        "version": version_id,
                        "source": "discard",
                        "at_s": time.time(),
                    }
                )

    def activate(
        self, version_id: str, *, event: str = "activated"
    ) -> tuple[ModelVersion | None, ModelVersion]:
        """Atomically make ``version_id`` the active version.

        Returns ``(previous, entry)``.  This is the swap's commit point:
        one pointer write under the lock.
        """
        with self._lock:
            if version_id not in self._entries:
                raise LifecycleError(
                    f"unknown version {version_id!r}; registered: "
                    f"{self._order}"
                )
            previous = (
                self._entries[self._active_id] if self._active_id else None
            )
            if self._active_id != version_id:
                self._previous_id = self._active_id
            self._active_id = version_id
            entry = self._entries[version_id]
            self.history.append(
                {
                    "event": event,
                    "version": version_id,
                    "source": entry.source,
                    "at_s": time.time(),
                }
            )
            return previous, entry

    # ------------------------------------------------------------------
    @property
    def active(self) -> ModelVersion:
        with self._lock:
            if self._active_id is None:
                raise LifecycleError("registry holds no active version")
            return self._entries[self._active_id]

    @property
    def previous(self) -> ModelVersion | None:
        with self._lock:
            if self._previous_id is None:
                return None
            return self._entries.get(self._previous_id)

    def get(self, version_id: str) -> ModelVersion:
        with self._lock:
            if version_id not in self._entries:
                raise LifecycleError(f"unknown version {version_id!r}")
            return self._entries[version_id]

    def versions(self) -> tuple[ModelVersion, ...]:
        with self._lock:
            return tuple(self._entries[v] for v in self._order)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, version_id: object) -> bool:
        with self._lock:
            return version_id in self._entries

    def close(self) -> None:
        """Best-effort close of scorers that own resources."""
        for entry in self.versions():
            closer = getattr(entry.scorer, "close", None)
            if callable(closer):
                try:
                    closer()
                except Exception:
                    pass

    def summary(self) -> dict[str, Any]:
        with self._lock:
            active = self._active_id
            return {
                "active": active,
                "previous": self._previous_id,
                "versions": [e.summary() for e in self.versions()],
                "history": list(self.history),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<ModelRegistry {len(self._entries)} version(s), "
                f"active={self._active_id!r}>"
            )


# ----------------------------------------------------------------------
# Versioned scorer
# ----------------------------------------------------------------------
class VersionedScorer:
    """Scorer facade over a :class:`ModelRegistry`'s active version.

    Satisfies the Scorer protocol by delegation, so it drops into the
    existing :class:`~repro.runtime.resilience.FallbackChain` →
    :class:`~repro.runtime.batching.BatchEngine` stack unchanged.  Each
    version gets its own (memoized) execution stack — a
    :class:`~repro.runtime.parallel.ShardedScorer` over a **shared**
    :class:`~repro.runtime.parallel.ScoreCache` when parallel scoring
    is configured — so cache entries stay keyed by the fingerprint of
    the version that computed them.

    Version resolution is snapshotted per engine pin
    (:func:`~repro.runtime.base.current_pin`): every chunk of one
    request — and every member of one coalesced batch — scores on the
    same version even if a swap lands mid-request.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        parallel: ParallelConfig | None = None,
        cache: ScoreCache | None = None,
    ) -> None:
        if not isinstance(registry, ModelRegistry):
            raise TypeError(
                f"expected a ModelRegistry, got {type(registry).__name__}"
            )
        self.registry = registry
        self.parallel = parallel
        self.cache = cache
        #: Set by the LifecycleManager that owns promotion policy.
        self.manager: "LifecycleManager | None" = None
        self._stacks: dict[str, Any] = {}
        self._stack_lock = RLock()
        self._pin = local()
        self._count_lock = RLock()
        self.served_by_version: dict[str, int] = {}
        self.requests = 0

    # -- version resolution -------------------------------------------
    def _resolve(self, *, record: bool) -> ModelVersion:
        pin = current_pin()
        if pin is not None:
            token, n_requests = pin
            state = getattr(self._pin, "state", None)
            if state is not None and state[0] is token:
                entry, counted = state[1], state[2]
                if record and not counted:
                    self._count(entry, n_requests)
                    self._pin.state = (token, entry, True)
                return entry
            entry = self.registry.active
            counted = False
            if record:
                self._count(entry, n_requests)
                counted = True
            self._pin.state = (token, entry, counted)
            return entry
        entry = self.registry.active
        if record:
            self._count(entry, 1)
        return entry

    def _count(self, entry: ModelVersion, n_requests: int) -> None:
        with self._count_lock:
            self.requests += n_requests
            self.served_by_version[entry.version_id] = (
                self.served_by_version.get(entry.version_id, 0) + n_requests
            )
        record_served_version(entry.version_id, n_requests)

    def _stack_for(self, entry: ModelVersion):
        """The per-version execution stack (built once per version)."""
        with self._stack_lock:
            stack = self._stacks.get(entry.version_id)
            if stack is None:
                if self.parallel is not None:
                    stack = ShardedScorer(
                        entry.scorer, self.parallel, cache=self.cache
                    )
                else:
                    stack = entry.scorer
                self._stacks[entry.version_id] = stack
            return stack

    def active_stack(self):
        """The active version's execution stack (``sharded`` surface)."""
        return self._stack_for(self.registry.active)

    # -- Scorer protocol ----------------------------------------------
    @property
    def backend(self) -> str:
        return self._resolve(record=False).scorer.backend

    @property
    def batchable(self) -> bool:
        return bool(
            getattr(self._resolve(record=False).scorer, "batchable", True)
        )

    @property
    def input_dim(self) -> int | None:
        return self._resolve(record=False).scorer.input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self._resolve(record=False).price

    def fingerprint(self) -> str:
        """The *current* version's fingerprint (pin-aware)."""
        return self._resolve(record=False).fingerprint

    def score(self, features) -> np.ndarray:
        entry = self._resolve(record=True)
        stack = self._stack_for(entry)
        scores = stack.score(features)
        record_version_documents(entry.version_id, int(scores.shape[0]))
        manager = self.manager
        if manager is not None and manager.hot:
            manager.observe(entry, features, scores)
        annotate_requests(model_version=entry.version_id)
        return scores

    def describe(self) -> str:
        return self._resolve(record=False).scorer.describe()

    def __getattr__(self, name: str):
        if name.startswith("_") or name == "registry":
            raise AttributeError(name)
        return getattr(self.registry.active.scorer, name)

    def __repr__(self) -> str:
        try:
            active = self.registry.active.version_id
        except LifecycleError:
            active = None
        return (
            f"<VersionedScorer active={active!r} "
            f"versions={len(self.registry)}>"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._stack_lock:
            for stack in self._stacks.values():
                if isinstance(stack, ShardedScorer):
                    stack.close()

    def summary(self) -> dict[str, Any]:
        with self._count_lock:
            served = dict(self.served_by_version)
            requests = self.requests
        return {
            "requests": requests,
            "served_by_version": served,
            "stacks": sorted(self._stacks),
        }


# ----------------------------------------------------------------------
# Shadow comparison math
# ----------------------------------------------------------------------
def score_drift_pct(incumbent, candidate) -> float:
    """Mean |candidate − incumbent| as a % of the incumbent's scale."""
    inc = np.asarray(incumbent, dtype=np.float64).ravel()
    cand = np.asarray(candidate, dtype=np.float64).ravel()
    if inc.size == 0 or inc.size != cand.size:
        return float("nan")
    scale = max(float(np.mean(np.abs(inc))), 1e-12)
    return float(np.mean(np.abs(cand - inc)) / scale * 100.0)


def ranking_agreement(incumbent, candidate, k: int = 10) -> float:
    """NDCG@k of the candidate's scores against the incumbent's ranking.

    The incumbent's ordering is graded into five quantile bins (its own
    top fifth gets relevance 4, the bottom fifth 0) and the candidate's
    scores are evaluated as a ranking of those grades: an identical
    ordering scores 1.0, a reversed one near 0.
    """
    inc = np.asarray(incumbent, dtype=np.float64).ravel()
    cand = np.asarray(candidate, dtype=np.float64).ravel()
    n = inc.size
    if n == 0 or n != cand.size:
        return float("nan")
    order = np.argsort(-inc, kind="stable")
    ranks = np.arange(n)
    grades = np.empty(n, dtype=np.float64)
    grades[order] = 4 - np.minimum(4, ranks * 5 // n)
    return float(ndcg(cand, grades, k=int(k)))


class ShadowStats:
    """Thread-safe accumulator for one shadow-scoring phase."""

    def __init__(self) -> None:
        self._lock = RLock()
        self.mirrored = 0
        self.compared = 0
        self.dropped = 0
        self.errors = 0
        self._drift_sum = 0.0
        self._drift_n = 0
        self._agreement_sum = 0.0
        self._agreement_n = 0
        self.worst_drift_pct = float("nan")
        self.worst_agreement = float("nan")

    def record(self, drift_pct: float, agreement: float) -> None:
        with self._lock:
            self.compared += 1
            if math.isfinite(drift_pct):
                self._drift_sum += drift_pct
                self._drift_n += 1
                if not (self.worst_drift_pct >= drift_pct):
                    self.worst_drift_pct = drift_pct
            if math.isfinite(agreement):
                self._agreement_sum += agreement
                self._agreement_n += 1
                if not (self.worst_agreement <= agreement):
                    self.worst_agreement = agreement

    def record_mirrored(self) -> None:
        with self._lock:
            self.mirrored += 1

    def record_dropped(self) -> None:
        with self._lock:
            self.dropped += 1

    def record_error(self) -> None:
        with self._lock:
            self.compared += 1
            self.errors += 1

    @property
    def mean_drift_pct(self) -> float:
        with self._lock:
            if not self._drift_n:
                return float("nan")
            return self._drift_sum / self._drift_n

    @property
    def mean_agreement(self) -> float:
        with self._lock:
            if not self._agreement_n:
                return float("nan")
            return self._agreement_sum / self._agreement_n

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "mirrored": self.mirrored,
                "compared": self.compared,
                "dropped": self.dropped,
                "errors": self.errors,
                "mean_drift_pct": self.mean_drift_pct,
                "mean_agreement": self.mean_agreement,
                "worst_drift_pct": self.worst_drift_pct,
                "worst_agreement": self.worst_agreement,
            }


@dataclass(frozen=True)
class GateReport:
    """Outcome of evaluating the promotion gate on shadow evidence."""

    passed: bool
    reasons: tuple[str, ...]
    compared: int
    mean_drift_pct: float
    mean_agreement: float
    errors: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "reasons": list(self.reasons),
            "compared": self.compared,
            "mean_drift_pct": (
                self.mean_drift_pct
                if math.isfinite(self.mean_drift_pct)
                else None
            ),
            "mean_agreement": (
                self.mean_agreement
                if math.isfinite(self.mean_agreement)
                else None
            ),
            "errors": self.errors,
        }


@dataclass(frozen=True)
class SwapEvent:
    """One committed lifecycle transition (promotion or rollback)."""

    kind: str  # "promoted" | "forced" | "rolled-back"
    from_version: str | None
    to_version: str
    at_s: float
    compared: int = 0
    mean_drift_pct: float = float("nan")
    mean_agreement: float = float("nan")
    invalidated: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "at_s": self.at_s,
            "compared": self.compared,
            "mean_drift_pct": (
                self.mean_drift_pct
                if math.isfinite(self.mean_drift_pct)
                else None
            ),
            "mean_agreement": (
                self.mean_agreement
                if math.isfinite(self.mean_agreement)
                else None
            ),
            "invalidated": self.invalidated,
        }


# ----------------------------------------------------------------------
# Lifecycle manager
# ----------------------------------------------------------------------
class LifecycleManager:
    """Promotion policy: shadow-scored swaps, rollback, re-distillation.

    State machine::

        serving ──swap(candidate)──▶ shadowing
        shadowing ──gate passes──▶ serving (candidate promoted)
        shadowing ──gate trips───▶ serving (candidate rolled back)
        serving ──swap(force=True)─▶ serving (immediate promotion)
        serving ──rollback()───────▶ serving (previous re-activated)

    Lock ordering: the manager lock may take the registry lock, never
    the reverse.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: LifecycleConfig | None = None,
        *,
        versioned: VersionedScorer | None = None,
        cache: ScoreCache | None = None,
        engine: Any | None = None,
        budget_us_per_doc: float | None = None,
        allow_unpriced: bool = False,
    ) -> None:
        self.registry = registry
        self.config = config or LifecycleConfig()
        self.versioned = versioned
        self.cache = cache
        self.engine = engine
        self.budget_us_per_doc = budget_us_per_doc
        self.allow_unpriced = allow_unpriced
        self._lock = RLock()
        self.state = "serving"
        self.candidate: ModelVersion | None = None
        self.shadow = ShadowStats()
        self.last_gate: GateReport | None = None
        self.swap_events: list[SwapEvent] = []
        self._mirror_index = 0
        self._executor: ThreadPoolExecutor | None = None
        self._pending = 0
        self.replay = None
        if self.config.replay_capacity > 0:
            from repro.distill.replay import ReplayBuffer

            self.replay = ReplayBuffer(
                self.config.replay_capacity, seed=self.config.replay_seed
            )
        if versioned is not None:
            versioned.manager = self

    # ------------------------------------------------------------------
    @property
    def hot(self) -> bool:
        """Whether the serve path must call :meth:`observe` at all."""
        return self.state == "shadowing" or self.replay is not None

    # ------------------------------------------------------------------
    def swap(
        self,
        candidate: Any,
        *,
        version: str | None = None,
        force: bool = False,
        source: str = "candidate",
        **backend_options: Any,
    ) -> dict[str, Any]:
        """Register ``candidate`` and promote it (or open a shadow phase).

        ``candidate`` may be a model, a Scorer, an already-registered
        :class:`ModelVersion`, or a version id string.  Admission
        re-applies the engine's latency budget to the candidate's
        calibrated price, so a swap can never smuggle an over-budget
        model past the check the engine ran at construction.

        Returns a JSON-safe dict: ``{"action": "promoted"|"forced",
        "event": ...}`` on immediate promotion, or ``{"action":
        "shadowing", "version": ...}`` when the gate phase opened.
        """
        with self._lock:
            if self.state == "shadowing":
                self._cancel_locked(reason="superseded")
            if isinstance(candidate, ModelVersion):
                entry = self.registry.get(candidate.version_id)
            elif isinstance(candidate, str):
                entry = self.registry.get(candidate)
            else:
                entry = self.registry.register(
                    candidate,
                    version=version,
                    source=source,
                    activate=False,
                    **backend_options,
                )
            try:
                self._admit(entry)
            except BudgetExceededError:
                self.registry.discard(entry.version_id)
                raise
            if (
                force
                or self.config.shadow_fraction <= 0.0
                or entry.version_id == self.registry.active.version_id
            ):
                # no shadow evidence backs an immediate promotion; a
                # stale ShadowStats from an earlier phase must not be
                # attributed to this event
                empty = GateReport(
                    passed=True,
                    reasons=(),
                    compared=0,
                    mean_drift_pct=float("nan"),
                    mean_agreement=float("nan"),
                    errors=0,
                )
                event = self._promote_locked(
                    entry, kind="forced" if force else "promoted", gate=empty
                )
                return {"action": event.kind, "event": event.to_dict()}
            self.candidate = entry
            self.state = "shadowing"
            self.shadow = ShadowStats()
            self.last_gate = None
            self._mirror_index = 0
            self.registry.history.append(
                {
                    "event": "shadowing",
                    "version": entry.version_id,
                    "source": entry.source,
                    "at_s": time.time(),
                }
            )
            return {"action": "shadowing", "version": entry.version_id}

    def _admit(self, entry: ModelVersion) -> None:
        budget = self.budget_us_per_doc
        if budget is None:
            return
        if not math.isfinite(entry.price):
            if not self.allow_unpriced:
                raise BudgetExceededError(
                    f"candidate {entry.version_id!r} has no finite price "
                    f"for the {budget:.2f} us/doc budget check; construct "
                    "the service with allow_unpriced=True to admit it"
                )
        elif entry.price > budget:
            raise BudgetExceededError(
                f"candidate {entry.version_id!r} predicted "
                f"{entry.price:.2f} us/doc exceeds the {budget:.2f} "
                "us/doc budget"
            )

    # ------------------------------------------------------------------
    def observe(self, entry: ModelVersion, features, scores) -> None:
        """Serve-path hook: feed the replay buffer, mirror to the shadow.

        Called by :class:`VersionedScorer` only while :attr:`hot`; the
        mirror decision is O(1) under the lock and candidate scoring
        happens off the hot path in ``background`` mode.
        """
        if self.replay is not None:
            self.replay.add(features, scores)
            record_replay(
                rows=len(self.replay), total_seen=self.replay.total_rows
            )
        candidate = None
        with self._lock:
            if (
                self.state == "shadowing"
                and self.candidate is not None
                and entry.version_id != self.candidate.version_id
            ):
                self._mirror_index += 1
                i = self._mirror_index
                f = self.config.shadow_fraction
                if int(i * f) != int((i - 1) * f):
                    candidate = self.candidate
                    self.shadow.record_mirrored()
        if candidate is None:
            return
        x = np.array(features, dtype=np.float64, copy=True)
        inc = np.asarray(scores, dtype=np.float64).copy()
        if self.config.shadow_mode == "sync":
            self._compare(candidate, x, inc)
            return
        with self._lock:
            if self._pending >= self.config.shadow_queue:
                self.shadow.record_dropped()
                record_shadow_dropped(candidate.version_id)
                return
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-shadow"
                )
            self._pending += 1
            self._executor.submit(self._compare_background, candidate, x, inc)

    def _compare_background(
        self, candidate: ModelVersion, x: np.ndarray, inc: np.ndarray
    ) -> None:
        try:
            self._compare(candidate, x, inc)
        finally:
            with self._lock:
                self._pending -= 1

    def _compare(
        self, candidate: ModelVersion, x: np.ndarray, inc: np.ndarray
    ) -> None:
        with self._lock:
            if self.candidate is not candidate or self.state != "shadowing":
                return
            shadow = self.shadow
        try:
            if self.versioned is not None:
                cand_scores = self.versioned._stack_for(candidate).score(x)
            else:
                cand_scores = candidate.scorer.score(x)
        except Exception:
            with self._lock:
                if self.candidate is candidate:
                    shadow.record_error()
                    record_shadow_error(candidate.version_id)
            self._maybe_decide()
            return
        drift = score_drift_pct(inc, cand_scores)
        agreement = ranking_agreement(
            inc, cand_scores, k=self.config.agreement_k
        )
        with self._lock:
            if self.candidate is not candidate or self.state != "shadowing":
                return
            shadow.record(drift, agreement)
        record_shadow_comparison(
            candidate.version_id, drift_pct=drift, agreement=agreement
        )
        self._maybe_decide()

    # ------------------------------------------------------------------
    def evaluate_gate(self) -> GateReport:
        """Evaluate the promotion gate on the evidence gathered so far."""
        snap = self.shadow.snapshot()
        cfg = self.config
        reasons: list[str] = []
        if snap["errors"]:
            reasons.append(
                f"{int(snap['errors'])} candidate scoring error(s)"
            )
        if not snap["compared"]:
            reasons.append("no shadow comparisons recorded")
        else:
            drift = snap["mean_drift_pct"]
            if math.isfinite(drift) and drift > cfg.max_drift_pct:
                reasons.append(
                    f"mean score drift {drift:.2f}% exceeds "
                    f"{cfg.max_drift_pct:.2f}%"
                )
            agreement = snap["mean_agreement"]
            if math.isfinite(agreement) and agreement < cfg.min_agreement:
                reasons.append(
                    f"mean NDCG@{cfg.agreement_k} agreement "
                    f"{agreement:.3f} below {cfg.min_agreement:.3f}"
                )
        return GateReport(
            passed=not reasons,
            reasons=tuple(reasons),
            compared=int(snap["compared"]),
            mean_drift_pct=snap["mean_drift_pct"],
            mean_agreement=snap["mean_agreement"],
            errors=int(snap["errors"]),
        )

    def _maybe_decide(self) -> None:
        with self._lock:
            if self.state != "shadowing" or self.candidate is None:
                return
            if self.shadow.compared < self.config.shadow_min_requests:
                return
            gate = self.evaluate_gate()
            self.last_gate = gate
            if gate.passed:
                self._promote_locked(self.candidate, kind="promoted", gate=gate)
            elif self.config.auto_rollback:
                self._reject_locked(gate)
            # else: keep shadowing until an explicit decide()

    def decide(self) -> GateReport:
        """Force a gate decision now, regardless of ``shadow_min_requests``."""
        with self._lock:
            if self.state != "shadowing" or self.candidate is None:
                raise LifecycleError("no shadow phase in progress")
            gate = self.evaluate_gate()
            self.last_gate = gate
            if gate.passed:
                self._promote_locked(self.candidate, kind="promoted", gate=gate)
            else:
                self._reject_locked(gate)
            return gate

    def cancel(self) -> None:
        """Abandon the shadow phase without a promotion decision."""
        with self._lock:
            if self.state == "shadowing":
                self._cancel_locked(reason="cancelled")

    def _cancel_locked(self, *, reason: str) -> None:
        candidate = self.candidate
        self.candidate = None
        self.state = "serving"
        if candidate is not None:
            self.registry.history.append(
                {
                    "event": f"shadow-{reason}",
                    "version": candidate.version_id,
                    "source": candidate.source,
                    "at_s": time.time(),
                }
            )

    # ------------------------------------------------------------------
    def _promote_locked(
        self,
        entry: ModelVersion,
        *,
        kind: str,
        gate: GateReport | None = None,
    ) -> SwapEvent:
        previous, entry = self.registry.activate(
            entry.version_id, event=kind
        )
        invalidated = 0
        if (
            self.cache is not None
            and previous is not None
            and previous.fingerprint != entry.fingerprint
        ):
            invalidated = self.cache.invalidate(previous.fingerprint)
        if self.engine is not None:
            self.engine.stats.predicted_us_per_doc = entry.price
        snap = gate or self.evaluate_gate()
        event = SwapEvent(
            kind=kind,
            from_version=previous.version_id if previous else None,
            to_version=entry.version_id,
            at_s=time.time(),
            compared=snap.compared,
            mean_drift_pct=snap.mean_drift_pct,
            mean_agreement=snap.mean_agreement,
            invalidated=invalidated,
        )
        self.swap_events.append(event)
        record_swap(event.from_version, event.to_version, kind=kind)
        annotate_requests(
            swap=f"{event.from_version or '-'}→{event.to_version}"
        )
        self.candidate = None
        self.state = "serving"
        return event

    def _reject_locked(self, gate: GateReport) -> SwapEvent:
        candidate = self.candidate
        assert candidate is not None
        kept = self.registry.active
        invalidated = 0
        if self.cache is not None:
            # the shadow phase may have warmed cache rows for the
            # rejected candidate's fingerprint
            invalidated = self.cache.invalidate(candidate.fingerprint)
        event = SwapEvent(
            kind="rolled-back",
            from_version=candidate.version_id,
            to_version=kept.version_id,
            at_s=time.time(),
            compared=gate.compared,
            mean_drift_pct=gate.mean_drift_pct,
            mean_agreement=gate.mean_agreement,
            invalidated=invalidated,
        )
        self.swap_events.append(event)
        record_rollback(candidate.version_id, kept.version_id)
        annotate_requests(
            swap=f"{candidate.version_id}⇒rolled-back"
        )
        self.registry.history.append(
            {
                "event": "rolled-back",
                "version": candidate.version_id,
                "source": candidate.source,
                "at_s": time.time(),
            }
        )
        self.candidate = None
        self.state = "serving"
        return event

    def rollback(self) -> SwapEvent:
        """Manually re-activate the previously active version."""
        with self._lock:
            if self.state == "shadowing":
                self._cancel_locked(reason="cancelled")
            previous = self.registry.previous
            if previous is None:
                raise LifecycleError("no previous version to roll back to")
            current = self.registry.active
            _, entry = self.registry.activate(
                previous.version_id, event="rolled-back"
            )
            invalidated = 0
            if (
                self.cache is not None
                and current.fingerprint != entry.fingerprint
            ):
                invalidated = self.cache.invalidate(current.fingerprint)
            if self.engine is not None:
                self.engine.stats.predicted_us_per_doc = entry.price
            event = SwapEvent(
                kind="rolled-back",
                from_version=current.version_id,
                to_version=entry.version_id,
                at_s=time.time(),
                invalidated=invalidated,
            )
            self.swap_events.append(event)
            record_swap(current.version_id, entry.version_id, kind="rolled-back")
            record_rollback(current.version_id, entry.version_id)
            return event

    # ------------------------------------------------------------------
    def drain_shadow(self, timeout: float = 5.0) -> bool:
        """Block until in-flight background mirrors finish (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._pending == 0:
                    return True
            time.sleep(0.002)
        with self._lock:
            return self._pending == 0

    def redistill(
        self,
        *,
        teacher: Any | None = None,
        epochs: int = 3,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
        version: str | None = None,
        force: bool = False,
    ) -> dict[str, Any]:
        """Fine-tune the active student on the replay buffer and swap it in.

        Closes the distill → serve → drift → re-distill loop: the buffer
        holds teacher-scored (or self-scored) served traffic, the clone
        is trained on a popularity-weighted sample of it, and the result
        goes through the same shadow-gated :meth:`swap` as any other
        candidate.
        """
        if self.replay is None or len(self.replay) == 0:
            raise LifecycleError(
                "redistill requires a non-empty replay buffer "
                "(set replay_capacity > 0 in LifecycleConfig)"
            )
        from repro.distill.replay import redistill_student
        from repro.distill.student import DistilledStudent

        student = self.registry.active.model
        if not isinstance(student, DistilledStudent):
            raise LifecycleError(
                "redistill requires the active model to be a "
                f"DistilledStudent, got {type(student).__name__}"
            )
        candidate = redistill_student(
            student,
            self.replay,
            teacher=teacher,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            seed=seed,
        )
        return self.swap(
            candidate, version=version, force=force, source="redistilled"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.drain_shadow(timeout=2.0)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def summary(self) -> dict[str, Any]:
        with self._lock:
            candidate = (
                self.candidate.version_id if self.candidate else None
            )
            return {
                "state": self.state,
                "active": self.registry.active.version_id
                if len(self.registry)
                else None,
                "candidate": candidate,
                "shadow": self.shadow.snapshot(),
                "gate": self.last_gate.to_dict() if self.last_gate else None,
                "swap_events": [e.to_dict() for e in self.swap_events],
                "replay": self.replay.snapshot() if self.replay else None,
                "config": self.config.to_dict(),
            }
