"""Deterministic fault injection for the scoring runtime.

The resilience layer (:mod:`repro.runtime.resilience`) must be testable
without waiting for real outages, so failure is a first-class,
*scheduled* input here: a :class:`FaultPolicy` decides — purely from the
call index — whether a wrapped scorer raises, stalls, or returns NaN
scores, and :class:`FaultyScorer` applies that decision to any
:class:`~repro.runtime.base.Scorer` the registry can build.  Schedules
are plain functions of a call counter, so every run replays the same
fault sequence bit for bit.

Stalls go through an injectable ``sleep``; pairing it with
:class:`ManualClock` (reads return a stored instant, sleeps advance it)
makes deadline breaches and breaker cooldowns deterministic unit tests
instead of wall-clock races.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "FAULT_KINDS",
    "FaultPolicy",
    "FaultSpec",
    "FaultyScorer",
    "InjectedFaultError",
    "ManualClock",
    "with_faults",
]

#: Supported fault kinds: raise, stall then serve, serve NaN scores.
FAULT_KINDS = ("error", "stall", "nan")


class InjectedFaultError(ReproError):
    """A scheduled fault raised by a :class:`FaultyScorer`."""


class ManualClock:
    """A deterministic clock: reads return ``now``, sleeps advance it.

    Drop-in for the ``clock``/``sleep`` pair the resilience layer takes
    (``clock=manual_clock, sleep=manual_clock.sleep``), so cooldowns,
    backoffs and deadline breaches are exact, replayable arithmetic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self.now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Alias of :meth:`sleep`, for test readability."""
        self.sleep(seconds)


@dataclass(frozen=True)
class FaultSpec:
    """What goes wrong on a matching call."""

    kind: str = "error"
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {', '.join(FAULT_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.kind == "stall" and self.stall_seconds <= 0:
            raise ValueError(
                f"a stall fault needs stall_seconds > 0, "
                f"got {self.stall_seconds}"
            )


class FaultPolicy:
    """Deterministic call-index → fault schedule.

    The schedule is any ``(call_index) -> FaultSpec | None`` function;
    the classmethods cover the common shapes (never, always, the first
    ``n`` calls, every ``n``-th call, an explicit index set).
    """

    def __init__(self, schedule: Callable[[int], FaultSpec | None]) -> None:
        self._schedule = schedule

    def fault_for(self, call_index: int) -> FaultSpec | None:
        """The fault scheduled for ``call_index`` (``None`` = healthy)."""
        return self._schedule(call_index)

    # -- common schedules ----------------------------------------------
    @classmethod
    def never(cls) -> "FaultPolicy":
        """A policy that injects nothing (the healthy baseline)."""
        return cls(lambda index: None)

    @classmethod
    def always(
        cls, kind: str = "error", *, stall_seconds: float = 0.0
    ) -> "FaultPolicy":
        """Every call faults — a hard outage."""
        spec = FaultSpec(kind, stall_seconds)
        return cls(lambda index: spec)

    @classmethod
    def first(
        cls, n: int, kind: str = "error", *, stall_seconds: float = 0.0
    ) -> "FaultPolicy":
        """The first ``n`` calls fault, then the scorer is healthy."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        spec = FaultSpec(kind, stall_seconds)
        return cls(lambda index: spec if index < n else None)

    @classmethod
    def every(
        cls, n: int, kind: str = "error", *, stall_seconds: float = 0.0
    ) -> "FaultPolicy":
        """Every ``n``-th call faults (calls ``n-1``, ``2n-1``, ...)."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        spec = FaultSpec(kind, stall_seconds)
        return cls(lambda index: spec if index % n == n - 1 else None)

    @classmethod
    def at_calls(
        cls,
        indices: Iterable[int],
        kind: str = "error",
        *,
        stall_seconds: float = 0.0,
    ) -> "FaultPolicy":
        """Exactly the listed call indices fault."""
        wanted = frozenset(int(i) for i in indices)
        spec = FaultSpec(kind, stall_seconds)
        return cls(lambda index: spec if index in wanted else None)


class FaultyScorer:
    """Any scorer, with scheduled faults layered on top.

    Price, backend name, batchability and input dimension are the
    wrapped scorer's own, so a faulty scorer drops into engines,
    services and fallback chains unchanged — only its failure behaviour
    differs:

    * ``error`` — raise :class:`InjectedFaultError` instead of scoring;
    * ``stall`` — sleep (via the injectable ``sleep``) then serve, so
      deadline enforcement downstream sees a slow call;
    * ``nan``  — return shape-correct all-NaN scores, the silent-poison
      mode the resilience layer's finite-score check must catch.

    The call counter advances on every :meth:`score` invocation, faulted
    or not, so the schedule is a pure function of traffic order.
    """

    backend = "faulty"
    batchable = True

    def __init__(
        self,
        scorer,
        policy: FaultPolicy,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        from repro.runtime.base import is_scorer

        if not is_scorer(scorer):
            raise TypeError(
                f"expected a Scorer, got {type(scorer).__name__} "
                "(build one with make_scorer)"
            )
        self.inner = scorer
        self.policy = policy
        self.backend = scorer.backend
        self.batchable = getattr(scorer, "batchable", True)
        self._sleep = sleep
        self.calls = 0
        self.faults_injected = 0

    @property
    def input_dim(self) -> int | None:
        return self.inner.input_dim

    @property
    def predicted_us_per_doc(self) -> float:
        return self.inner.predicted_us_per_doc

    def score(self, features) -> np.ndarray:
        index = self.calls
        self.calls += 1
        spec = self.policy.fault_for(index)
        if spec is None:
            return self.inner.score(features)
        self.faults_injected += 1
        if spec.kind == "error":
            raise InjectedFaultError(
                f"scheduled fault on call {index} of backend {self.backend!r}"
            )
        if spec.kind == "stall":
            self._sleep(spec.stall_seconds)
            return self.inner.score(features)
        # "nan": shape-correct poison the finite-score check must catch.
        n_docs = np.asarray(features).shape[0]
        return np.full(n_docs, np.nan, dtype=np.float64)

    def describe(self) -> str:
        return f"faulty({self.inner.describe()})"

    def __repr__(self) -> str:
        return (
            f"<FaultyScorer [{self.backend}] calls={self.calls} "
            f"faults={self.faults_injected}>"
        )


def with_faults(
    scorer,
    policy: FaultPolicy,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> FaultyScorer:
    """Wrap ``scorer`` so it fails on ``policy``'s schedule."""
    return FaultyScorer(scorer, policy, sleep=sleep)
